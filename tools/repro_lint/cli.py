"""Command-line front end for repro-lint."""

from __future__ import annotations

import argparse
import sys

from tools.repro_lint.rules import RULES, lint_paths

DEFAULT_PATHS = ("src", "tests", "scripts", "benchmarks")


def main(argv: list[str] | None = None) -> int:
    """Run the linter; exit status 1 when any finding survives."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="Determinism & array-contract static analysis for the "
        "MrCC reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            if code != "R000":
                print(f"{code}  {RULES[code]}")
        return 0

    try:
        findings = lint_paths(args.paths)
    except FileNotFoundError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s) in "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0
