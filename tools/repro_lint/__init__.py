"""repro-lint: repo-specific determinism & array-contract static analysis.

The MrCC reproduction's headline claims (bit-identical Alg. 1/2
equivalence, deterministic ``REPRO_JOBS`` fan-out, the binomial test
and MDL cut) rest on invariants that generic linters do not know about:
seeded-RNG discipline across the baselines, ``[0, 1)^d`` float64
inputs, integer cell coordinates, and no wall-clock or set-order
dependence inside the core reductions.  ``repro-lint`` walks the
Python AST of every file under the given paths and enforces those
invariants as stable, suppressible rules:

========  ==============================================================
Code      Rule
========  ==============================================================
R001      No unseeded randomness outside tests: ``np.random.<fn>``
          module calls, stdlib ``random.<fn>`` calls, and
          ``default_rng()`` without an explicit seed are forbidden.
R002      No ``==``/``!=`` against float literals (use tolerances or
          integer comparisons).  Tests are exempt: the equivalence
          suite asserts exact float equality on purpose.
R003      Determinism in ``src/repro/core`` and
          ``src/repro/experiments``: no ``time.time``/``datetime.now``
          wall clocks and no direct iteration over set expressions
          (wrap in ``sorted(...)``) feeding ordered reductions.
R004      Public functions in ``core/`` and ``baselines/`` must
          annotate every parameter and the return type.
R005      Array allocations in ``src/repro/core`` (``np.zeros`` /
          ``ones`` / ``empty`` / ``full`` / ``arange``) must pin an
          explicit ``dtype=``.
R006      No mutable default arguments (list/dict/set literals or
          constructor calls).
========  ==============================================================

Suppression: append ``# repro-lint: disable=R001`` (comma-separated
codes, or ``all``) to the offending line, with a justification.  A
``# repro-lint: disable-file=R001`` comment anywhere in a file
suppresses a code for that whole file.

Usage::

    python -m tools.repro_lint src tests scripts benchmarks
    python -m tools.repro_lint --list-rules
"""

from tools.repro_lint.cli import main
from tools.repro_lint.rules import (
    RULES,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "RULES",
    "Finding",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
