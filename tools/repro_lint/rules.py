"""AST rule implementations for repro-lint.

One :class:`_RuleVisitor` pass per file collects findings; suppression
comments are applied afterwards so every rule stays a pure function of
the tree.  Rules are scoped by path context (tests are exempt from
R001; R003/R005 only bind inside the deterministic core packages), and
every finding carries a stable code so suppressions survive refactors.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

RULES: dict[str, str] = {
    "R001": "no unseeded randomness outside tests",
    "R002": "no ==/!= comparison against float literals outside tests",
    "R003": "no wall clocks or raw set iteration in deterministic modules",
    "R004": "public core/baselines functions must be fully annotated",
    "R005": "core array allocations must pin an explicit dtype",
    "R006": "no mutable default arguments",
    "R007": "environment access outside repro.env",
    "R008": "direct timing calls outside repro.obs and benchmarks",
    "R009": "no bare or silently-swallowed except outside the job fabric",
    "R010": "no direct numba imports outside repro.core.kernels",
    "R011": "no direct ctypes imports outside the cext backend module",
    "R012": "no direct model-file I/O outside repro.serve.store",
    "R013": "no process-pool construction outside repro.fabric",
    "R000": "file could not be parsed",
}

#: Process-pool constructors reserved to the fabric (R013).  Every
#: worker-process fan-out must go through repro.fabric.run_supervised —
#: it owns leases, retries, deadlines and fault attribution; a raw pool
#: elsewhere would be an unsupervised execution path whose worker
#: deaths take down in-flight siblings.  repro.core.kernels keeps its
#: exemption for backend-internal parallelism.
_POOL_CONSTRUCTORS = frozenset(
    {
        "ProcessPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "futures.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "mp.Pool",
    }
)

#: Environment-touching callables/objects funnelled through repro.env (R007).
_ENV_ACCESSORS = frozenset(
    {
        "os.environ",
        "os.getenv",
        "os.putenv",
        "os.unsetenv",
    }
)

#: np.random constructors that are fine *when given a seed argument*.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

#: Wall-clock callables forbidden in deterministic modules (R003).
_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Timing primitives funnelled through repro.obs (R008): durations go
#: through ``repro.obs.perf_clock`` and peak RSS through
#: ``repro.obs.peak_rss_kb`` so timing policy has one home.  Only the
#: observability layer itself and the benchmark harness may call these.
_TIMING_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "resource.getrusage",
    }
)

#: numpy allocators that must pin a dtype in core (R005), mapped to the
#: 1-based position their ``dtype`` parameter occupies when positional.
_PINNED_ALLOCATORS = {
    "zeros": 2,
    "ones": 2,
    "empty": 2,
    "full": 3,
    "arange": 4,
}

#: File-I/O callables forbidden in serving modules outside the store
#: (R012): every model byte must pass through the validated, schema-
#: versioned read/write path so no serving code can grow an unchecked
#: side-channel format.
_SERVE_IO_CALLS = frozenset(
    {
        "open",
        "np.save",
        "np.savez",
        "np.savez_compressed",
        "np.load",
        "np.fromfile",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.load",
        "numpy.fromfile",
    }
)

#: The mmap primitive is the model store's exclusive tool (R012
#: package-wide): a second mapping site would create level arrays whose
#: lifetime and read-only guarantees nothing audits.
_MEMMAP_CALLS = frozenset({"np.memmap", "numpy.memmap"})

_SUPPRESS_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """GCC-style ``path:line:col: CODE message`` output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class PathContext:
    """Which rule scopes a file path falls into."""

    is_test: bool
    in_core: bool
    in_experiments: bool
    in_baselines: bool
    in_package: bool
    is_env_module: bool
    in_obs: bool
    in_benchmarks: bool
    in_resilience: bool
    in_fabric: bool
    in_kernels: bool
    is_cext_module: bool
    in_serve: bool
    is_model_store_module: bool

    @staticmethod
    def classify(path: str) -> "PathContext":
        normalized = "/" + str(path).replace(os.sep, "/").lstrip("/")
        parts = normalized.split("/")
        name = parts[-1]
        is_test = (
            "tests" in parts[:-1]
            or name.startswith("test_")
            or name == "conftest.py"
        )
        return PathContext(
            is_test=is_test,
            in_core="/repro/core/" in normalized,
            in_experiments="/repro/experiments/" in normalized,
            in_baselines="/repro/baselines/" in normalized,
            in_package="/repro/" in normalized,
            is_env_module=normalized.endswith("/repro/env.py"),
            in_obs="/repro/obs/" in normalized,
            in_benchmarks="benchmarks" in parts[:-1],
            in_resilience="/repro/resilience/" in normalized,
            in_fabric="/repro/fabric/" in normalized,
            in_kernels="/repro/core/kernels/" in normalized,
            is_cext_module=normalized.endswith(
                "/repro/core/kernels/cext_backend.py"
            ),
            in_serve="/repro/serve/" in normalized,
            is_model_store_module=normalized.endswith(
                "/repro/serve/store.py"
            ),
        )


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expression(node: ast.expr) -> bool:
    """Set literal, set comprehension, or ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def _is_mutable_literal(node: ast.expr) -> bool:
    """Expression that evaluates to a fresh mutable container."""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func)
        return dotted in {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.OrderedDict",
            "collections.Counter",
            "collections.deque",
        }
    return False


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass collector for every repro-lint rule."""

    def __init__(self, path: str, context: PathContext):
        self.path = path
        self.context = context
        self.findings: list[Finding] = []
        self._function_depth = 0

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # -- R001 / R003 / R005: calls ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            if not self.context.is_test:
                self._check_randomness(node, dotted)
            if self.context.in_core or self.context.in_experiments:
                self._check_wall_clock(node, dotted)
                self._check_set_materialisation(node, dotted)
            if self.context.in_core:
                self._check_dtype_pin(node, dotted)
            if self._timing_rule_binds:
                self._check_timing_call(node, dotted)
            if self._serve_io_rule_binds:
                self._check_serve_io(node, dotted)
            if self._pool_rule_binds:
                self._check_pool_construction(node, dotted)
        self.generic_visit(node)

    # -- R013: process pools stay inside the job fabric ---------------
    # Every worker-process fan-out goes through
    # repro.fabric.run_supervised, which owns leases, retries, deadlines
    # and fault attribution.  A raw pool elsewhere is an unsupervised
    # execution path: one worker death breaks every in-flight future at
    # once and nothing journals what was lost.  repro.core.kernels is
    # exempt (backend-internal parallelism), as are tests.

    @property
    def _pool_rule_binds(self) -> bool:
        return (
            self.context.in_package
            and not self.context.is_test
            and not self.context.in_fabric
            and not self.context.in_resilience
            and not self.context.in_kernels
        )

    def _check_pool_construction(self, node: ast.Call, dotted: str) -> None:
        if dotted in _POOL_CONSTRUCTORS:
            self._add(
                node,
                "R013",
                f"direct {dotted} construction outside repro.fabric "
                "(dispatch worker processes through "
                "repro.fabric.run_supervised so every fan-out gets "
                "leases, retries, deadlines and fault attribution)",
            )

    def _check_randomness(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        fn = parts[-1]
        has_args = bool(node.args) or bool(node.keywords)
        if len(parts) >= 3 and parts[-3] in {"np", "numpy"} and parts[-2] == "random":
            if fn in _SEEDABLE_CONSTRUCTORS:
                if not has_args:
                    self._add(
                        node,
                        "R001",
                        f"unseeded randomness: {dotted}() without an explicit "
                        "seed argument",
                    )
            else:
                self._add(
                    node,
                    "R001",
                    f"unseeded randomness: legacy module-level call {dotted} "
                    "(use a seeded np.random.default_rng Generator)",
                )
        elif len(parts) == 2 and parts[0] == "random":
            self._add(
                node,
                "R001",
                f"unseeded randomness: stdlib {dotted} call (use a seeded "
                "np.random.default_rng Generator)",
            )
        elif dotted == "default_rng" and not has_args:
            self._add(
                node,
                "R001",
                "unseeded randomness: default_rng() without an explicit seed "
                "argument",
            )

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        if dotted in _WALL_CLOCKS:
            self._add(
                node,
                "R003",
                f"wall-clock call {dotted} in a deterministic module "
                "(inject timestamps or use repro.obs.perf_clock for "
                "durations kept out of results)",
            )

    # -- R008: timing calls outside the observability layer -----------

    @property
    def _timing_rule_binds(self) -> bool:
        return not self.context.in_obs and not self.context.in_benchmarks

    def _check_timing_call(self, node: ast.Call, dotted: str) -> None:
        if dotted in _TIMING_CALLS:
            self._add(
                node,
                "R008",
                f"direct timing call {dotted} outside repro.obs (use "
                "repro.obs.perf_clock / repro.obs.peak_rss_kb so timing "
                "stays behind the one observability subsystem)",
            )

    # -- R012: model-file I/O stays inside repro.serve.store ----------
    # The model format's guarantees — schema versioning, strict header
    # validation, 64-byte alignment, read-only mmap lifetime — hold only
    # while every byte passes through the store's read/write pair.  A
    # direct open/np.save in a serving module would grow an unvalidated
    # side-channel format, and an np.memmap anywhere else in the package
    # would map arrays whose lifetime nothing audits.

    @property
    def _serve_io_rule_binds(self) -> bool:
        return (
            self.context.in_package
            and not self.context.is_test
            and not self.context.is_model_store_module
        )

    def _check_serve_io(self, node: ast.Call, dotted: str) -> None:
        if dotted in _MEMMAP_CALLS:
            self._add(
                node,
                "R012",
                f"direct {dotted} call outside repro.serve.store (model "
                "arrays are mapped only by the store, which owns the "
                "read-only lifetime rules; load models via "
                "repro.serve.load_model)",
            )
        elif self.context.in_serve and dotted in _SERVE_IO_CALLS:
            self._add(
                node,
                "R012",
                f"direct file I/O {dotted} in a serving module (model "
                "bytes go through repro.serve.store.write_model/"
                "read_model so every file is schema-checked)",
            )

    def _check_set_materialisation(self, node: ast.Call, dotted: str) -> None:
        if dotted in {"list", "tuple", "enumerate", "iter"} and node.args:
            if _is_set_expression(node.args[0]):
                self._add(
                    node,
                    "R003",
                    f"{dotted}() over a set expression has arbitrary order; "
                    "wrap the set in sorted(...) before it feeds an ordered "
                    "reduction",
                )

    def _check_dtype_pin(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if len(parts) != 2 or parts[0] not in {"np", "numpy"}:
            return
        dtype_position = _PINNED_ALLOCATORS.get(parts[1])
        if dtype_position is None:
            return
        has_dtype = any(kw.arg == "dtype" for kw in node.keywords) or (
            len(node.args) >= dtype_position
        )
        if not has_dtype:
            self._add(
                node,
                "R005",
                f"{dotted} without an explicit dtype= in core (array "
                "contracts require pinned dtypes)",
            )

    # -- R007: environment access outside repro.env -------------------

    @property
    def _env_rule_binds(self) -> bool:
        return (
            self.context.in_package
            and not self.context.is_env_module
            and not self.context.is_test
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._env_rule_binds and _dotted_name(node) in _ENV_ACCESSORS:
            self._add(
                node,
                "R007",
                f"environment access {_dotted_name(node)} outside repro.env "
                "(read REPRO_* knobs through the repro.env helpers)",
            )
        self.generic_visit(node)

    # -- R010: numba stays behind the kernels backend layer -----------
    # numba is an optional extra; direct imports elsewhere would make
    # modules fail on machines without it and bypass the REPRO_BACKEND
    # selection (and its bit-identity guarantees).  Only the kernels
    # package may import it — everything else goes through
    # repro.core.kernels.get_backend / active_backend.

    @property
    def _numba_rule_binds(self) -> bool:
        return (
            self.context.in_package
            and not self.context.in_kernels
            and not self.context.is_test
        )

    # -- R011: ctypes stays inside the cext backend module ------------
    # The FFI boundary is a correctness liability: calls through ctypes
    # bypass every Python-side type check, so repro_analyze's A4 pass
    # audits exactly one module's bindings.  A ctypes import anywhere
    # else would open an unaudited boundary.

    @property
    def _ctypes_rule_binds(self) -> bool:
        return (
            self.context.in_package
            and not self.context.is_cext_module
            and not self.context.is_test
        )

    def visit_Import(self, node: ast.Import) -> None:
        if self._numba_rule_binds:
            for alias in node.names:
                if alias.name == "numba" or alias.name.startswith("numba."):
                    self._add(
                        node,
                        "R010",
                        f"direct import of {alias.name} outside "
                        "repro.core.kernels (select compiled kernels via "
                        "REPRO_BACKEND and repro.core.kernels instead)",
                    )
        if self._ctypes_rule_binds:
            for alias in node.names:
                if alias.name == "ctypes" or alias.name.startswith("ctypes."):
                    self._add(
                        node,
                        "R011",
                        f"direct import of {alias.name} outside "
                        "repro.core.kernels.cext_backend (the FFI boundary "
                        "is audited there by repro_analyze A4; route foreign "
                        "calls through the kernels backend layer)",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._numba_rule_binds and node.module is not None:
            if node.module == "numba" or node.module.startswith("numba."):
                self._add(
                    node,
                    "R010",
                    f"direct import from {node.module} outside "
                    "repro.core.kernels (select compiled kernels via "
                    "REPRO_BACKEND and repro.core.kernels instead)",
                )
        if self._ctypes_rule_binds and node.module is not None:
            if node.module == "ctypes" or node.module.startswith("ctypes."):
                self._add(
                    node,
                    "R011",
                    f"direct import from {node.module} outside "
                    "repro.core.kernels.cext_backend (the FFI boundary "
                    "is audited there by repro_analyze A4; route foreign "
                    "calls through the kernels backend layer)",
                )
        if self._env_rule_binds and node.module == "os":
            imported = {alias.name for alias in node.names}
            leaked = sorted(
                imported & {"environ", "getenv", "putenv", "unsetenv"}
            )
            if leaked:
                self._add(
                    node,
                    "R007",
                    f"importing {', '.join(leaked)} from os outside "
                    "repro.env (read REPRO_* knobs through the repro.env "
                    "helpers)",
                )
        if self._timing_rule_binds and node.module in {"time", "resource"}:
            timers = sorted(
                alias.name
                for alias in node.names
                if f"{node.module}.{alias.name}" in _TIMING_CALLS
            )
            if timers:
                self._add(
                    node,
                    "R008",
                    f"importing {', '.join(timers)} from {node.module} "
                    "outside repro.obs (use repro.obs.perf_clock / "
                    "repro.obs.peak_rss_kb so timing stays behind the one "
                    "observability subsystem)",
                )
        self.generic_visit(node)

    # -- R009: bare / silently-swallowed except -----------------------
    # Package code must not turn failures into silence: blanket
    # exception handling is the fabric supervisor's job, where every
    # caught failure becomes a structured, journaled outcome.  Tests may
    # swallow (pytest.raises idioms); repro.fabric (and its
    # repro.resilience compatibility shim) is the sanctioned home for
    # broad handlers.

    @property
    def _except_rule_binds(self) -> bool:
        return (
            self.context.in_package
            and not self.context.is_test
            and not self.context.in_resilience
            and not self.context.in_fabric
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._except_rule_binds:
            if node.type is None:
                self._add(
                    node,
                    "R009",
                    "bare except: swallows KeyboardInterrupt/SystemExit too "
                    "(name the exception types; blanket failure handling "
                    "belongs in repro.fabric)",
                )
            if _swallows_silently(node.body):
                self._add(
                    node,
                    "R009",
                    "exception silently swallowed (handle it, record it, or "
                    "re-raise; blanket failure handling belongs in "
                    "repro.fabric)",
                )
        self.generic_visit(node)

    # -- R002: float equality -----------------------------------------
    # Test files are exempt: the equivalence suite *asserts* exact float
    # equality on purpose (bit-identical reproduction is the claim).

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        if not self.context.is_test and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                self._add(
                    node,
                    "R002",
                    "equality comparison against a float literal (use "
                    "np.isclose/math.isclose or an integer comparison)",
                )
        self.generic_visit(node)

    # -- R003: raw set iteration --------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            self._check_set_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_set_iteration(self, iter_node: ast.expr) -> None:
        if self.context.in_core or self.context.in_experiments:
            if _is_set_expression(iter_node):
                self._add(
                    iter_node,
                    "R003",
                    "iterating a set expression has arbitrary order; wrap it "
                    "in sorted(...) before it feeds an ordered reduction",
                )

    # -- R004 / R006: function definitions ----------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._check_mutable_defaults(node)
        if (
            (self.context.in_core or self.context.in_baselines)
            and not self.context.is_test
            and self._function_depth == 0
            and not node.name.startswith("_")
        ):
            self._check_annotations(node)
        self._function_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._function_depth -= 1

    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults: list[ast.expr | None] = [
            *node.args.defaults,
            *node.args.kw_defaults,
        ]
        for default in defaults:
            if default is not None and _is_mutable_literal(default):
                self._add(
                    default,
                    "R006",
                    f"mutable default argument in {node.name}() (use None "
                    "and allocate inside the body)",
                )

    def _check_annotations(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        parameters = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        if parameters and parameters[0].arg in {"self", "cls"}:
            parameters = parameters[1:]
        missing = [p.arg for p in parameters if p.annotation is None]
        if missing:
            self._add(
                node,
                "R004",
                f"public function {node.name}() is missing parameter "
                f"annotations: {', '.join(missing)}",
            )
        if node.returns is None:
            self._add(
                node,
                "R004",
                f"public function {node.name}() is missing a return "
                "annotation",
            )


def _swallows_silently(body: list[ast.stmt]) -> bool:
    """Handler body that only ``pass``es / ``...``s (drops the error)."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


def _suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and per-file suppression sets parsed from comments."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for line_number, text in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in text:
            continue
        file_match = _SUPPRESS_FILE.search(text)
        if file_match:
            per_file.update(_parse_codes(file_match.group(1)))
            continue
        line_match = _SUPPRESS_LINE.search(text)
        if line_match:
            per_line.setdefault(line_number, set()).update(
                _parse_codes(line_match.group(1))
            )
    return per_line, per_file


def _parse_codes(raw: str) -> set[str]:
    codes = {token.strip().upper() for token in raw.split(",") if token.strip()}
    return {"ALL"} if "ALL" in codes else codes


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one Python source text under its path's rule context."""
    context = PathContext.classify(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                code="R000",
                message=f"syntax error: {error.msg}",
            )
        ]
    visitor = _RuleVisitor(path, context)
    visitor.visit(tree)
    per_line, per_file = _suppressions(source)
    kept = []
    for finding in visitor.findings:
        disabled = per_file | per_line.get(finding.line, set())
        if "ALL" in disabled or finding.code in disabled:
            continue
        kept.append(finding)
    return sorted(kept)


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """All ``*.py`` files under the given files/directories, sorted."""
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {root}")
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint every Python file under the given paths."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return sorted(findings)
