"""Minimal C parser for the restricted kernel dialect of the cext backend.

The C transliteration in ``repro.core.kernels.cext_backend._C_SOURCE``
is deliberately written in a tiny dialect — flat functions over
``int64_t``/``double``/``uint8_t`` scalars and pointers, ``for``/
``while`` loops, no typedefs, no structs, no function pointers, no
preprocessor beyond object-like ``#define`` constants.  That restraint
is what makes a *trustworthy* static cross-check feasible: this module
parses exactly that dialect (prototypes, parameter lists, ``#define``
constants and loop structure) so the A4 FFI pass can verify the ctypes
bindings and the A5 equivalence pass can compare loop skeletons against
:mod:`repro.core.kernels.loops`.

The parser is textual, not a grammar for C: it comment-strips the
source, brace-matches function bodies, and scans statements with
word-boundary regexes.  Anything outside the dialect (a struct, a
``#if``, a function-pointer parameter) simply fails to index, which the
passes report rather than mis-analyse.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: C base types the kernel dialect admits, with their numpy dtype names.
C_SCALAR_DTYPES: dict[str, str] = {
    "int64_t": "int64",
    "double": "float64",
    "uint8_t": "uint8",
    "int": "int32",
}

#: C integer base types usable as length parameters for pointer bounds.
C_INTEGER_TYPES = frozenset({"int64_t", "int", "uint8_t"})

_KEYWORDS = frozenset(
    {
        "if",
        "else",
        "for",
        "while",
        "return",
        "break",
        "continue",
        "static",
        "const",
        "void",
        "sizeof",
    }
) | frozenset(C_SCALAR_DTYPES)

_DEFINE = re.compile(r"^[ \t]*#define[ \t]+(\w+)[ \t]+(.+?)[ \t]*$", re.M)
_PROTOTYPE = re.compile(
    r"^[ \t]*(static[ \t]+)?(\w+)[ \t]+\**(\w+)[ \t]*\(", re.M
)
_COMMENT = re.compile(r"/\*.*?\*/|//[^\n]*", re.S)
_IDENT = re.compile(r"\b[A-Za-z_]\w*\b")
_LOOP_OR_CALL = re.compile(r"\b(for|while)\b|\b([A-Za-z_]\w*)[ \t\n]*\(")
_ASSIGN = re.compile(
    r"\b(\w+)[ \t]*(?:(\+\+|--)|([+\-*/|&^]?)=(?!=))"
)


class CParseError(ValueError):
    """The source stepped outside the restricted kernel dialect."""


@dataclass(frozen=True)
class CParam:
    """One parameter of a C kernel function."""

    name: str
    base_type: str
    is_pointer: bool
    is_const: bool

    @property
    def dtype(self) -> str | None:
        """numpy dtype name for the base type, if known."""
        return C_SCALAR_DTYPES.get(self.base_type)


@dataclass
class CFunction:
    """One function definition parsed out of the kernel C source."""

    name: str
    return_type: str
    params: list[CParam]
    body: str
    is_static: bool
    line: int

    pointer_params: list[CParam] = field(init=False)
    scalar_params: list[CParam] = field(init=False)

    def __post_init__(self) -> None:
        self.pointer_params = [p for p in self.params if p.is_pointer]
        self.scalar_params = [p for p in self.params if not p.is_pointer]


def strip_comments(source: str) -> str:
    """Blank out comments, preserving line structure for diagnostics."""

    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _COMMENT.sub(blank, source)


def parse_defines(source: str) -> dict[str, tuple[str, int]]:
    """``#define NAME value`` constants → ``{name: (value_text, line)}``."""
    clean = strip_comments(source)
    defines: dict[str, tuple[str, int]] = {}
    for match in _DEFINE.finditer(clean):
        line = clean.count("\n", 0, match.start()) + 1
        defines[match.group(1)] = (match.group(2).strip(), line)
    return defines


def parse_functions(source: str) -> dict[str, CFunction]:
    """Every function *definition* in the source, keyed by name."""
    clean = strip_comments(source)
    functions: dict[str, CFunction] = {}
    position = 0
    while True:
        match = _PROTOTYPE.search(clean, position)
        if match is None:
            break
        position = match.end()
        return_type = match.group(2)
        if return_type in _KEYWORDS - frozenset(C_SCALAR_DTYPES) - {"void"}:
            continue
        close = _match_delimiter(clean, match.end() - 1, "(", ")")
        after = _skip_space(clean, close + 1)
        if after >= len(clean) or clean[after] != "{":
            continue  # declaration or macro call, not a definition
        body_end = _match_delimiter(clean, after, "{", "}")
        params = _parse_params(clean[match.end() : close])
        line = clean.count("\n", 0, match.start()) + 1
        functions[match.group(3)] = CFunction(
            name=match.group(3),
            return_type=return_type,
            params=params,
            body=clean[after + 1 : body_end],
            is_static=bool(match.group(1)),
            line=line,
        )
        position = body_end + 1
    return functions


def _parse_params(text: str) -> list[CParam]:
    params: list[CParam] = []
    text = text.strip()
    if not text or text == "void":
        return params
    for chunk in text.split(","):
        tokens = chunk.replace("*", " * ").split()
        if not tokens:
            raise CParseError(f"empty parameter in ({text})")
        is_const = "const" in tokens
        is_pointer = "*" in tokens
        tokens = [t for t in tokens if t not in {"const", "*"}]
        if len(tokens) != 2:
            raise CParseError(f"unsupported parameter syntax: {chunk!r}")
        base_type, name = tokens
        params.append(
            CParam(
                name=name,
                base_type=base_type,
                is_pointer=is_pointer,
                is_const=is_const,
            )
        )
    return params


def _match_delimiter(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index of the delimiter closing the one at ``start``."""
    assert text[start] == open_ch
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    raise CParseError(f"unbalanced {open_ch}…{close_ch} from offset {start}")


def _skip_space(text: str, i: int) -> int:
    while i < len(text) and text[i].isspace():
        i += 1
    return i


# -- loop skeletons ----------------------------------------------------
#
# A loop skeleton is the tree of for/while nodes of a function body with
# every *private* static helper inlined at its call site (call in a
# loop condition → children of that loop), and calls to functions that
# exist on both sides (``binom_sf``) kept opaque — those are compared
# separately under their own name.  Conditionals deliberately do not
# nest: the skeleton answers "which loops run inside which loops", the
# one structural property the C transliteration must share with the
# Python bodies for the statement-for-statement claim to hold.


def loop_skeleton(
    fn: CFunction,
    functions: dict[str, CFunction],
    opaque: frozenset[str] = frozenset(),
) -> str:
    """Render the for/while nesting of ``fn`` with helpers inlined."""
    return _render(_scan_region(fn.body, functions, opaque, {fn.name}))


def _render(nodes: list[tuple[str, list]]) -> str:
    parts = []
    for kind, children in nodes:
        parts.append(f"{kind}({_render(children)})" if children else kind)
    return ",".join(parts)


def _statement_end(text: str, start: int) -> int:
    """Index of the ``;`` ending the statement at ``start``.

    Semicolons inside parentheses (a brace-less nested ``for`` header)
    and inside brace groups (a compound sub-statement) belong to the
    statement, not after it — so both delimiter kinds are skipped at
    depth.
    """
    i = start
    while i < len(text):
        ch = text[i]
        if ch == "(":
            i = _match_delimiter(text, i, "(", ")") + 1
        elif ch == "{":
            i = _match_delimiter(text, i, "{", "}") + 1
        elif ch == ";":
            return i
        else:
            i += 1
    return len(text)


def _scan_region(
    text: str,
    functions: dict[str, CFunction],
    opaque: frozenset[str],
    active: set[str],
) -> list[tuple[str, list]]:
    nodes: list[tuple[str, list]] = []
    i = 0
    while i < len(text):
        match = _LOOP_OR_CALL.search(text, i)
        if match is None:
            break
        if match.group(1):  # for / while
            kind = "F" if match.group(1) == "for" else "W"
            paren = text.index("(", match.end(1))
            close = _match_delimiter(text, paren, "(", ")")
            children = _scan_region(
                text[paren + 1 : close], functions, opaque, active
            )
            after = _skip_space(text, close + 1)
            if after < len(text) and text[after] == "{":
                body_end = _match_delimiter(text, after, "{", "}")
                children += _scan_region(
                    text[after + 1 : body_end], functions, opaque, active
                )
                i = body_end + 1
            else:
                stmt_end = _statement_end(text, after)
                children += _scan_region(
                    text[after:stmt_end], functions, opaque, active
                )
                i = stmt_end + 1
            nodes.append((kind, children))
            continue
        # An identifier followed by "(": scan the argument region, then
        # splice the callee's skeleton when it is a private helper.
        name = match.group(2)
        paren = text.index("(", match.end(2))
        close = _match_delimiter(text, paren, "(", ")")
        nodes.extend(
            _scan_region(text[paren + 1 : close], functions, opaque, active)
        )
        callee = functions.get(name)
        if (
            callee is not None
            and name not in opaque
            and name not in active  # recursion guard
        ):
            nodes.extend(
                _scan_region(
                    callee.body, functions, opaque, active | {name}
                )
            )
        i = close + 1
    return nodes


# -- pointer-index boundedness (A402) ----------------------------------
#
# Within one function, an identifier is *bounded* when its value is
# derived purely from the function's scalar parameters and literals:
# scalar params are bounded by the caller's contract (that is what
# "paired length parameter" means), loop counters initialised and
# stepped from bounded values stay bounded, and results of calls are
# treated as bounded (in-source helpers carry their own checked
# contract; libm calls are pure functions of bounded arguments).  A
# value read *out of* a pointer is data, not a bound — any variable
# whose definition reads an array is tainted, and indexing a pointer
# with a tainted identifier is exactly the out-of-contract access A402
# exists to flag.


def unbounded_pointer_indices(fn: CFunction) -> list[tuple[str, str, str]]:
    """``(pointer_name, index_expr, offending_ident)`` per bad subscript.

    Boundedness is computed as the complement of a taint fixpoint: the
    taint sources are the pointer parameters themselves (an identifier
    appearing in an assignment that reads an array makes the assigned
    variable data-dependent) and any identifier that is neither a
    parameter nor a variable assigned in the body (an out-of-signature
    name can carry no caller-side bound).  Taint propagates through
    assignments until stable — mutually recursive counter groups like a
    binary search's ``low``/``mid``/``high`` stay untainted as long as
    nothing in the group reads data.
    """
    pointer_names = {p.name for p in fn.pointer_params}
    scalar_names = {p.name for p in fn.scalar_params}
    assignments = _collect_assignments(fn.body)

    known = pointer_names | scalar_names | set(assignments)
    tainted = set(pointer_names)
    changed = True
    while changed:
        changed = False
        for name, rhs_ids in assignments.items():
            if name in tainted or name in scalar_names:
                continue
            reads_taint = any(
                ident in tainted or ident not in known
                for ids in rhs_ids
                for ident in ids
            )
            if reads_taint:
                tainted.add(name)
                changed = True

    problems: list[tuple[str, str, str]] = []
    for base, expr in _subscripts(fn.body):
        if base not in pointer_names:
            continue
        for ident in sorted(_identifiers(_strip_calls(expr))):
            if ident in tainted or ident not in known:
                problems.append((base, expr.strip(), ident))
    return problems


def _collect_assignments(body: str) -> dict[str, list[set[str]]]:
    """Every scalar binding in the body → the identifier sets it reads."""
    assignments: dict[str, list[set[str]]] = {}
    for match in _ASSIGN.finditer(body):
        name = match.group(1)
        if name in _KEYWORDS:
            continue
        if match.group(2):  # ++ / -- : self-referential step
            assignments.setdefault(name, []).append({name})
            continue
        end = _statement_end(body, match.end())
        rhs = body[match.end() : end]
        ids = _identifiers(_strip_calls(rhs))
        if match.group(3):  # compound assignment reads the target too
            ids.add(name)
        assignments.setdefault(name, []).append(ids)
    return assignments


def _statement_end(text: str, start: int) -> int:
    """Offset of the ``;`` (or ``)`` for a for-clause) ending a statement."""
    depth = 0
    for i in range(start, len(text)):
        ch = text[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            if depth == 0:
                return i
            depth -= 1
        elif ch == ";" and depth == 0:
            return i
    return len(text)


def _subscripts(body: str) -> list[tuple[str, str]]:
    """``(base, index_expression)`` for every ``base[...]`` in the body."""
    out: list[tuple[str, str]] = []
    for match in re.finditer(r"\b(\w+)[ \t\n]*\[", body):
        close = _match_delimiter(body, body.index("[", match.end(1)), "[", "]")
        out.append((match.group(1), body[match.end() : close]))
    return out


def _strip_calls(expr: str) -> str:
    """Remove every ``name(...)`` call expression (results are bounded)."""
    while True:
        match = re.search(r"\b[A-Za-z_]\w*[ \t\n]*\(", expr)
        if match is None:
            return expr
        close = _match_delimiter(expr, expr.index("(", match.start()), "(", ")")
        expr = expr[: match.start()] + expr[close + 1 :]


def _identifiers(expr: str) -> set[str]:
    """Identifiers in an expression, keywords and type names excluded."""
    return {
        ident
        for ident in _IDENT.findall(expr)
        if ident not in _KEYWORDS and not ident[0].isdigit()
    }
