"""Project model: parsed modules, import tables and symbol indexes.

Every pass of repro-analyze works on one :class:`Project` — the parsed
ASTs of all Python files under the analysed roots plus the symbol
tables needed to resolve a dotted name at a call site to the project
function or class it denotes.  Resolution is best-effort and purely
static: it follows ``import``/``from … import`` bindings, module-level
definitions and ``self.method`` dispatch inside a known class; dynamic
dispatch (callables stored in data structures) is left to the
conservative closure of the purity pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_name_for(path: Path) -> str:
    """Dotted module name derived from package ``__init__.py`` markers.

    Walks up from the file while ``__init__.py`` exists, so the name is
    independent of which root the analyser was pointed at
    (``src`` and ``src/repro`` both yield ``repro.core.mrcc``).
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    package = path.parent
    while (package / "__init__.py").exists():
        parts.append(package.name)
        package = package.parent
    return ".".join(reversed(parts)) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    node: FunctionNode
    module: "ModuleInfo"
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")

    def parameters(self) -> list[ast.arg]:
        """Positional/keyword parameters, ``self``/``cls`` stripped."""
        args = self.node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if self.class_name and params and params[0].arg in {"self", "cls"}:
            params = params[1:]
        return params


@dataclass
class ClassInfo:
    """One class definition with its method table and base names."""

    qualname: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: dict[str, str] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    annotations: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """One parsed module with its import and global-name tables."""

    name: str
    path: Path
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    module_globals: set[str] = field(default_factory=set)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


class Project:
    """All modules under the analysed roots plus global symbol indexes."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.unparsable: list[tuple[Path, SyntaxError]] = []
        for module in modules.values():
            self.functions.update(module.functions)
            self.classes.update(module.classes)

    # -- loading -------------------------------------------------------

    @staticmethod
    def load(roots: Iterable[str | Path]) -> "Project":
        """Parse every ``*.py`` under the roots into a Project."""
        modules: dict[str, ModuleInfo] = {}
        unparsable: list[tuple[Path, SyntaxError]] = []
        for path in _iter_python_files(roots):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
            except SyntaxError as error:
                unparsable.append((path, error))
                continue
            info = _index_module(module_name_for(path), path, tree)
            modules[info.name] = info
        project = Project(modules)
        project.unparsable = unparsable
        return project

    # -- resolution ----------------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str) -> str | None:
        """Fully-qualified name a dotted expression denotes, or None.

        Follows the module's import table, then module-level
        definitions.  The result is a *name*, which may or may not be
        indexed (``numpy.zeros`` resolves but is not a project symbol).
        """
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            target = module.imports[head]
            return f"{target}.{rest}" if rest else target
        if (
            head in module.functions
            or head in module.classes
            or head in module.module_globals
        ):
            return f"{module.name}.{dotted}"
        return None

    def resolve_function(
        self, module: ModuleInfo, dotted: str
    ) -> FunctionInfo | None:
        """Project function a dotted call-site name denotes, or None."""
        full = self.resolve(module, dotted)
        if full is None:
            return None
        if full in self.functions:
            return self.functions[full]
        # ``module_alias.Class.method`` style references.
        if full in self.classes:
            return None
        head, _, attr = full.rpartition(".")
        cls = self.classes.get(head)
        if cls is not None and attr in cls.methods:
            return self.functions.get(cls.methods[attr])
        return None

    def resolve_class(
        self, module: ModuleInfo, dotted: str
    ) -> ClassInfo | None:
        """Project class a dotted name denotes, or None."""
        full = self.resolve(module, dotted)
        return self.classes.get(full) if full else None

    def resolve_method(
        self, cls: ClassInfo, method: str
    ) -> FunctionInfo | None:
        """Method lookup through the class and its project bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return self.functions.get(current.methods[method])
            for base in self.base_classes(current):
                stack.append(base)
        return None

    def base_classes(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """Project classes among ``cls``'s written bases."""
        for base in cls.bases:
            resolved = self.resolve_class(cls.module, base)
            if resolved is not None:
                yield resolved

    def class_of_function(self, info: FunctionInfo) -> ClassInfo | None:
        """The ClassInfo a method belongs to, if any."""
        if info.class_name is None:
            return None
        return self.classes.get(f"{info.module.name}.{info.class_name}")


def _iter_python_files(roots: Iterable[str | Path]) -> Iterator[Path]:
    for entry in roots:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {root}")
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


def _index_module(name: str, path: Path, tree: ast.Module) -> ModuleInfo:
    module = ModuleInfo(name=name, path=path, tree=tree)
    _collect_imports(module, tree)
    for node in tree.body:
        _collect_global_names(module, node)
    _collect_definitions(module, tree.body, prefix="", class_name=None)
    return module


def _collect_imports(module: ModuleInfo, tree: ast.Module) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_import_base(module.name, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )


def _absolute_import_base(
    module_name: str, node: ast.ImportFrom
) -> str | None:
    if node.level == 0:
        return node.module or ""
    # Relative import: drop ``level`` trailing components (the module
    # itself counts as one level).
    parts = module_name.split(".")
    if node.level > len(parts):
        return None
    base_parts = parts[: len(parts) - node.level]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts)


def _collect_global_names(module: ModuleInfo, node: ast.stmt) -> None:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    module.module_globals.add(name_node.id)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(node.target, ast.Name):
            module.module_globals.add(node.target.id)
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        module.module_globals.add(node.name)
    elif isinstance(node, (ast.If, ast.Try)):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                _collect_global_names(module, child)


def _collect_definitions(
    module: ModuleInfo,
    body: list[ast.stmt],
    prefix: str,
    class_name: str | None,
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_qual = f"{prefix}{node.name}"
            info = FunctionInfo(
                qualname=f"{module.name}.{local_qual}",
                node=node,
                module=module,
                class_name=class_name,
            )
            module.functions[info.qualname] = info
            if class_name is not None and prefix == f"{class_name}.":
                cls = module.classes[f"{module.name}.{class_name}"]
                cls.methods[node.name] = info.qualname
            # Nested defs are indexed too (qualified by the outer name).
            _collect_definitions(
                module, node.body, prefix=f"{local_qual}.", class_name=None
            )
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{module.name}.{node.name}",
                node=node,
                module=module,
                bases=[
                    dotted
                    for base in node.bases
                    if (dotted := dotted_name(base)) is not None
                ],
            )
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    annotation = dotted_name(stmt.annotation)
                    if annotation is None and isinstance(
                        stmt.annotation, ast.Constant
                    ):
                        annotation = str(stmt.annotation.value)
                    if annotation is not None:
                        cls.annotations[stmt.target.id] = annotation
            module.classes[cls.qualname] = cls
            _collect_definitions(
                module,
                node.body,
                prefix=f"{node.name}.",
                class_name=node.name,
            )
