"""Pass A1: shape/dtype dataflow over ``repro.core``.

A per-function abstract interpreter propagates :class:`ArrayValue`
facts — ``(ndim, dtype)`` plus the *integral* and *weak* refinements —
through assignments, numpy constructors/ufuncs/reductions, subscripts
and calls.  Parameter annotations (the ``repro.types`` aliases) seed
the environment; ``check_array`` calls refine it; project-function
calls consume return summaries computed in a first, silent round, so
facts flow interprocedurally without whole-program iteration.

Findings:

``A101``
    A cast (``astype``/``asarray``/``array`` with an explicit dtype)
    whose target cannot represent every value of a known source dtype
    (``np.can_cast(..., casting="safe")`` fails).  Exempt: casting a
    provably *integral* float (``np.floor`` result) to an integer
    dtype, and weak Python scalars.
``A102``
    A dtype spelled with a platform-dependent width (``int``,
    ``np.int_``, ``np.intp``, ``"long"`` …) — the repro guarantee
    requires identical widths on every platform.
``A103``
    A shape-incompatible operation: a reduction ``axis`` outside a
    known rank, or a subscript with more integer indices than the
    value has dimensions.
``A104``
    A silent upcast: a binary operation between two known, non-weak
    dtypes whose numpy promotion is wider than *both* operands
    (the ``uint64 + int64 → float64`` class of surprise).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .findings import Finding
from .lattice import (
    TOP,
    ArrayValue,
    PLATFORM_DEPENDENT_INTS,
    PLATFORM_DEPENDENT_STRINGS,
    canonical_dtype,
    is_safe_cast,
    join_all,
    promoted_dtype,
    scalar,
    value_from_annotation,
)
from .project import FunctionInfo, Project, dotted_name

#: Reductions: name → (dtype rule, drops the axis dimension).
_REDUCTIONS: dict[str, tuple[str, bool]] = {
    "sum": ("preserve-int", True),
    "prod": ("preserve-int", True),
    "min": ("preserve", True),
    "max": ("preserve", True),
    "amin": ("preserve", True),
    "amax": ("preserve", True),
    "mean": ("float", True),
    "median": ("float", True),
    "std": ("float", True),
    "var": ("float", True),
    "any": ("bool", True),
    "all": ("bool", True),
    "argmin": ("unknown", True),
    "argmax": ("unknown", True),
    "cumsum": ("preserve-int", False),
}

_INTEGRAL_UFUNCS = frozenset({"floor", "ceil", "rint", "trunc"})
_SHAPE_PRESERVING_UFUNCS = frozenset(
    {"abs", "absolute", "negative", "sign", "square", "copy"}
)
_FLOAT_UFUNCS = frozenset({"sqrt", "exp", "log", "log2", "log10"})


@dataclass
class _ReturnSummary:
    value: ArrayValue = TOP


def analyze_shapes(
    project: Project, module_prefixes: tuple[str, ...] = ("repro.core",)
) -> list[Finding]:
    """Run pass A1 over every function in the matching modules."""
    targets = [
        info
        for info in project.functions.values()
        if info.module.name.startswith(module_prefixes)
    ]
    # Round one: collect return summaries, emit nothing.
    summaries: dict[str, ArrayValue] = {}
    for info in targets:
        interpreter = _Interpreter(project, info, summaries, emit=None)
        summaries[info.qualname] = interpreter.run()
    # Round two: re-run with summaries available, emitting findings.
    findings: list[Finding] = []
    for info in targets:
        interpreter = _Interpreter(project, info, summaries, emit=findings)
        interpreter.run()
    return sorted(set(findings))


class _Interpreter:
    """Abstract interpreter for one function body."""

    def __init__(
        self,
        project: Project,
        info: FunctionInfo,
        summaries: dict[str, ArrayValue],
        emit: list[Finding] | None,
    ):
        self.project = project
        self.info = info
        self.module = info.module
        self.summaries = summaries
        self.findings = emit
        self.returned: list[ArrayValue] = []

    def run(self) -> ArrayValue:
        env: dict[str, ArrayValue] = {}
        for param in self.info.parameters():
            annotation = (
                dotted_name(param.annotation)
                if param.annotation is not None
                else None
            )
            value = value_from_annotation(annotation)
            if value is not None:
                env[param.arg] = value
        self.exec_block(self.info.node.body, env)
        return join_all(self.returned) if self.returned else TOP

    # -- statements ----------------------------------------------------

    def exec_block(
        self, body: list[ast.stmt], env: dict[str, ArrayValue]
    ) -> dict[str, ArrayValue]:
        for stmt in body:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(
        self, stmt: ast.stmt, env: dict[str, ArrayValue]
    ) -> dict[str, ArrayValue]:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, stmt.value, env)
        elif isinstance(stmt, ast.AnnAssign):
            value = (
                self.eval(stmt.value, env) if stmt.value is not None else TOP
            )
            annotated = value_from_annotation(
                dotted_name(stmt.annotation)
                if stmt.annotation is not None
                else None
            )
            if value is TOP and annotated is not None:
                value = annotated
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = value
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, TOP)
                operand = self.eval(stmt.value, env)
                env[stmt.target.id] = self._binop_value(
                    stmt, current, operand
                )
            else:
                self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Expr):
            self._maybe_refine_from_check(stmt.value, env)
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returned.append(self.eval(stmt.value, env))
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = self.exec_block(stmt.body, dict(env))
            else_env = self.exec_block(stmt.orelse, dict(env))
            env = _join_envs(then_env, else_env)
        elif isinstance(stmt, ast.For):
            iterated = self.eval(stmt.iter, env)
            self._bind_loop_target(stmt.target, iterated, env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _join_envs(env, body_env)
            env = self.exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            body_env = self.exec_block(stmt.body, dict(env))
            env = _join_envs(env, body_env)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if isinstance(item.optional_vars, ast.Name):
                    env[item.optional_vars.id] = TOP
            env = self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            env = self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                env = _join_envs(env, self.exec_block(handler.body, dict(env)))
            env = self.exec_block(stmt.orelse, env)
            env = self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
        # Nested function/class definitions keep their own pass run;
        # Pass/Break/Continue/Global/Import change nothing we track.
        return env

    def _bind(
        self,
        target: ast.expr,
        value: ArrayValue,
        source: ast.expr,
        env: dict[str, ArrayValue],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: list[ast.expr] | None = None
            if isinstance(source, (ast.Tuple, ast.List)) and len(
                source.elts
            ) == len(target.elts):
                elements = source.elts
            for position, element in enumerate(target.elts):
                if not isinstance(element, ast.Name):
                    continue
                if elements is not None:
                    env[element.id] = self.eval(elements[position], env)
                else:
                    env[element.id] = TOP

    def _bind_loop_target(
        self,
        target: ast.expr,
        iterated: ArrayValue,
        env: dict[str, ArrayValue],
    ) -> None:
        if isinstance(target, ast.Name):
            if iterated.ndim is not None and iterated.ndim >= 1:
                env[target.id] = ArrayValue(
                    ndim=iterated.ndim - 1, dtype=iterated.dtype
                )
            else:
                env[target.id] = TOP
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    env[element.id] = TOP

    def _maybe_refine_from_check(
        self, expr: ast.expr, env: dict[str, ArrayValue]
    ) -> None:
        """``check_array("x", x, dtype=…, ndim=…)`` refines ``x``."""
        if not isinstance(expr, ast.Call):
            return
        callee = dotted_name(expr.func)
        if callee is None or callee.split(".")[-1] != "check_array":
            return
        if len(expr.args) < 2 or not isinstance(expr.args[1], ast.Name):
            return
        name = expr.args[1].id
        refined = env.get(name, TOP)
        for keyword in expr.keywords:
            if keyword.arg == "dtype":
                spec = self._dtype_spec(keyword.value, env, check=False)
                if spec is not None:
                    refined = refined.with_dtype(spec)
            elif keyword.arg == "ndim" and isinstance(
                keyword.value, ast.Constant
            ) and isinstance(keyword.value.value, int):
                refined = refined.with_ndim(keyword.value.value)
        env[name] = refined

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, ArrayValue]) -> ArrayValue:
        if isinstance(node, ast.Name):
            return env.get(node.id, TOP)
        if isinstance(node, ast.Constant):
            return _constant_value(node.value)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self._binop_value(node, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.Not):
                return ArrayValue(ndim=operand.ndim, dtype="bool")
            return operand
        if isinstance(node, ast.Compare):
            left = self.eval(node.left, env)
            ndim = left.ndim
            for comparator in node.comparators:
                other = self.eval(comparator, env)
                ndim = _broadcast_ndim(ndim, other.ndim)
            return ArrayValue(ndim=ndim, dtype="bool")
        if isinstance(node, ast.BoolOp):
            return join_all([self.eval(v, env) for v in node.values])
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.eval(node.body, env).join(self.eval(node.orelse, env))
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return TOP
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return TOP
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return TOP

    def _eval_attribute(
        self, node: ast.Attribute, env: dict[str, ArrayValue]
    ) -> ArrayValue:
        dotted = dotted_name(node)
        # ``self.field`` seeds from the class body annotations.
        if dotted is not None and dotted.startswith("self."):
            cls = self.project.class_of_function(self.info)
            rest = dotted[len("self.") :]
            if cls is not None and "." not in rest:
                value = value_from_annotation(cls.annotations.get(rest))
                if value is not None:
                    return value
            return TOP
        base = self.eval(node.value, env)
        if node.attr == "T":
            return base
        if node.attr in {"shape", "dtype", "size", "itemsize", "ndim"}:
            return TOP
        return TOP

    def _binop_value(
        self,
        node: ast.BinOp | ast.AugAssign,
        left: ArrayValue,
        right: ArrayValue,
    ) -> ArrayValue:
        ndim = _broadcast_ndim(left.ndim, right.ndim)
        op = node.op
        if isinstance(op, (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr)):
            dtype = left.dtype if not left.weak else right.dtype
            return ArrayValue(ndim=ndim, dtype=dtype)
        if isinstance(op, ast.Div):
            return ArrayValue(ndim=ndim, dtype="float64")
        if left.dtype is None or right.dtype is None:
            return ArrayValue(ndim=ndim)
        if left.weak != right.weak:
            strong = right if left.weak else left
            return ArrayValue(
                ndim=ndim, dtype=strong.dtype, integral=strong.integral
            )
        promoted = promoted_dtype(left.dtype, right.dtype)
        if (
            promoted is not None
            and not left.weak
            and promoted not in (left.dtype, right.dtype)
        ):
            self._report(
                "A104",
                node,
                f"operands {left.dtype} and {right.dtype} silently "
                f"promote to {promoted}, wider than either",
            )
        return ArrayValue(
            ndim=ndim,
            dtype=promoted,
            integral=left.integral and right.integral,
            weak=left.weak and right.weak,
        )

    def _eval_subscript(
        self, node: ast.Subscript, env: dict[str, ArrayValue]
    ) -> ArrayValue:
        base = self.eval(node.value, env)
        index = node.slice
        self.eval(index, env) if isinstance(index, ast.expr) else None
        if base.ndim is None:
            return ArrayValue(dtype=base.dtype, integral=base.integral)
        if isinstance(index, ast.Tuple):
            elements = index.elts
            if any(
                isinstance(e, ast.Constant) and e.value is None
                or isinstance(e, ast.Constant) and e.value is Ellipsis
                for e in elements
            ):
                return ArrayValue(dtype=base.dtype, integral=base.integral)
            if len(elements) > base.ndim:
                self._report(
                    "A103",
                    node,
                    f"subscript has {len(elements)} indices but the value "
                    f"has {base.ndim} dimension(s)",
                )
                return TOP
            dropped = sum(
                0 if isinstance(e, ast.Slice) else 1 for e in elements
            )
            # An array index fancy-selects; its rank is unknown here.
            if any(
                not isinstance(e, (ast.Slice, ast.Constant, ast.UnaryOp))
                and self.eval(e, env).ndim not in (0, None)
                for e in elements
            ):
                return ArrayValue(dtype=base.dtype, integral=base.integral)
            return ArrayValue(
                ndim=base.ndim - dropped,
                dtype=base.dtype,
                integral=base.integral,
            )
        if isinstance(index, ast.Slice):
            return base
        index_value = self.eval(index, env)
        if index_value.ndim not in (0, None):
            if index_value.dtype == "bool":
                # Boolean masking flattens the selected axes.
                return ArrayValue(
                    ndim=1 if base.ndim == 1 else None,
                    dtype=base.dtype,
                    integral=base.integral,
                )
            return ArrayValue(
                ndim=base.ndim, dtype=base.dtype, integral=base.integral
            )
        if index_value.ndim == 0:
            return ArrayValue(
                ndim=base.ndim - 1, dtype=base.dtype, integral=base.integral
            )
        # Unknown index rank (e.g. ``np.ix_`` products): unknown result.
        return ArrayValue(dtype=base.dtype, integral=base.integral)

    # -- calls ---------------------------------------------------------

    def _eval_call(
        self, node: ast.Call, env: dict[str, ArrayValue]
    ) -> ArrayValue:
        for arg in node.args:
            self.eval(arg, env)
        for keyword in node.keywords:
            self.eval(keyword.value, env)

        dotted = dotted_name(node.func)
        # Method call on a tracked value: ``x.astype(...)``, ``x.sum()``.
        if isinstance(node.func, ast.Attribute):
            receiver_name = dotted_name(node.func.value)
            method = node.func.attr
            if receiver_name is None or not self._is_module_like(
                receiver_name
            ):
                receiver = self.eval(node.func.value, env)
                result = self._eval_method(node, method, receiver, env)
                if result is not None:
                    return result
        if dotted is None:
            return TOP

        numpy_name = self._numpy_function(dotted)
        if numpy_name is not None:
            result = self._eval_numpy(node, numpy_name, env)
            if result is not None:
                return result
            return TOP

        # Project call: use the round-one return summary.
        head = dotted.partition(".")[0]
        if head == "self" and self.info.class_name is not None:
            cls = self.project.class_of_function(self.info)
            rest = dotted.partition(".")[2]
            if cls is not None and rest and "." not in rest:
                method_info = self.project.resolve_method(cls, rest)
                if method_info is not None:
                    return self.summaries.get(method_info.qualname, TOP)
            return TOP
        function = self.project.resolve_function(self.module, dotted)
        if function is not None:
            return self.summaries.get(function.qualname, TOP)
        return TOP

    def _is_module_like(self, receiver: str) -> bool:
        head = receiver.partition(".")[0]
        resolved = self.module.imports.get(head)
        if resolved is None:
            return False
        # Imported callables (``from x import f``) are not modules.
        return resolved in self.project.modules or head in (
            "np",
            "numpy",
            "scipy",
            "stats",
        )

    def _eval_method(
        self,
        node: ast.Call,
        method: str,
        receiver: ArrayValue,
        env: dict[str, ArrayValue],
    ) -> ArrayValue | None:
        if method == "astype":
            spec_node = node.args[0] if node.args else _keyword(node, "dtype")
            return self._cast_value(node, receiver, spec_node, env)
        if method in {"copy", "clip"}:
            return receiver
        if method in {"ravel", "flatten"}:
            return ArrayValue(
                ndim=1, dtype=receiver.dtype, integral=receiver.integral
            )
        if method == "reshape":
            ndim = _reshape_ndim(node)
            return ArrayValue(
                ndim=ndim, dtype=receiver.dtype, integral=receiver.integral
            )
        if method == "view":
            return ArrayValue(ndim=receiver.ndim)
        if method in {"tolist", "item"}:
            return TOP
        if method in _REDUCTIONS:
            return self._reduction_value(node, method, receiver, env)
        return None

    def _numpy_function(self, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        if head in ("np", "numpy") and rest:
            return rest
        return None

    def _eval_numpy(
        self, node: ast.Call, name: str, env: dict[str, ArrayValue]
    ) -> ArrayValue | None:
        first = (
            self.eval(node.args[0], env) if node.args else TOP
        )
        if name in {"asarray", "ascontiguousarray", "asfortranarray", "array"}:
            spec_node = _keyword(node, "dtype")
            if spec_node is None and name == "array" and len(node.args) > 1:
                spec_node = node.args[1]
            if spec_node is None:
                source = first if node.args and isinstance(
                    node.args[0], (ast.Name, ast.Attribute, ast.Call)
                ) else TOP
                return source
            return self._cast_value(node, first, spec_node, env)
        if name in {"zeros", "ones", "empty", "full"}:
            spec_node = _keyword(node, "dtype")
            if spec_node is None and name != "full" and len(node.args) > 1:
                spec_node = node.args[1]
            dtype = (
                self._dtype_spec(spec_node, env)
                if spec_node is not None
                else "float64"
            )
            return ArrayValue(ndim=_shape_arg_ndim(node), dtype=dtype)
        if name == "zeros_like" or name == "ones_like" or name == "empty_like":
            return first
        if name == "arange":
            spec_node = _keyword(node, "dtype")
            dtype = (
                self._dtype_spec(spec_node, env)
                if spec_node is not None
                else None
            )
            return ArrayValue(ndim=1, dtype=dtype)
        if name == "linspace":
            return ArrayValue(ndim=1, dtype="float64")
        if name in _INTEGRAL_UFUNCS:
            return ArrayValue(
                ndim=first.ndim,
                dtype=first.dtype if not first.weak else "float64",
                integral=True,
            )
        if name in _SHAPE_PRESERVING_UFUNCS:
            return first
        if name in _FLOAT_UFUNCS:
            return ArrayValue(ndim=first.ndim, dtype="float64")
        if name in {"minimum", "maximum"} and len(node.args) >= 2:
            second = self.eval(node.args[1], env)
            return self._binop_pair(first, second)
        if name == "where" and len(node.args) >= 3:
            return self.eval(node.args[1], env).join(
                self.eval(node.args[2], env)
            )
        if name == "clip":
            return first
        if name in _REDUCTIONS:
            return self._reduction_value(node, name, first, env)
        if name in {"add.reduceat", "maximum.reduceat", "minimum.reduceat"}:
            axis = _axis_argument(node, positional_index=2)
            self._check_axis(node, first, axis)
            return ArrayValue(ndim=first.ndim, dtype=first.dtype)
        if name in {"diff", "sort", "unique"}:
            return ArrayValue(ndim=first.ndim, dtype=first.dtype)
        if name in {"concatenate", "stack", "vstack", "hstack"}:
            if node.args and isinstance(node.args[0], (ast.List, ast.Tuple)):
                parts = [self.eval(e, env) for e in node.args[0].elts]
                joined = join_all(parts) if parts else TOP
                if name == "stack" and joined.ndim is not None:
                    return ArrayValue(
                        ndim=joined.ndim + 1, dtype=joined.dtype
                    )
                return joined
            return TOP
        if name in {"append"} and len(node.args) >= 2:
            return self.eval(node.args[0], env).join(
                self.eval(node.args[1], env)
            )
        if name in {"argsort", "flatnonzero", "searchsorted", "bincount"}:
            # These return platform ``intp`` indices by numpy's own
            # choice — the analysed code cannot fix that, so the dtype
            # stays unknown rather than flagged.
            ndim = 1 if name in {"flatnonzero", "bincount"} else None
            return ArrayValue(ndim=ndim)
        if name == "dtype":
            return TOP
        return None

    def _binop_pair(self, left: ArrayValue, right: ArrayValue) -> ArrayValue:
        ndim = _broadcast_ndim(left.ndim, right.ndim)
        if left.dtype is None or right.dtype is None:
            return ArrayValue(ndim=ndim)
        if left.weak != right.weak:
            strong = right if left.weak else left
            return ArrayValue(ndim=ndim, dtype=strong.dtype)
        return ArrayValue(ndim=ndim, dtype=promoted_dtype(left.dtype, right.dtype))

    def _reduction_value(
        self,
        node: ast.Call,
        name: str,
        operand: ArrayValue,
        env: dict[str, ArrayValue],
    ) -> ArrayValue:
        kind, drops_axis = _REDUCTIONS[name]
        axis = _axis_argument(node, positional_index=1)
        self._check_axis(node, operand, axis)
        if kind == "float":
            dtype: str | None = "float64"
        elif kind == "bool":
            dtype = "bool"
        elif kind == "preserve":
            dtype = operand.dtype
        elif kind == "preserve-int":
            # Summing bools (or narrow ints) widens to the platform
            # default; only 64-bit and float dtypes survive unchanged.
            dtype = (
                operand.dtype
                if operand.dtype in {"int64", "uint64", "float64"}
                else None
            )
        else:
            dtype = None
        if not drops_axis:
            return ArrayValue(ndim=operand.ndim, dtype=dtype)
        if axis is None and not _has_axis_argument(node):
            return ArrayValue(ndim=0, dtype=dtype)
        if operand.ndim is not None and axis is not None:
            return ArrayValue(ndim=max(operand.ndim - 1, 0), dtype=dtype)
        return ArrayValue(dtype=dtype)

    def _check_axis(
        self, node: ast.Call, operand: ArrayValue, axis: int | None
    ) -> None:
        if axis is None or operand.ndim is None:
            return
        if not -operand.ndim <= axis < operand.ndim:
            self._report(
                "A103",
                node,
                f"axis {axis} is out of range for a value with "
                f"{operand.ndim} dimension(s)",
            )

    # -- casts ---------------------------------------------------------

    def _cast_value(
        self,
        node: ast.Call,
        source: ArrayValue,
        spec_node: ast.expr | None,
        env: dict[str, ArrayValue],
    ) -> ArrayValue:
        if spec_node is None:
            return source
        target = self._dtype_spec(spec_node, env)
        if target is None:
            return ArrayValue(ndim=source.ndim)
        if (
            source.dtype is not None
            and not source.weak
            and not is_safe_cast(source.dtype, target)
            and not (source.integral and _is_integer_dtype(target))
        ):
            self._report(
                "A101",
                node,
                f"cast from {source.dtype} to {target} can lose values "
                f"(np.can_cast(..., casting='safe') is false)",
            )
        return ArrayValue(ndim=source.ndim, dtype=target)

    def _dtype_spec(
        self,
        node: ast.expr,
        env: dict[str, ArrayValue],
        check: bool = True,
    ) -> str | None:
        """Canonical dtype name of a literal spec; flags A102 inline."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            spelled = node.value
            if check and spelled.lstrip("<>=") in PLATFORM_DEPENDENT_STRINGS:
                self._report(
                    "A102",
                    node,
                    f"dtype string {spelled!r} has a platform-dependent "
                    f"width; spell the width explicitly",
                )
                return None
            return canonical_dtype(spelled)
        dotted = dotted_name(node)
        if dotted is None:
            return None
        if dotted in PLATFORM_DEPENDENT_INTS:
            if check:
                self._report(
                    "A102",
                    node,
                    f"dtype {dotted} has a platform-dependent width; "
                    f"use an explicit np.int64/np.int32",
                )
            return None
        base = dotted.rsplit(".", 1)[-1]
        if dotted in ("float", "bool") or dotted.startswith(("np.", "numpy.")):
            return canonical_dtype(base if base != "float" else "float64")
        return None

    # -- reporting -----------------------------------------------------

    def _report(self, code: str, node: ast.AST, message: str) -> None:
        if self.findings is None:
            return
        self.findings.append(
            Finding(
                path=str(self.info.module.path),
                line=getattr(node, "lineno", self.info.node.lineno),
                col=getattr(node, "col_offset", 0),
                code=code,
                symbol=self.info.qualname,
                message=message,
            )
        )


# -- helpers -----------------------------------------------------------


def _constant_value(value: object) -> ArrayValue:
    if isinstance(value, bool):
        return scalar("bool", weak=True)
    if isinstance(value, int):
        return scalar("int64", weak=True)
    if isinstance(value, float):
        return scalar("float64", weak=True)
    return TOP


def _broadcast_ndim(left: int | None, right: int | None) -> int | None:
    if left is None or right is None:
        return None
    return max(left, right)


def _join_envs(
    left: dict[str, ArrayValue], right: dict[str, ArrayValue]
) -> dict[str, ArrayValue]:
    result: dict[str, ArrayValue] = {}
    for key in left.keys() | right.keys():
        result[key] = left.get(key, TOP).join(right.get(key, TOP))
    return result


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _has_axis_argument(node: ast.Call) -> bool:
    return _keyword(node, "axis") is not None or len(node.args) > 1


def _axis_argument(node: ast.Call, positional_index: int) -> int | None:
    value = _keyword(node, "axis")
    if value is None and len(node.args) > positional_index:
        value = node.args[positional_index]
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        return value.value
    if (
        isinstance(value, ast.UnaryOp)
        and isinstance(value.op, ast.USub)
        and isinstance(value.operand, ast.Constant)
        and isinstance(value.operand.value, int)
    ):
        return -value.operand.value
    return None


def _reshape_ndim(node: ast.Call) -> int | None:
    if len(node.args) == 1 and isinstance(node.args[0], ast.Tuple):
        return len(node.args[0].elts)
    if node.args and all(
        not isinstance(a, (ast.Tuple, ast.List)) for a in node.args
    ):
        return len(node.args)
    return None


def _shape_arg_ndim(node: ast.Call) -> int | None:
    if not node.args:
        return None
    shape = node.args[0]
    if isinstance(shape, ast.Tuple):
        return len(shape.elts)
    if isinstance(shape, ast.Constant) and isinstance(shape.value, int):
        return 1
    # ``np.zeros(n)`` with a scalar variable is also rank one, but a
    # tuple-valued variable is not; stay unknown for non-literals.
    return None


def _is_integer_dtype(dtype: str) -> bool:
    return dtype.startswith(("int", "uint"))
