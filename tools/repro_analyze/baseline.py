"""Baseline file: accepted findings the analyzer must stay quiet about.

The baseline holds one fingerprint per accepted finding — ``CODE
symbol hash`` (see :meth:`Finding.fingerprint`) — and *requires* a
trailing ``#`` comment explaining why the finding is accepted; an
uncommented entry is a parse error, so nobody can wave a finding
through silently.  Fingerprints exclude line numbers, so entries
survive edits that merely move code around.

``python -m tools.repro_analyze --write-baseline`` regenerates the
file, carrying existing comments over and marking new entries with
``TODO: justify``, which the parser rejects until replaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .findings import CODES, Finding

DEFAULT_BASELINE = Path(__file__).parent / "baseline.txt"

_HEADER = """\
# repro-analyze baseline — accepted findings.
#
# One entry per line: CODE symbol fingerprint  # why it is accepted
# The comment is mandatory; regenerate with
#   python -m tools.repro_analyze --write-baseline
# and replace every "TODO: justify" before committing.
"""


class BaselineError(ValueError):
    """The baseline file is malformed (missing comment, bad shape)."""


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    comment: str


def parse_baseline(path: Path) -> dict[str, BaselineEntry]:
    """Load fingerprints → entries; raises BaselineError on bad lines."""
    entries: dict[str, BaselineEntry] = {}
    if not path.exists():
        return entries
    for number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, marker, comment = line.partition("#")
        comment = comment.strip()
        if not marker or not comment:
            raise BaselineError(
                f"{path}:{number}: baseline entries need a trailing "
                f"'# why accepted' comment"
            )
        if comment.upper().startswith("TODO"):
            raise BaselineError(
                f"{path}:{number}: replace the TODO comment with a real "
                f"justification before committing"
            )
        parts = body.split()
        if len(parts) != 3 or parts[0] not in CODES:
            raise BaselineError(
                f"{path}:{number}: expected 'CODE symbol fingerprint', "
                f"got {body.strip()!r}"
            )
        entries[" ".join(parts)] = BaselineEntry(
            fingerprint=" ".join(parts), comment=comment
        )
    return entries


def apply_baseline(
    findings: list[Finding], entries: dict[str, BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split into (unbaselined findings, stale entries)."""
    seen: set[str] = set()
    fresh: list[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in entries:
            seen.add(fingerprint)
        else:
            fresh.append(finding)
    stale = [
        entry
        for fingerprint, entry in entries.items()
        if fingerprint not in seen
    ]
    return fresh, stale


def write_baseline(
    path: Path,
    findings: list[Finding],
    existing: dict[str, BaselineEntry],
) -> None:
    """Write all current findings, keeping comments of known entries."""
    lines = [_HEADER]
    for fingerprint in sorted({f.fingerprint() for f in findings}):
        entry = existing.get(fingerprint)
        comment = entry.comment if entry is not None else "TODO: justify"
        lines.append(f"{fingerprint}  # {comment}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
