"""Call graph shared by all three repro-analyze passes.

For every project function the graph records three edge kinds:

``calls``
    Direct call sites whose callee resolves to a project function
    (including ``self.method`` dispatch through the enclosing class
    and its project bases).
``references``
    Project functions *mentioned* without being called — passed as a
    callback, stored in a registry, returned.  The purity pass treats
    a referenced function as reachable, because the mention is exactly
    how work is smuggled into a ``ProcessPoolExecutor``.
``instantiations``
    Project classes that are constructed or merely referenced.  The
    conservative closure pulls in every method of such a class (and of
    its project bases): once an instance escapes into a worker, any of
    its methods may run there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .project import (
    ClassInfo,
    FunctionInfo,
    FunctionNode,
    Project,
    dotted_name,
)


@dataclass
class CallSite:
    """One resolved call edge with its source location."""

    callee: str
    node: ast.Call


@dataclass
class FunctionEdges:
    """Outgoing edges of a single function."""

    calls: list[CallSite] = field(default_factory=list)
    references: set[str] = field(default_factory=set)
    instantiations: set[str] = field(default_factory=set)
    unresolved_calls: list[ast.Call] = field(default_factory=list)


class CallGraph:
    """Outgoing edges for every function in a :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        self.edges: dict[str, FunctionEdges] = {}
        for qualname, info in project.functions.items():
            self.edges[qualname] = _collect_edges(project, info)

    def callees(self, qualname: str) -> Iterator[FunctionInfo]:
        for site in self.edges.get(qualname, FunctionEdges()).calls:
            info = self.project.functions.get(site.callee)
            if info is not None:
                yield info

    def reachable(self, roots: list[str]) -> set[str]:
        """Conservative closure of function qualnames from the roots.

        Follows call edges, reference edges, and — for every class that
        is instantiated or referenced along the way — all methods of
        that class and its project bases.  Over-approximates real
        reachability, which is the safe direction for a purity proof.
        """
        seen: set[str] = set()
        seen_classes: set[str] = set()
        stack = [r for r in roots if r in self.project.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            edges = self.edges.get(current)
            if edges is None:
                continue
            for site in edges.calls:
                if site.callee in self.project.functions:
                    stack.append(site.callee)
            for ref in edges.references:
                if ref in self.project.functions:
                    stack.append(ref)
            for cls_name in edges.instantiations:
                stack.extend(
                    self._class_methods(cls_name, seen_classes)
                )
        return seen

    def _class_methods(
        self, cls_name: str, seen_classes: set[str]
    ) -> list[str]:
        methods: list[str] = []
        stack = [cls_name]
        while stack:
            name = stack.pop()
            if name in seen_classes:
                continue
            seen_classes.add(name)
            cls = self.project.classes.get(name)
            if cls is None:
                continue
            methods.extend(cls.methods.values())
            for base in self.project.base_classes(cls):
                stack.append(base.qualname)
        return methods


def _collect_edges(project: Project, info: FunctionInfo) -> FunctionEdges:
    edges = FunctionEdges()
    collector = _EdgeCollector(project, info, edges)
    for stmt in info.node.body:
        collector.visit(stmt)
    return edges


class _EdgeCollector(ast.NodeVisitor):
    def __init__(
        self, project: Project, info: FunctionInfo, edges: FunctionEdges
    ):
        self.project = project
        self.info = info
        self.edges = edges
        self.module = info.module

    # Nested defs have their own edge sets; lambdas are walked inline
    # because their bodies execute in the enclosing function's context
    # whenever the callback fires.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        nested = f"{self.info.qualname}.{node.name}"
        if nested in self.project.functions:
            self.edges.references.add(nested)
        else:  # pragma: no cover - defensive; nested defs are indexed
            self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        callee = self._resolve_callee(node.func)
        if isinstance(callee, FunctionInfo):
            self.edges.calls.append(CallSite(callee.qualname, node))
        elif isinstance(callee, ClassInfo):
            self.edges.instantiations.add(callee.qualname)
        else:
            self.edges.unresolved_calls.append(node)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)
        # The func expression itself may reference further names
        # (e.g. ``registry[name].build(...)``).
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            self.visit(node.func)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._record_reference(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = dotted_name(node)
        if dotted is not None and isinstance(node.ctx, ast.Load):
            self._record_reference(dotted)
        else:
            self.generic_visit(node)

    def _record_reference(self, dotted: str) -> None:
        function = self.project.resolve_function(self.module, dotted)
        if function is not None:
            self.edges.references.add(function.qualname)
            return
        cls = self.project.resolve_class(self.module, dotted)
        if cls is not None:
            self.edges.instantiations.add(cls.qualname)

    def _resolve_callee(
        self, func: ast.expr
    ) -> FunctionInfo | ClassInfo | None:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        # ``self.method(...)`` dispatch through the enclosing class.
        head, _, rest = dotted.partition(".")
        if head == "self" and rest and self.info.class_name is not None:
            cls = self.project.class_of_function(self.info)
            if cls is not None and "." not in rest:
                method = self.project.resolve_method(cls, rest)
                if method is not None:
                    return method
            return None
        function = self.project.resolve_function(self.module, dotted)
        if function is not None:
            return function
        return self.project.resolve_class(self.module, dotted)
