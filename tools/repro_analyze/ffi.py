"""Pass A4: the FFI contract between the C kernels and their bindings.

The cext backend is the one place where Python's type discipline ends:
ctypes will happily push a float64 buffer through an ``int64_t *``
parameter, and C will happily index past the end of it.  This pass
closes that gap statically, from three sides:

``A401``
    Signature agreement.  Every exported (non-static) function in
    ``_C_SOURCE`` must carry a ctypes binding whose ``argtypes`` /
    ``restype`` match the C prototype position for position — pointer
    vs scalar, base dtype, and the ``C_CONTIGUOUS`` requirement on
    every ``ndpointer``.  Bindings without a C definition and exported
    functions without a binding are the same defect seen from the
    other side.
``A402``
    Pointer bounds.  A pointer parameter is only usable when the
    signature also carries integer *length* parameters and every index
    expression into the pointer is derivable from them: scalar
    parameters are bounded by the caller's contract, loop counters
    stepped from bounded values stay bounded, and values read out of
    an array are data, never bounds (see
    :func:`cparse.unbounded_pointer_indices`).
``A403``
    Call-site proof.  Every ``lib.<fn>(…)`` call in the binding module
    must pass, for each ``ndpointer`` position, an argument that is
    *provably* C-contiguous with the declared dtype — a fresh
    ``np.empty``/``np.zeros`` allocation or an
    ``np.ascontiguousarray(…, dtype=…)`` wrapper, with dtypes resolved
    through the A1 annotation lattice (``IntArray`` → int64 …).
    "Probably fine" is exactly what this code cannot be.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .cparse import (
    C_INTEGER_TYPES,
    C_SCALAR_DTYPES,
    CFunction,
    CParseError,
    parse_functions,
    unbounded_pointer_indices,
)
from .findings import Finding
from .lattice import canonical_dtype, value_from_annotation
from .project import FunctionInfo, ModuleInfo, Project, dotted_name

#: ctypes scalar constructors → numpy dtype names.
_CTYPES_SCALARS: dict[str, str] = {
    "c_int64": "int64",
    "c_longlong": "int64",
    "c_int32": "int32",
    "c_int": "int32",
    "c_uint8": "uint8",
    "c_ubyte": "uint8",
    "c_double": "float64",
    "c_float": "float32",
    "c_bool": "bool",
}

#: numpy allocators that return fresh C-contiguous arrays.
_FRESH_ALLOCATORS = frozenset(
    {"empty", "zeros", "ones", "full", "arange", "ascontiguousarray"}
)


@dataclass(frozen=True)
class _ArgSpec:
    """One ctypes argtype: pointer-with-dtype or scalar-with-dtype."""

    kind: str  # "ptr" | "scalar" | "unknown"
    dtype: str | None = None
    contiguous: bool = False


@dataclass
class _Binding:
    """The ctypes binding statements seen for one function name."""

    name: str
    argtypes: list[_ArgSpec] | None = None
    restype: _ArgSpec | None = None  # kind "void" encoded as scalar/None
    restype_is_void: bool = False
    line: int = 1
    call_sites: list[tuple[ast.Call, FunctionInfo]] = field(
        default_factory=list
    )


def analyze_ffi(
    project: Project,
    cext_module: str = "repro.core.kernels.cext_backend",
    source_global: str = "_C_SOURCE",
) -> list[Finding]:
    """Run pass A4 over the ctypes binding module, if present."""
    module = project.modules.get(cext_module)
    if module is None:
        return []
    source, source_line = _find_c_source(module, source_global)
    if source is None:
        return []

    findings: list[Finding] = []
    try:
        functions = parse_functions(source)
    except CParseError as error:
        return [
            _finding(
                module,
                source_line,
                "A401",
                source_global,
                f"C source is outside the analyzable kernel dialect: {error}",
            )
        ]

    pointer_table = _ndpointer_table(project, module)
    bindings = _collect_bindings(project, module, pointer_table)
    exported = {
        name: fn for name, fn in functions.items() if not fn.is_static
    }

    findings.extend(
        _check_signatures(module, source_line, exported, bindings)
    )
    for fn in functions.values():
        findings.extend(_check_pointer_bounds(module, source_line, fn))
    for binding in bindings.values():
        if binding.argtypes is None:
            continue  # A401 already reports the missing argtypes
        for call, info in binding.call_sites:
            findings.extend(
                _check_call_site(project, module, info, call, binding)
            )
    return sorted(set(findings))


# -- source / binding discovery ----------------------------------------


def _find_c_source(
    module: ModuleInfo, source_global: str
) -> tuple[str | None, int]:
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == source_global
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            return node.value.value, node.value.lineno
    return None, 1


def _ndpointer_table(
    project: Project, module: ModuleInfo
) -> dict[str, _ArgSpec]:
    """Module-level ``X = np.ctypeslib.ndpointer(…)`` shorthands."""
    table: dict[str, _ArgSpec] = {}
    for node in module.tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        spec = _eval_ndpointer(module, node.value)
        if spec is not None:
            table[node.targets[0].id] = spec
    return table


def _eval_ndpointer(module: ModuleInfo, node: ast.expr) -> _ArgSpec | None:
    if not isinstance(node, ast.Call):
        return None
    callee = _canonical(module, dotted_name(node.func))
    if callee is None or not callee.endswith("ctypeslib.ndpointer"):
        return None
    dtype: str | None = None
    contiguous = False
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            dtype = _dtype_of_spec(keyword.value)
        elif keyword.arg == "flags":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                contiguous = "C_CONTIGUOUS" in keyword.value.value
    return _ArgSpec(kind="ptr", dtype=dtype, contiguous=contiguous)


def _dtype_of_spec(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return canonical_dtype(node.value)
    dotted = dotted_name(node)
    if dotted is not None:
        return canonical_dtype(dotted.rsplit(".", 1)[-1])
    return None


def _argtype_spec(
    module: ModuleInfo, node: ast.expr, pointer_table: dict[str, _ArgSpec]
) -> _ArgSpec:
    if isinstance(node, ast.Name) and node.id in pointer_table:
        return pointer_table[node.id]
    inline = _eval_ndpointer(module, node)
    if inline is not None:
        return inline
    dotted = _canonical(module, dotted_name(node))
    if dotted is not None:
        tail = dotted.rsplit(".", 1)[-1]
        if tail in _CTYPES_SCALARS:
            return _ArgSpec(kind="scalar", dtype=_CTYPES_SCALARS[tail])
    return _ArgSpec(kind="unknown")


def _collect_bindings(
    project: Project,
    module: ModuleInfo,
    pointer_table: dict[str, _ArgSpec],
) -> dict[str, _Binding]:
    bindings: dict[str, _Binding] = {}

    def binding_for(name: str, line: int) -> _Binding:
        return bindings.setdefault(name, _Binding(name=name, line=line))

    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
        ):
            continue
        target = node.targets[0]
        if not isinstance(target.value, ast.Attribute):
            continue
        fname = target.value.attr
        if target.attr == "argtypes" and isinstance(
            node.value, (ast.List, ast.Tuple)
        ):
            binding_for(fname, node.lineno).argtypes = [
                _argtype_spec(module, element, pointer_table)
                for element in node.value.elts
            ]
        elif target.attr == "restype":
            entry = binding_for(fname, node.lineno)
            if isinstance(node.value, ast.Constant) and node.value.value is None:
                entry.restype_is_void = True
            else:
                entry.restype = _argtype_spec(
                    module, node.value, pointer_table
                )

    bound_names = set(bindings)
    for info in module.functions.values():
        for call in _own_calls(info.node):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in bound_names
                and isinstance(call.func.value, ast.Name)
            ):
                bindings[call.func.attr].call_sites.append((call, info))
    return bindings


def _own_calls(node: ast.AST) -> list[ast.Call]:
    """Call nodes of a function body, nested defs excluded."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(current, ast.Call):
            calls.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return calls


# -- A401: prototype vs binding ----------------------------------------


def _check_signatures(
    module: ModuleInfo,
    source_line: int,
    exported: dict[str, CFunction],
    bindings: dict[str, _Binding],
) -> list[Finding]:
    findings: list[Finding] = []
    for name, fn in exported.items():
        line = source_line + fn.line - 1
        binding = bindings.get(name)
        if binding is None or binding.argtypes is None:
            findings.append(
                _finding(
                    module,
                    line,
                    "A401",
                    name,
                    "exported C function has no ctypes argtypes binding",
                )
            )
            continue
        findings.extend(_compare_signature(module, fn, binding))
    for name, binding in bindings.items():
        if name not in exported and binding.argtypes is not None:
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    name,
                    "ctypes binding has no exported C function definition",
                )
            )
    return findings


def _compare_signature(
    module: ModuleInfo, fn: CFunction, binding: _Binding
) -> list[Finding]:
    findings: list[Finding] = []
    argtypes = binding.argtypes or []
    if len(argtypes) != len(fn.params):
        findings.append(
            _finding(
                module,
                binding.line,
                "A401",
                fn.name,
                f"argtypes has {len(argtypes)} entries but the C prototype "
                f"takes {len(fn.params)} parameters",
            )
        )
        return findings
    for position, (param, spec) in enumerate(zip(fn.params, argtypes)):
        if spec.kind == "unknown":
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    fn.name,
                    f"argtypes[{position}] ({param.name!r}) is not a "
                    f"recognizable ctypes scalar or ndpointer spec",
                )
            )
            continue
        if param.is_pointer != (spec.kind == "ptr"):
            expected = "a pointer" if param.is_pointer else "a scalar"
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    fn.name,
                    f"argtypes[{position}] ({param.name!r}) binds "
                    f"{spec.kind!r} where the C prototype declares "
                    f"{expected} ({param.base_type}"
                    f"{' *' if param.is_pointer else ''})",
                )
            )
            continue
        if spec.dtype != param.dtype:
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    fn.name,
                    f"argtypes[{position}] ({param.name!r}) declares dtype "
                    f"{spec.dtype} but the C parameter is "
                    f"{param.base_type} ({param.dtype})",
                )
            )
        if param.is_pointer and not spec.contiguous:
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    fn.name,
                    f"argtypes[{position}] ({param.name!r}) ndpointer does "
                    f"not require C_CONTIGUOUS",
                )
            )
    if fn.return_type == "void":
        if not binding.restype_is_void:
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    fn.name,
                    "C function returns void but restype is not None",
                )
            )
    else:
        expected = C_SCALAR_DTYPES.get(fn.return_type)
        returned = binding.restype.dtype if binding.restype else None
        if binding.restype_is_void or returned is None:
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    fn.name,
                    f"C function returns {fn.return_type} but the binding "
                    f"declares no scalar restype",
                )
            )
        elif expected is not None and returned != expected:
            findings.append(
                _finding(
                    module,
                    binding.line,
                    "A401",
                    fn.name,
                    f"restype dtype {returned} does not match the C return "
                    f"type {fn.return_type}",
                )
            )
    return findings


# -- A402: pointer/length pairing --------------------------------------


def _check_pointer_bounds(
    module: ModuleInfo, source_line: int, fn: CFunction
) -> list[Finding]:
    if not fn.pointer_params:
        return []
    line = source_line + fn.line - 1
    has_length = any(
        param.base_type in C_INTEGER_TYPES for param in fn.scalar_params
    )
    if not has_length:
        return [
            _finding(
                module,
                line,
                "A402",
                fn.name,
                f"pointer parameter {param.name!r} has no integer length "
                f"parameter pairing it in the signature",
            )
            for param in fn.pointer_params
        ]
    return [
        _finding(
            module,
            line,
            "A402",
            fn.name,
            f"index [{expr}] into pointer parameter {pointer!r} uses "
            f"{ident!r}, which is not derivable from the signature's "
            f"length parameters",
        )
        for pointer, expr, ident in unbounded_pointer_indices(fn)
    ]


# -- A403: call-site array proof ---------------------------------------


def _check_call_site(
    project: Project,
    module: ModuleInfo,
    info: FunctionInfo,
    call: ast.Call,
    binding: _Binding,
) -> list[Finding]:
    argtypes = binding.argtypes or []
    if len(call.args) != len(argtypes) or call.keywords:
        return [
            _finding(
                module,
                call.lineno,
                "A403",
                binding.name,
                f"call passes {len(call.args)} positional arguments but "
                f"argtypes declares {len(argtypes)}",
            )
        ]
    env = _local_env(info)
    findings: list[Finding] = []
    for position, (arg, spec) in enumerate(zip(call.args, argtypes)):
        if spec.kind != "ptr":
            continue
        dtype, contiguous = _prove_array(project, module, info, env, arg)
        rendered = ast.unparse(arg)
        if not contiguous:
            findings.append(
                _finding(
                    module,
                    call.lineno,
                    "A403",
                    binding.name,
                    f"argument {position} ({rendered}) is not provably "
                    f"C-contiguous; wrap it in np.ascontiguousarray or "
                    f"allocate it fresh at the call site",
                )
            )
        if spec.dtype is not None and dtype != spec.dtype:
            shown = dtype if dtype is not None else "unknown"
            findings.append(
                _finding(
                    module,
                    call.lineno,
                    "A403",
                    binding.name,
                    f"argument {position} ({rendered}) has dtype {shown} "
                    f"but the binding requires {spec.dtype}",
                )
            )
    return findings


def _local_env(info: FunctionInfo) -> dict[str, ast.expr]:
    """Last single-target assignment per local name, nested defs excluded."""
    env: dict[str, ast.expr] = {}
    stack: list[ast.AST] = list(info.node.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            env[node.targets[0].id] = node.value
        for child in ast.iter_child_nodes(node):
            stack.append(child)
    return env


def _prove_array(
    project: Project,
    module: ModuleInfo,
    info: FunctionInfo,
    env: dict[str, ast.expr],
    node: ast.expr,
    depth: int = 0,
) -> tuple[str | None, bool]:
    """``(dtype, provably_contiguous)`` for a call-site argument."""
    if depth > 8:
        return None, False
    if isinstance(node, ast.Call):
        callee = _canonical(module, dotted_name(node.func))
        tail = callee.rsplit(".", 1)[-1] if callee else None
        if callee and callee.startswith("numpy.") and tail in _FRESH_ALLOCATORS:
            dtype = None
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype = _dtype_of_spec(keyword.value)
            if dtype is None and tail == "ascontiguousarray" and node.args:
                dtype, _ = _prove_array(
                    project, module, info, env, node.args[0], depth + 1
                )
            return dtype, True
        return None, False
    if isinstance(node, ast.Name):
        if node.id in env:
            return _prove_array(
                project, module, info, env, env[node.id], depth + 1
            )
        value = value_from_annotation(_param_annotation(info, node.id))
        if value is not None:
            return value.dtype, False
        return None, False
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        annotation = _param_annotation(info, node.value.id)
        if annotation is not None:
            cls = project.resolve_class(module, annotation)
            if cls is not None and node.attr in cls.annotations:
                value = value_from_annotation(cls.annotations[node.attr])
                if value is not None:
                    # Dtype comes from the class contract; contiguity
                    # must still be proven at the call site.
                    return value.dtype, False
        return None, False
    if isinstance(node, ast.Subscript):
        dtype, _ = _prove_array(
            project, module, info, env, node.value, depth + 1
        )
        return dtype, False
    return None, False


def _param_annotation(info: FunctionInfo, name: str) -> str | None:
    for arg in info.parameters():
        if arg.arg == name and arg.annotation is not None:
            return dotted_name(arg.annotation)
    return None


# -- helpers -----------------------------------------------------------


def _canonical(module: ModuleInfo, dotted: str | None) -> str | None:
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = module.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _finding(
    module: ModuleInfo, line: int, code: str, symbol: str, message: str
) -> Finding:
    return Finding(
        path=str(module.path),
        line=line,
        col=0,
        code=code,
        symbol=f"{module.name}.{symbol}",
        message=message,
    )
