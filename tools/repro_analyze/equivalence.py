"""Pass A5: prove the compiled backends share one algorithmic source.

The bit-identity story of the kernels rests on two structural claims:
the numba backend compiles *the* loop bodies from
:mod:`repro.core.kernels.loops` (not private copies that could drift),
and the C transliteration in the cext backend mirrors those bodies
statement for statement.  Neither claim is enforced by any test that
merely compares outputs — outputs agree until the day an edit lands on
one side only.  This pass checks the structure itself:

``A501``
    Numba dispatch.  Every public kernel in the loops module must be
    *referenced* (``loops.K``) by the numba backend, and no function in
    the numba backend named after a kernel may itself contain loops —
    a loop-bearing namesake is a private reimplementation, whether it
    is a byte-identical duplicate (single-source-of-truth violation)
    or a diverging one (a silent fork).  The wrappers the backend
    legitimately defines are loop-free adapters, so the rule separates
    them cleanly.
``A502``
    Loop-skeleton agreement.  For every kernel defined on both sides,
    the for/while nesting tree of the C function (private static
    helpers inlined at their call sites, shared-name callees kept
    opaque) must equal the loop tree of the Python body.  The skeleton
    is deliberately coarser than a statement diff — C hoists row
    compares into helpers and conditions — but any change to *which
    loops run inside which loops* is an algorithmic divergence and is
    exactly what it catches.
``A503``
    Constant agreement.  Every numeric ``#define`` in the C source
    must equal the Python constant of the same name (modulo the
    leading-underscore privacy convention: C ``SF_TOLERANCE`` pairs
    with Python ``_SF_TOLERANCE``).  Guard bands that differ between
    backends would void the scipy-adjudication contract silently.
"""

from __future__ import annotations

import ast

from .cparse import (
    CParseError,
    loop_skeleton,
    parse_defines,
    parse_functions,
)
from .findings import Finding
from .project import FunctionInfo, ModuleInfo, Project, dotted_name


def analyze_equivalence(
    project: Project,
    loops_module: str = "repro.core.kernels.loops",
    numba_module: str = "repro.core.kernels.numba_backend",
    cext_module: str = "repro.core.kernels.cext_backend",
    source_global: str = "_C_SOURCE",
) -> list[Finding]:
    """Run pass A5 over the kernel backend modules, where present."""
    loops_mod = project.modules.get(loops_module)
    if loops_mod is None:
        return []
    kernels = _public_kernels(loops_mod)
    findings: list[Finding] = []

    numba_mod = project.modules.get(numba_module)
    if numba_mod is not None:
        findings.extend(
            _check_numba_dispatch(project, numba_mod, loops_mod, kernels)
        )

    cext_mod = project.modules.get(cext_module)
    if cext_mod is not None:
        source, source_line = _find_c_source(cext_mod, source_global)
        if source is not None:
            findings.extend(
                _check_c_equivalence(
                    cext_mod, source, source_line, loops_mod, kernels
                )
            )
    return sorted(set(findings))


def _public_kernels(loops_mod: ModuleInfo) -> dict[str, FunctionInfo]:
    """Top-level functions of the loops module, private ones included.

    ``binom_sf`` is public; a private helper would still need a C/numba
    counterpart compared under its own name, so everything top-level
    participates.
    """
    return {
        info.name: info
        for info in loops_mod.functions.values()
        if info.class_name is None
        and info.qualname == f"{loops_mod.name}.{info.name}"
    }


# -- A501: numba dispatches to the shared bodies -----------------------


def _check_numba_dispatch(
    project: Project,
    numba_mod: ModuleInfo,
    loops_mod: ModuleInfo,
    kernels: dict[str, FunctionInfo],
) -> list[Finding]:
    findings: list[Finding] = []
    referenced: set[str] = set()
    for node in ast.walk(numba_mod.tree):
        if not isinstance(node, ast.Attribute):
            continue
        dotted = dotted_name(node)
        if dotted is None:
            continue
        resolved = project.resolve(numba_mod, dotted)
        if resolved is None:
            continue
        prefix, _, name = resolved.rpartition(".")
        if prefix == loops_mod.name and name in kernels:
            referenced.add(name)

    for name in sorted(set(kernels) - referenced):
        findings.append(
            _finding(
                numba_mod,
                1,
                "A501",
                f"{numba_mod.name}.{name}",
                f"numba backend never references the shared loops body "
                f"{loops_mod.name}.{name}; the kernel cannot be proven to "
                f"dispatch to the single source of truth",
            )
        )

    for info in numba_mod.functions.values():
        if info.name not in kernels:
            continue
        loop_count = sum(
            isinstance(node, (ast.For, ast.While))
            for node in ast.walk(info.node)
        )
        if loop_count == 0:
            continue  # a loop-free adapter over the compiled dispatcher
        shared = kernels[info.name]
        identical = ast.dump(info.node) == ast.dump(shared.node)
        variant = (
            "a byte-identical duplicate of"
            if identical
            else "a diverging reimplementation of"
        )
        findings.append(
            _finding(
                numba_mod,
                info.node.lineno,
                "A501",
                info.qualname,
                f"defines a loop-bearing private copy of kernel "
                f"{info.name!r} ({variant} {shared.qualname}) instead of "
                f"jitting the shared loops body",
            )
        )
    return findings


# -- A502: C loop skeletons match the Python bodies --------------------


def _check_c_equivalence(
    cext_mod: ModuleInfo,
    source: str,
    source_line: int,
    loops_mod: ModuleInfo,
    kernels: dict[str, FunctionInfo],
) -> list[Finding]:
    try:
        c_functions = parse_functions(source)
    except CParseError as error:
        return [
            _finding(
                cext_mod,
                source_line,
                "A502",
                cext_mod.name,
                f"C source is outside the analyzable kernel dialect: {error}",
            )
        ]
    findings: list[Finding] = []
    shared_names = frozenset(c_functions) & frozenset(kernels)
    for name in sorted(shared_names):
        c_fn = c_functions[name]
        c_skeleton = loop_skeleton(c_fn, c_functions, opaque=shared_names)
        py_skeleton = _python_skeleton(kernels[name].node)
        if c_skeleton != py_skeleton:
            findings.append(
                _finding(
                    cext_mod,
                    source_line + c_fn.line - 1,
                    "A502",
                    f"{cext_mod.name}.{name}",
                    f"C loop skeleton [{c_skeleton}] diverges from the "
                    f"Python body's [{py_skeleton}] in "
                    f"{kernels[name].qualname}",
                )
            )
    findings.extend(
        _check_constants(cext_mod, source, source_line, loops_mod)
    )
    return findings


def _python_skeleton(node: ast.AST) -> str:
    """Render a function's for/while nesting tree (see cparse)."""
    return _render(_py_nodes(getattr(node, "body", [])))


def _render(nodes: list[tuple[str, list]]) -> str:
    parts = []
    for kind, children in nodes:
        parts.append(f"{kind}({_render(children)})" if children else kind)
    return ",".join(parts)


def _py_nodes(stmts: list[ast.stmt]) -> list[tuple[str, list]]:
    nodes: list[tuple[str, list]] = []
    for stmt in stmts:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            nodes.append(("F", _py_nodes(stmt.body + stmt.orelse)))
        elif isinstance(stmt, ast.While):
            nodes.append(("W", _py_nodes(stmt.body + stmt.orelse)))
        elif isinstance(stmt, (ast.If,)):
            nodes.extend(_py_nodes(stmt.body))
            nodes.extend(_py_nodes(stmt.orelse))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            nodes.extend(_py_nodes(stmt.body))
        elif isinstance(stmt, ast.Try):
            for region in (stmt.body, stmt.orelse, stmt.finalbody):
                nodes.extend(_py_nodes(region))
            for handler in stmt.handlers:
                nodes.extend(_py_nodes(handler.body))
        # Nested defs, expressions and assignments contribute no loops:
        # the kernel dialect has no comprehensions or generator bodies.
    return nodes


# -- A503: #define constants equal the Python definitions --------------


def _check_constants(
    cext_mod: ModuleInfo,
    source: str,
    source_line: int,
    loops_mod: ModuleInfo,
) -> list[Finding]:
    py_constants = _module_constants(loops_mod)
    findings: list[Finding] = []
    for name, (text, line) in sorted(parse_defines(source).items()):
        try:
            c_value = float(text)
        except ValueError:
            continue  # non-numeric define: outside this check's scope
        where = source_line + line - 1
        counterpart = name if name in py_constants else f"_{name}"
        if counterpart not in py_constants:
            findings.append(
                _finding(
                    cext_mod,
                    where,
                    "A503",
                    f"{cext_mod.name}.{name}",
                    f"C #define {name} has no counterpart constant in "
                    f"{loops_mod.name} (looked for {name} and _{name})",
                )
            )
            continue
        py_value = py_constants[counterpart]
        if float(py_value) != c_value:
            findings.append(
                _finding(
                    cext_mod,
                    where,
                    "A503",
                    f"{cext_mod.name}.{name}",
                    f"C #define {name} = {text} differs from "
                    f"{loops_mod.name}.{counterpart} = {py_value!r}",
                )
            )
    return findings


def _module_constants(module: ModuleInfo) -> dict[str, float]:
    constants: dict[str, float] = {}
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, (int, float))
            and not isinstance(node.value.value, bool)
        ):
            constants[node.targets[0].id] = float(node.value.value)
    return constants


# -- helpers -----------------------------------------------------------


def _find_c_source(
    module: ModuleInfo, source_global: str
) -> tuple[str | None, int]:
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == source_global
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            return node.value.value, node.value.lineno
    return None, 1


def _finding(
    module: ModuleInfo, line: int, code: str, symbol: str, message: str
) -> Finding:
    return Finding(
        path=str(module.path),
        line=line,
        col=0,
        code=code,
        symbol=symbol,
        message=message,
    )
