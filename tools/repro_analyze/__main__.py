"""Entry point: ``python -m tools.repro_analyze``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
