"""Finding records shared by every repro-analyze pass.

A finding carries a stable ``code`` (``A1xx`` shape/dtype, ``A2xx``
parallel purity, ``A3xx`` contract cross-check, ``A4xx`` FFI contract,
``A5xx`` backend equivalence, ``A6xx`` cross-process determinism), a
``file:line``
location for humans, and a *location-free* fingerprint for the
baseline: accepted findings are keyed on ``(code, symbol, message)``
so they survive unrelated edits that move line numbers around.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

CODES: dict[str, str] = {
    "A000": "file could not be parsed",
    "A101": "narrowing cast: target dtype cannot represent the source",
    "A102": "platform-dependent integer width in a dtype",
    "A103": "shape-incompatible operation (axis/operand rank)",
    "A104": "silent upcast: operands promote to a dtype wider than either",
    "A201": "parallel worker writes module-level mutable state",
    "A202": "parallel worker draws ambient randomness",
    "A203": "parallel worker reads ambient state (clock/environment)",
    "A301": "public entry point misses a contracts check for an array parameter",
    "A302": "contracts check disagrees with the parameter annotation",
    "A401": "C prototype and ctypes binding disagree",
    "A402": "C pointer parameter without a bounding length parameter",
    "A403": "FFI call site passes an unproven array (dtype/contiguity)",
    "A501": "numba backend does not dispatch to the shared loops body",
    "A502": "C loop skeleton diverges from the Python kernel body",
    "A503": "C #define constant differs from the Python definition",
    "A601": "unordered iteration in a parallel dispatch path",
    "A602": "order-sensitive reduction of worker results",
    "A603": "mutable state reachable by worker closures",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer finding, pinned to a source location and a symbol."""

    path: str
    line: int
    col: int
    code: str
    symbol: str
    message: str

    def render(self) -> str:
        """GCC-style ``path:line:col: CODE [symbol] message`` line."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{self.symbol}] {self.message}"
        )

    def fingerprint(self) -> str:
        """Stable identity used by the baseline file.

        Line numbers are deliberately excluded so accepted findings
        survive edits elsewhere in the file; two identical findings in
        the same symbol share a fingerprint (one baseline entry accepts
        both — acceptable for a tool whose goal is a clean tree).
        """
        digest = hashlib.sha1(
            f"{self.code}|{self.symbol}|{self.message}".encode()
        ).hexdigest()[:10]
        return f"{self.code} {self.symbol} {digest}"
