"""Pass A2: purity proofs for functions dispatched to worker processes.

Entry points are found syntactically: every ``pool.submit(f, …)`` /
``pool.map(f, …)`` call in a module that imports
``ProcessPoolExecutor`` roots the proof at ``f``, and so does every
``run_supervised(f, …)`` call — the resilience supervisor forwards its
worker function to per-slot process pools, so a function dispatched
through it reaches workers exactly like a raw ``submit``.  From the
roots the pass walks the conservative closure of the shared call
graph — call edges, referenced callbacks, and *all* methods of every
class that is instantiated or referenced along the way (an instance
that escapes into a worker may have any method invoked there).

Inside that closure, three behaviours break the determinism guarantee
``REPRO_JOBS`` relies on (a parallel run must reproduce the serial
run bit-for-bit):

``A201``
    Writing module-level state: a ``global`` declaration that is
    assigned, or a store/mutation (``X[k] = …``, ``X.append(…)``)
    whose base is a module-level name.  Workers each mutate their own
    copy — the parent never sees it, and fork inheritance makes the
    result start-method dependent.
``A202``
    Ambient randomness: any ``np.random.*`` / stdlib ``random.*``
    draw.  Exempt: ``default_rng(seed)`` / ``Random(seed)`` *with* an
    argument — seeding from passed-in state is the sanctioned pattern.
``A203``
    Ambient reads: wall clocks (``time.time``, ``datetime.now`` …),
    environment variables, ``uuid``/hostname.  ``time.perf_counter``
    and ``time.process_time`` stay allowed — duration measurement is
    part of the protocol and is reported as such.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .callgraph import CallGraph
from .findings import Finding
from .project import FunctionInfo, ModuleInfo, Project, dotted_name

_EXECUTOR_IMPORTS = frozenset(
    {
        "concurrent.futures",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

_DISPATCH_METHODS = frozenset({"submit", "map", "apply_async", "starmap"})

#: Project-level dispatchers whose first argument reaches worker
#: processes (matched by terminal name, so both ``run_supervised(f, …)``
#: and ``supervisor.run_supervised(f, …)`` root).  Unlike pool methods
#: these need no executor import in the *calling* module — the pools
#: live behind the dispatcher.
_SUPERVISED_DISPATCHERS = frozenset({"run_supervised"})

#: Mutating methods on module-level containers.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "popitem",
        "sort",
        "reverse",
        "fill",
    }
)

#: Ambient reads that make a worker's output depend on when/where it ran.
_AMBIENT_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.environ",
        "os.getenv",
        "os.getpid",
        "os.urandom",
        "os.cpu_count",
        "uuid.uuid1",
        "uuid.uuid4",
        "socket.gethostname",
        "platform.node",
    }
)


@dataclass(frozen=True)
class ParallelEntry:
    """One function handed to a process pool, with its dispatch site."""

    qualname: str
    dispatch_module: str
    line: int


def find_parallel_entries(project: Project) -> list[ParallelEntry]:
    """Every project function dispatched via a process pool."""
    entries: list[ParallelEntry] = []
    for module in project.modules.values():
        pool_dispatch_possible = _imports_executor(module)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            if not (
                _is_pool_dispatch(node, pool_dispatch_possible)
                or _is_supervised_dispatch(node)
            ):
                continue
            target = dotted_name(node.args[0])
            if target is None:
                continue
            function = project.resolve_function(module, target)
            if function is not None:
                entries.append(
                    ParallelEntry(
                        qualname=function.qualname,
                        dispatch_module=module.name,
                        line=node.lineno,
                    )
                )
    return entries


def _is_pool_dispatch(node: ast.Call, imports_executor: bool) -> bool:
    return (
        imports_executor
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DISPATCH_METHODS
    )


def _is_supervised_dispatch(node: ast.Call) -> bool:
    callee = dotted_name(node.func)
    return (
        callee is not None
        and callee.split(".")[-1] in _SUPERVISED_DISPATCHERS
    )


def _imports_executor(module: ModuleInfo) -> bool:
    return any(
        target in _EXECUTOR_IMPORTS for target in module.imports.values()
    )


def analyze_purity(project: Project, graph: CallGraph) -> list[Finding]:
    """Run pass A2: prove every parallel worker closure pure."""
    entries = find_parallel_entries(project)
    if not entries:
        return []
    roots = sorted({entry.qualname for entry in entries})
    reachable = graph.reachable(roots)
    findings: list[Finding] = []
    for qualname in sorted(reachable):
        info = project.functions.get(qualname)
        if info is None:
            continue
        findings.extend(_check_function(project, info))
    return sorted(set(findings))


def _check_function(project: Project, info: FunctionInfo) -> list[Finding]:
    checker = _PurityChecker(project, info)
    for stmt in info.node.body:
        checker.visit(stmt)
    return checker.findings


class _PurityChecker(ast.NodeVisitor):
    def __init__(self, project: Project, info: FunctionInfo):
        self.project = project
        self.info = info
        self.module = info.module
        self.findings: list[Finding] = []
        self.declared_global: set[str] = set()
        self.local_names = _local_names(info)

    # Nested defs run in the same worker; lambdas likewise — both are
    # visited inline (their locals are over-approximated by ours, which
    # can only suppress findings about *their* locals, not invent any).
    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)
        self._report(
            "A201",
            node,
            f"declares global {', '.join(node.names)} inside a parallel "
            f"worker closure; module state written in a worker process "
            f"never reaches the parent",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_mutator_call(node)
        self._check_ambient_call(node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        canonical = self._canonical(dotted_name(node))
        if canonical in _AMBIENT_READS and isinstance(node.ctx, ast.Load):
            self._report(
                "A203",
                node,
                f"reads ambient state via {canonical} inside a parallel "
                f"worker closure",
            )
            return
        self.generic_visit(node)

    # -- stores --------------------------------------------------------

    def _check_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)
            return
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self._report(
                    "A201",
                    target,
                    f"writes module-level name {target.id!r} inside a "
                    f"parallel worker closure",
                )
            return
        root = _root_name(target)
        if root is None or root in {"self", "cls"}:
            return
        if self._is_module_global(root):
            self._report(
                "A201",
                target,
                f"mutates module-level object {root!r} inside a parallel "
                f"worker closure",
            )

    def _check_mutator_call(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            return
        root = _root_name(node.func.value)
        if root is None or root in {"self", "cls"}:
            return
        if self._is_module_global(root):
            self._report(
                "A201",
                node,
                f"calls {root}.{node.func.attr}(...) on a module-level "
                f"object inside a parallel worker closure",
            )

    def _is_module_global(self, name: str) -> bool:
        if name in self.local_names:
            return False
        if name in self.module.module_globals:
            return True
        target = self.module.imports.get(name)
        if target is None:
            return False
        # A bare ``import numpy as np`` binds a *module*; calling
        # ``np.append(...)`` is a function call, not a mutation.  Only
        # ``from mod import OBJECT`` bindings name mutable state.
        return "." in target and target not in self.project.modules

    # -- ambient calls -------------------------------------------------

    def _check_ambient_call(self, node: ast.Call) -> None:
        canonical = self._canonical(dotted_name(node.func))
        if canonical is None:
            return
        if canonical.startswith(("numpy.random.", "random.")):
            tail = canonical.rsplit(".", 1)[-1]
            seeded_factory = tail in {"default_rng", "Random", "RandomState"}
            if seeded_factory and (node.args or node.keywords):
                return
            self._report(
                "A202",
                node,
                f"draws ambient randomness via {canonical} inside a "
                f"parallel worker closure; thread a seeded Generator "
                f"through the arguments instead",
            )
            return
        if canonical.startswith("secrets."):
            self._report(
                "A202",
                node,
                f"draws ambient randomness via {canonical} inside a "
                f"parallel worker closure",
            )
            return
        if canonical in _AMBIENT_READS:
            self._report(
                "A203",
                node,
                f"reads ambient state via {canonical} inside a parallel "
                f"worker closure",
            )

    def _canonical(self, dotted: str | None) -> str | None:
        """Resolve the head through the import table (``np`` → ``numpy``)."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _report(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=str(self.module.path),
                line=getattr(node, "lineno", self.info.node.lineno),
                col=getattr(node, "col_offset", 0),
                code=code,
                symbol=self.info.qualname,
                message=message,
            )
        )


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _local_names(info: FunctionInfo) -> set[str]:
    """Names bound inside the function (params, assignments, loops…)."""
    names = {arg.arg for arg in info.parameters()}
    names.update({"self", "cls"})
    for node in ast.walk(info.node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not info.node:
                names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.comprehension):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    names.add(name_node.id)
    return names
