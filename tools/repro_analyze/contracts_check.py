"""Pass A3: cross-check runtime contracts against public entry points.

The runtime contract layer (``repro.core.contracts``) only protects the
package if every *public entry point* actually calls it.  This pass
derives the entry-point set from the package ``__init__`` exports
(``__all__``), finds every array-typed parameter (the ``repro.types``
aliases, ``np.ndarray``, and ``Iterable[...]`` of those), and verifies
each one reaches a ``check_*`` call — directly, through an alias
(``points = np.asarray(points, …)``, a chunk drawn from an iterable
parameter), or by being forwarded to a callee whose matching parameter
is checked (computed as a fixpoint, so ``fit_predict → fit →
check_array`` chains count).

``A301``
    An array parameter of a public entry point never reaches a
    ``check_*`` call on any path the pass can see.
``A302``
    A ``check_array(..., dtype=…)`` pinned to a dtype that contradicts
    the parameter's annotation (e.g. ``IntArray`` checked as float64) —
    one of the two is lying to callers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .findings import Finding
from .project import FunctionInfo, Project, dotted_name

_ARRAY_ANNOTATIONS = frozenset(
    {"FloatArray", "IntArray", "BoolArray", "AnyArray", "ndarray"}
)

_ITERABLE_WRAPPERS = frozenset(
    {"Iterable", "Iterator", "Sequence", "Collection", "list", "tuple"}
)

_CHECK_FUNCTIONS = frozenset({"check_array", "check_labels"})

#: Annotation alias → the dtype a ``check_array`` call should pin.
_EXPECTED_DTYPES = {
    "FloatArray": "float64",
    "IntArray": "int64",
    "BoolArray": "bool",
}

#: Alias-creating conversions: ``v = np.asarray(p, …)`` keeps ``v``
#: standing for the parameter ``p`` as far as checking is concerned.
_CONVERSIONS = frozenset(
    {"asarray", "ascontiguousarray", "asfortranarray", "array"}
)


@dataclass
class _ParamState:
    """Checking state of one array parameter of one function."""

    name: str
    index: int
    annotation: str
    iterable: bool
    node: ast.arg
    checked: bool = False
    #: Aliases that stand for the parameter verbatim (A302-eligible).
    direct_aliases: set[str] = field(default_factory=set)
    #: Aliases through a dtype-changing conversion (credit A301 only).
    converted_aliases: set[str] = field(default_factory=set)

    def all_aliases(self) -> set[str]:
        return self.direct_aliases | self.converted_aliases


def analyze_contracts(
    project: Project,
    packages: tuple[str, ...] = ("repro.core", "repro.baselines"),
) -> list[Finding]:
    """Run pass A3 over the exported entry points of ``packages``."""
    states = _parameter_states(project)
    _run_fixpoint(project, states)
    findings: list[Finding] = []
    for info in _entry_points(project, packages):
        for state in states.get(info.qualname, []):
            if not state.checked:
                findings.append(
                    _finding(
                        info,
                        state.node,
                        "A301",
                        f"array parameter {state.name!r} "
                        f"({state.annotation}) of public entry point "
                        f"{info.name!r} never reaches a contracts "
                        f"check_* call",
                    )
                )
    findings.extend(_annotation_mismatches(project, states))
    return sorted(set(findings))


def _entry_points(
    project: Project, packages: tuple[str, ...]
) -> list[FunctionInfo]:
    """Exported functions, plus public methods of exported classes."""
    entries: dict[str, FunctionInfo] = {}
    for package in packages:
        module = project.modules.get(package)
        if module is None:
            continue
        for name in _exported_names(module.tree):
            resolved = project.resolve(module, name)
            if resolved is None:
                continue
            function = project.functions.get(resolved)
            if function is not None:
                if function.module.name != "repro.core.contracts":
                    entries[function.qualname] = function
                continue
            cls = project.classes.get(resolved)
            if cls is None:
                continue
            method_names = set(cls.methods)
            stack = list(project.base_classes(cls))
            while stack:
                base = stack.pop()
                method_names.update(base.methods)
                stack.extend(project.base_classes(base))
            for method_name in method_names:
                if method_name.startswith("_") and method_name != "__init__":
                    continue
                method = project.resolve_method(cls, method_name)
                if method is not None:
                    entries[method.qualname] = method
    return [entries[qualname] for qualname in sorted(entries)]


def _exported_names(tree: ast.Module) -> list[str]:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            return [
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
    return []


# -- parameter states and aliases --------------------------------------


def _parameter_states(
    project: Project,
) -> dict[str, list[_ParamState]]:
    states: dict[str, list[_ParamState]] = {}
    for qualname, info in project.functions.items():
        param_states: list[_ParamState] = []
        for index, param in enumerate(info.parameters()):
            parsed = _array_annotation(param.annotation)
            if parsed is None:
                continue
            annotation, iterable = parsed
            state = _ParamState(
                name=param.arg,
                index=index,
                annotation=annotation,
                iterable=iterable,
                node=param,
            )
            state.direct_aliases.add(param.arg)
            param_states.append(state)
        if param_states:
            _collect_aliases(info, param_states)
            states[qualname] = param_states
    return states


def _array_annotation(node: ast.expr | None) -> tuple[str, bool] | None:
    """``(base alias, comes wrapped in an iterable)`` or None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``FloatArray | None`` — the array half decides.
        return _array_annotation(node.left) or _array_annotation(node.right)
    if isinstance(node, ast.Subscript):
        wrapper = dotted_name(node.value)
        if wrapper is not None and wrapper.rsplit(".", 1)[-1] in (
            _ITERABLE_WRAPPERS
        ):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            parsed = _array_annotation(inner)
            if parsed is not None:
                return parsed[0], True
        return None
    dotted = dotted_name(node)
    if dotted is None:
        return None
    base = dotted.rsplit(".", 1)[-1]
    if base in _ARRAY_ANNOTATIONS:
        return base, False
    return None


def _collect_aliases(
    info: FunctionInfo, states: list[_ParamState]
) -> None:
    by_alias: dict[str, list[_ParamState]] = {}

    def register(alias: str, state: _ParamState, direct: bool) -> None:
        # Idempotent: re-binding an alias to itself (``p = np.asarray(p)``)
        # must not grow the work list.
        if alias in state.all_aliases():
            return
        if direct:
            state.direct_aliases.add(alias)
        else:
            state.converted_aliases.add(alias)
        by_alias.setdefault(alias, []).append(state)

    for state in states:
        by_alias.setdefault(state.name, []).append(state)

    # Two sweeps so chains like ``a = p; b = np.asarray(a)`` resolve
    # regardless of how deeply they nest in the statement tree.
    for _ in range(2):
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                source, direct = _alias_source(node.value)
                if source is None:
                    continue
                for state in by_alias.get(source, []):
                    register(target.id, state, direct)
            elif isinstance(node, ast.For):
                source = dotted_name(node.iter)
                if source is None and isinstance(node.iter, ast.Call):
                    # ``for i, chunk in enumerate(chunks)``.
                    callee = dotted_name(node.iter.func)
                    if callee == "enumerate" and node.iter.args:
                        source = dotted_name(node.iter.args[0])
                if source is None:
                    continue
                for state in by_alias.get(source, []):
                    if not state.iterable:
                        continue
                    target = node.target
                    if isinstance(target, ast.Tuple) and target.elts:
                        target = target.elts[-1]
                    if isinstance(target, ast.Name):
                        register(target.id, state, direct=True)


def _alias_source(value: ast.expr) -> tuple[str | None, bool]:
    """Name the assignment value stands for, and whether verbatim."""
    if isinstance(value, ast.Name):
        return value.id, True
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func)
        if callee is not None:
            base = callee.rsplit(".", 1)[-1]
            if base in _CONVERSIONS and value.args:
                source = dotted_name(value.args[0])
                converted = any(k.arg == "dtype" for k in value.keywords) or (
                    len(value.args) > 1
                )
                return source, not converted
            if base in _CHECK_FUNCTIONS and len(value.args) >= 2:
                # ``points = check_array("points", points, …)`` chains.
                return dotted_name(value.args[1]), True
        if isinstance(value.func, ast.Attribute) and value.func.attr == "copy":
            return dotted_name(value.func.value), True
    return None, True


# -- the checking fixpoint ---------------------------------------------


def _run_fixpoint(
    project: Project, states: dict[str, list[_ParamState]]
) -> None:
    changed = True
    while changed:
        changed = False
        for qualname, param_states in states.items():
            info = project.functions[qualname]
            for state in param_states:
                if state.checked:
                    continue
                if _param_is_checked(project, info, state, states):
                    state.checked = True
                    changed = True


def _param_is_checked(
    project: Project,
    info: FunctionInfo,
    state: _ParamState,
    states: dict[str, list[_ParamState]],
) -> bool:
    aliases = state.all_aliases()
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None:
            continue
        base = callee.rsplit(".", 1)[-1]
        if base in _CHECK_FUNCTIONS:
            if len(node.args) >= 2 and (
                dotted_name(node.args[1]) in aliases
            ):
                return True
            continue
        target = _resolve_call_target(project, info, callee)
        if target is None:
            continue
        target_states = states.get(target.qualname, [])
        if not target_states:
            continue
        positions = {s.index: s for s in target_states}
        names = {s.name: s for s in target_states}
        for position, arg in enumerate(node.args):
            if dotted_name(arg) in aliases and position in positions:
                if positions[position].checked:
                    return True
        for keyword in node.keywords:
            if (
                keyword.arg in names
                and dotted_name(keyword.value) in aliases
                and names[keyword.arg].checked
            ):
                return True
    return False


def _resolve_call_target(
    project: Project, info: FunctionInfo, callee: str
) -> FunctionInfo | None:
    head, _, rest = callee.partition(".")
    if head == "self" and rest and "." not in rest:
        cls = project.class_of_function(info)
        if cls is not None:
            return project.resolve_method(cls, rest)
        return None
    return project.resolve_function(info.module, callee)


# -- A302: annotation/check disagreement -------------------------------


def _annotation_mismatches(
    project: Project, states: dict[str, list[_ParamState]]
) -> list[Finding]:
    findings: list[Finding] = []
    for qualname, param_states in states.items():
        info = project.functions[qualname]
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.rsplit(".", 1)[-1] != "check_array":
                continue
            if len(node.args) < 2:
                continue
            argument = dotted_name(node.args[1])
            pinned = _pinned_dtype(node)
            if argument is None or pinned is None:
                continue
            for state in param_states:
                expected = _EXPECTED_DTYPES.get(state.annotation)
                if expected is None:
                    continue
                if argument in state.direct_aliases and pinned != expected:
                    findings.append(
                        _finding(
                            info,
                            node,
                            "A302",
                            f"parameter {state.name!r} is annotated "
                            f"{state.annotation} ({expected}) but "
                            f"check_array pins dtype={pinned}",
                        )
                    )
    return findings


def _pinned_dtype(node: ast.Call) -> str | None:
    for keyword in node.keywords:
        if keyword.arg != "dtype":
            continue
        spec = dotted_name(keyword.value)
        if spec is None:
            return None
        base = spec.rsplit(".", 1)[-1]
        return {"bool_": "bool", "float": "float64", "bool": "bool"}.get(
            base, base
        )
    return None


def _finding(
    info: FunctionInfo, node: ast.AST, code: str, message: str
) -> Finding:
    return Finding(
        path=str(info.module.path),
        line=getattr(node, "lineno", info.node.lineno),
        col=getattr(node, "col_offset", 0),
        code=code,
        symbol=info.qualname,
        message=message,
    )
