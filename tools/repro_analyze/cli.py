"""Command line driver: ``python -m tools.repro_analyze [roots…]``.

Runs the six passes over one shared :class:`Project`/call graph,
subtracts the committed baseline, and exits

* ``0`` — tree clean (no findings beyond the baseline),
* ``1`` — new findings (or stale baseline entries with ``--strict``),
* ``2`` — usage / baseline-format error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    apply_baseline,
    parse_baseline,
    write_baseline,
)
from .callgraph import CallGraph
from .contracts_check import analyze_contracts
from .determinism import analyze_determinism
from .equivalence import analyze_equivalence
from .ffi import analyze_ffi
from .findings import CODES, Finding
from .project import Project
from .purity import analyze_purity
from .shapes import analyze_shapes


def collect_findings(roots: list[str]) -> list[Finding]:
    """All six passes over one shared project and call graph."""
    project = Project.load(roots)
    findings: list[Finding] = [
        Finding(
            path=str(path),
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            code="A000",
            symbol=path.stem,
            message=f"could not parse: {error.msg}",
        )
        for path, error in project.unparsable
    ]
    graph = CallGraph(project)
    findings.extend(analyze_shapes(project))
    findings.extend(analyze_purity(project, graph))
    findings.extend(analyze_contracts(project))
    findings.extend(analyze_ffi(project))
    findings.extend(analyze_equivalence(project))
    findings.extend(analyze_determinism(project, graph))
    return sorted(set(findings))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_analyze",
        description=(
            "Interprocedural shape/dtype, parallel-purity and "
            "contract-coverage analysis for the repro package."
        ),
    )
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "--list-codes", action="store_true", help="list finding codes and exit"
    )
    options = parser.parse_args(argv)

    if options.list_codes:
        for code, description in sorted(CODES.items()):
            print(f"{code}  {description}")
        return 0

    try:
        findings = collect_findings(options.roots or ["src"])
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        entries = (
            {} if options.no_baseline else parse_baseline(options.baseline)
        )
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if options.write_baseline:
        write_baseline(options.baseline, findings, entries)
        print(
            f"wrote {len(findings)} finding(s) to {options.baseline}; "
            f"replace any 'TODO: justify' comments before committing"
        )
        return 0

    fresh, stale = apply_baseline(findings, entries)

    if options.json:
        print(
            json.dumps(
                [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "code": f.code,
                        "symbol": f.symbol,
                        "message": f.message,
                        "fingerprint": f.fingerprint(),
                    }
                    for f in fresh
                ],
                indent=2,
            )
        )
    else:
        for finding in fresh:
            print(finding.render())

    failed = bool(fresh)
    if stale:
        for entry in stale:
            print(
                f"stale baseline entry (finding no longer raised): "
                f"{entry.fingerprint}",
                file=sys.stderr,
            )
        if options.strict:
            failed = True

    if fresh:
        accepted = len(findings) - len(fresh)
        print(
            f"\n{len(fresh)} new finding(s)"
            + (f", {accepted} baselined" if accepted else ""),
            file=sys.stderr,
        )
    return 1 if failed else 0
