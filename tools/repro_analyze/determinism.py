"""Pass A6: cross-process determinism of the parallel dispatch paths.

``REPRO_JOBS`` promises that a parallel run reproduces the serial run
bit for bit.  Pass A2 proves the *workers* pure; this pass covers the
other half of the contract — the parent-side code that fans work out
and folds results back in, plus the state a worker can observe that
the parent mutates.  Scope is deliberately tight: the checks bind in
*dispatch roots* (functions that contain a ``pool.submit``/``map`` or
``run_supervised`` call) and in the worker closure, not across the
whole tree, because that is where iteration order and reduction order
become result-affecting.

``A601``
    Unordered iteration in a dispatch root or worker: looping over a
    set expression, over ``as_completed(…)`` (completion order is
    scheduling noise), or over an unsorted directory listing
    (``os.listdir``/``scandir``, ``Path.iterdir``/``glob``).  The
    sanctioned pattern is the submission-order reduce
    (``for shard, future in zip(shards, futures)``).
``A602``
    Order-sensitive reduction of worker results in a dispatch root:
    ``sum(…)`` or ``+=`` accumulation over values derived from
    ``.result()`` / dispatch returns.  Float addition is not
    associative, so the fold order must be pinned; worker results are
    routed through the associative, key-grouped primitives
    (``merge_level_arrays`` / ``absorb_arrays``) or an explicit
    submission-order loop instead.  ``int(…)``/``len(…)``-wrapped
    accumulations are exempt — integer addition commutes exactly.
``A603``
    Mutable state reachable by worker closures: a mutable default
    argument on a worker function (one object shared across calls
    *within* a worker, fresh per process — the classic divergence
    between ``n_jobs=1`` and ``n_jobs=N``), or a worker reading a
    module-level mutable container that some function *outside* the
    closure mutates (fork-inherited state: the worker sees a snapshot
    whose content depends on dispatch timing and start method).
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph
from .findings import Finding
from .project import FunctionInfo, ModuleInfo, Project, dotted_name
from .purity import (
    _imports_executor,
    _is_pool_dispatch,
    _is_supervised_dispatch,
    _local_names,
    find_parallel_entries,
)

#: Callables returning sequences with no deterministic order.
_UNORDERED_CALLS = frozenset(
    {"as_completed", "listdir", "scandir", "iterdir", "glob", "rglob"}
)

#: Container-mutating method names (shared with the purity pass's view).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "popitem",
    }
)

#: Top-level wrappers that make an accumulation exactly associative.
_EXACT_WRAPPERS = frozenset({"int", "len", "bool"})


def analyze_determinism(project: Project, graph: CallGraph) -> list[Finding]:
    """Run pass A6 over dispatch roots and the worker closure."""
    entries = find_parallel_entries(project)
    worker_roots = sorted({entry.qualname for entry in entries})
    worker_closure = graph.reachable(worker_roots) if worker_roots else set()

    findings: list[Finding] = []
    for info in _dispatch_roots(project):
        findings.extend(_check_unordered_iteration(info))
        findings.extend(_check_reductions(info))
    for qualname in sorted(worker_closure):
        info = project.functions.get(qualname)
        if info is None:
            continue
        findings.extend(_check_unordered_iteration(info))
        findings.extend(_check_worker_state(project, info, worker_closure))
    return sorted(set(findings))


def _dispatch_roots(project: Project) -> list[FunctionInfo]:
    """Functions whose own body (nested defs excluded) dispatches work."""
    roots: list[FunctionInfo] = []
    for module in project.modules.values():
        pool_possible = _imports_executor(module)
        for info in module.functions.values():
            for node in _own_nodes(info.node):
                if (
                    isinstance(node, ast.Call)
                    and node.args
                    and (
                        _is_pool_dispatch(node, pool_possible)
                        or _is_supervised_dispatch(node)
                    )
                ):
                    roots.append(info)
                    break
    return roots


def _own_nodes(node: ast.AST) -> list[ast.AST]:
    """Every node of a function body, nested function subtrees excluded."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        out.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return out


# -- A601: unordered iteration -----------------------------------------


def _check_unordered_iteration(info: FunctionInfo) -> list[Finding]:
    findings: list[Finding] = []
    for node in _own_nodes(info.node):
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        for iter_node in iters:
            reason = _unordered_reason(iter_node)
            if reason is not None:
                findings.append(
                    _finding(
                        info,
                        iter_node,
                        "A601",
                        f"iterates over {reason} in a parallel dispatch "
                        f"path; iteration order is not deterministic — "
                        f"iterate a sorted() or submission-order sequence "
                        f"instead",
                    )
                )
    return findings


def _unordered_reason(node: ast.expr) -> str | None:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set expression"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        tail = dotted.rsplit(".", 1)[-1]
        if tail in {"set", "frozenset"}:
            return f"{tail}(...)"
        if tail in _UNORDERED_CALLS:
            return f"{dotted}(...)"
    return None


# -- A602: order-sensitive reductions of worker results ----------------


def _check_reductions(info: FunctionInfo) -> list[Finding]:
    derived = _worker_derived_names(info)
    findings: list[Finding] = []
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in {"sum", "fsum"}
                and node.args
                and _mentions_worker_result(node.args[0], derived)
            ):
                findings.append(
                    _finding(
                        info,
                        node,
                        "A602",
                        f"reduces worker results with "
                        f"{node.func.id}(...); float addition is not "
                        f"associative, so completion-order folds diverge "
                        f"between runs — reduce in submission order or "
                        f"through merge_level_arrays/absorb_arrays",
                    )
                )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Mult)
        ):
            if _is_exactly_wrapped(node.value):
                continue
            if _mentions_worker_result(node.value, derived):
                findings.append(
                    _finding(
                        info,
                        node,
                        "A602",
                        f"accumulates worker results with += ; float "
                        f"addition is not associative, so the fold order "
                        f"must be pinned — reduce in submission order or "
                        f"through merge_level_arrays/absorb_arrays",
                    )
                )
    return findings


def _worker_derived_names(info: FunctionInfo) -> set[str]:
    """Names bound (directly or via iteration) to worker results."""
    derived: set[str] = set()
    # Two passes so a name derived late still taints earlier loop heads
    # on the second sweep (assignment order in the AST approximates
    # program order; loops make it a fixpoint problem we cap at 2).
    for _ in range(2):
        for node in _own_nodes(info.node):
            if isinstance(node, ast.Assign):
                if _is_worker_result(node.value, derived):
                    for target in node.targets:
                        _bind_targets(target, derived)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_worker_result(node.iter, derived):
                    _bind_targets(node.target, derived)
    return derived


def _bind_targets(target: ast.expr, derived: set[str]) -> None:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            derived.add(node.id)


def _is_worker_result(node: ast.expr, derived: set[str]) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(
            child.func, ast.Attribute
        ):
            if child.func.attr in {"result", "submit", "map"}:
                return True
        if isinstance(child, ast.Call):
            callee = dotted_name(child.func)
            if (
                callee is not None
                and callee.rsplit(".", 1)[-1] == "run_supervised"
            ):
                return True
        if isinstance(child, ast.Name) and child.id in derived:
            return True
    return False


def _mentions_worker_result(node: ast.expr, derived: set[str]) -> bool:
    return _is_worker_result(node, derived)


def _is_exactly_wrapped(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _EXACT_WRAPPERS
    )


# -- A603: mutable state reachable by workers --------------------------


def _check_worker_state(
    project: Project, info: FunctionInfo, closure: set[str]
) -> list[Finding]:
    findings: list[Finding] = []
    for default in [
        *info.node.args.defaults,
        *info.node.args.kw_defaults,
    ]:
        if default is not None and _is_mutable_literal(default):
            findings.append(
                _finding(
                    info,
                    default,
                    "A603",
                    f"worker function carries a mutable default argument; "
                    f"the object is shared across calls within one worker "
                    f"process but fresh per process, so n_jobs changes "
                    f"results",
                )
            )

    module = info.module
    mutable_globals = _module_mutables(module)
    if not mutable_globals:
        return findings
    local = _local_names(info)
    read: set[str] = set()
    for node in _own_nodes(info.node):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in mutable_globals
            and node.id not in local
        ):
            read.add(node.id)
    for name in sorted(read):
        outside = sorted(
            qual
            for qual in _mutators_of(project, module, name)
            if qual not in closure
        )
        if outside:
            findings.append(
                _finding(
                    info,
                    info.node,
                    "A603",
                    f"reads module-level mutable {name!r}, which "
                    f"{', '.join(outside)} mutates outside the worker "
                    f"closure; a forked worker sees a timing-dependent "
                    f"snapshot of it",
                )
            )
    return findings


def _module_mutables(module: ModuleInfo) -> set[str]:
    names: set[str] = set()
    for node in module.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and value is not None
            and _is_mutable_literal(value)
        ):
            names.add(target.id)
    return names


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        return dotted.rsplit(".", 1)[-1] in {
            "list",
            "dict",
            "set",
            "bytearray",
            "defaultdict",
            "OrderedDict",
            "Counter",
            "deque",
        }
    return False


def _mutators_of(
    project: Project, module: ModuleInfo, name: str
) -> set[str]:
    """Functions in the module that store into or mutate global ``name``."""
    mutators: set[str] = set()
    for info in module.functions.values():
        local = _local_names(info)
        declared_global = any(
            isinstance(node, ast.Global) and name in node.names
            for node in _own_nodes(info.node)
        )
        for node in _own_nodes(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if _mutates_name(target, name, local, declared_global):
                        mutators.add(info.qualname)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and _root_of(node.func.value) == name
                and name not in local
            ):
                mutators.add(info.qualname)
    return mutators


def _mutates_name(
    target: ast.expr, name: str, local: set[str], declared_global: bool
) -> bool:
    if isinstance(target, ast.Name):
        return declared_global and target.id == name
    root = _root_of(target)
    return root == name and name not in local


def _root_of(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _finding(
    info: FunctionInfo, node: ast.AST, code: str, message: str
) -> Finding:
    return Finding(
        path=str(info.module.path),
        line=getattr(node, "lineno", info.node.lineno),
        col=getattr(node, "col_offset", 0),
        code=code,
        symbol=info.qualname,
        message=message,
    )
