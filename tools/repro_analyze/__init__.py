"""Interprocedural static analysis for the repro package.

Six passes over one shared project model and call graph:

* :mod:`.shapes` (``A1xx``) — shape/dtype dataflow through
  ``repro.core``: narrowing casts, platform-dependent integer widths,
  rank-incompatible operations, silent upcasts.
* :mod:`.purity` (``A2xx``) — purity proofs for every function
  reachable from a ``ProcessPoolExecutor`` dispatch (the ``REPRO_JOBS``
  fan-out): no module-state writes, no ambient randomness or clocks.
* :mod:`.contracts_check` (``A3xx``) — every public entry point of
  ``repro.core``/``repro.baselines`` must route its array parameters
  through ``repro.core.contracts.check_*``.
* :mod:`.ffi` (``A4xx``) — the FFI contract of the cext backend: C
  prototypes vs ctypes bindings, pointer/length pairing, call-site
  dtype/contiguity proofs.
* :mod:`.equivalence` (``A5xx``) — backend equivalence: the numba
  backend dispatches to the shared loops bodies, the C transliteration
  matches their loop skeletons, ``#define`` constants equal the Python
  definitions.
* :mod:`.determinism` (``A6xx``) — cross-process determinism of the
  dispatch roots and worker closures: no unordered iteration,
  order-sensitive reductions, or parent-mutated state visible to
  workers.

Run with ``python -m tools.repro_analyze [roots…]``; accepted findings
live in ``baseline.txt`` next to this package, one commented
fingerprint per line.
"""

from .baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    apply_baseline,
    parse_baseline,
    write_baseline,
)
from .callgraph import CallGraph
from .cli import collect_findings, main
from .contracts_check import analyze_contracts
from .determinism import analyze_determinism
from .equivalence import analyze_equivalence
from .ffi import analyze_ffi
from .findings import CODES, Finding
from .project import Project
from .purity import analyze_purity, find_parallel_entries
from .shapes import analyze_shapes

__all__ = [
    "CODES",
    "CallGraph",
    "DEFAULT_BASELINE",
    "BaselineError",
    "Finding",
    "Project",
    "analyze_contracts",
    "analyze_determinism",
    "analyze_equivalence",
    "analyze_ffi",
    "analyze_purity",
    "analyze_shapes",
    "apply_baseline",
    "collect_findings",
    "find_parallel_entries",
    "main",
    "parse_baseline",
    "write_baseline",
]
