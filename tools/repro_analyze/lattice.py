"""Abstract values for the shape/dtype dataflow pass.

The lattice tracks arrays as ``(ndim, dtype)`` pairs where either
component may be unknown (``None``).  Joins go to unknown on
disagreement — the pass only reports what it can prove, so unknown
means silence, never a finding.

dtype names are numpy's canonical names (``float64``, ``uint32`` …),
obtained through :func:`numpy.dtype` so the analyser agrees with the
library about aliases and byte orders (``">u4"`` → ``uint32``).
Two extra bits refine the dtype component:

``integral``
    A float array whose values are provably whole numbers
    (results of ``np.floor``/``ceil``/``rint``/``trunc``).  Casting an
    integral float to an integer dtype is exact and is not a finding.
``weak``
    The value came from a Python scalar literal; numpy applies
    value-based weak promotion to these, so mixing one into an
    expression is not a silent-upcast finding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

#: Dtype constructors whose width depends on the platform's C ``long``/
#: pointer size.  ``np.int_`` is 32-bit on Windows and 64-bit on Linux;
#: code that mixes it with explicit widths behaves differently per OS.
PLATFORM_DEPENDENT_INTS = frozenset(
    {
        "int",
        "np.int_",
        "np.uint",
        "np.intp",
        "np.uintp",
        "np.longlong",
        "np.ulonglong",
        "numpy.int_",
        "numpy.uint",
        "numpy.intp",
        "numpy.uintp",
        "numpy.longlong",
        "numpy.ulonglong",
    }
)

#: String dtype spellings with platform-dependent width.
PLATFORM_DEPENDENT_STRINGS = frozenset({"int", "uint", "intp", "uintp", "long"})


def canonical_dtype(spec: object) -> str | None:
    """Canonical numpy dtype name for a literal spec, or None."""
    try:
        return np.dtype(spec).name  # type: ignore[call-overload]
    except TypeError:
        return None


def is_safe_cast(source: str, target: str) -> bool:
    """True when every ``source`` value is representable in ``target``."""
    return bool(np.can_cast(np.dtype(source), np.dtype(target), casting="safe"))


def promoted_dtype(left: str, right: str) -> str | None:
    """Result dtype of a binary op between two known dtypes."""
    try:
        return np.result_type(np.dtype(left), np.dtype(right)).name
    except TypeError:
        return None


@dataclass(frozen=True)
class ArrayValue:
    """Abstract array: rank and dtype, either possibly unknown."""

    ndim: int | None = None
    dtype: str | None = None
    integral: bool = False
    weak: bool = False

    @property
    def known_dtype(self) -> bool:
        return self.dtype is not None

    def with_dtype(self, dtype: str | None, integral: bool = False) -> "ArrayValue":
        return replace(self, dtype=dtype, integral=integral, weak=False)

    def with_ndim(self, ndim: int | None) -> "ArrayValue":
        return replace(self, ndim=ndim)

    def join(self, other: "ArrayValue") -> "ArrayValue":
        """Least upper bound: agreement survives, conflict → unknown."""
        return ArrayValue(
            ndim=self.ndim if self.ndim == other.ndim else None,
            dtype=self.dtype if self.dtype == other.dtype else None,
            integral=self.integral and other.integral,
            weak=self.weak and other.weak,
        )


#: The completely-unknown array value.
TOP = ArrayValue()


def scalar(dtype: str, weak: bool = False) -> ArrayValue:
    """0-d abstract value for a scalar of a known dtype."""
    return ArrayValue(ndim=0, dtype=dtype, weak=weak)


def join_all(values: list[ArrayValue]) -> ArrayValue:
    result: ArrayValue | None = None
    for value in values:
        result = value if result is None else result.join(value)
    return result if result is not None else TOP


#: Annotation name → abstract value, for the repro.types aliases used
#: across repro.core.  Seeding from annotations is what lets the pass
#: reason about public APIs without whole-program inference.
ANNOTATION_VALUES: dict[str, ArrayValue] = {
    "FloatArray": ArrayValue(dtype="float64"),
    "IntArray": ArrayValue(dtype="int64"),
    "BoolArray": ArrayValue(dtype="bool"),
    "AnyArray": ArrayValue(),
    "ndarray": ArrayValue(),
    "int": scalar("int64"),
    "float": scalar("float64"),
    "bool": scalar("bool"),
}


def value_from_annotation(annotation: str | None) -> ArrayValue | None:
    """Abstract value for an annotation name, or None if not an array."""
    if annotation is None:
        return None
    base = annotation.rsplit(".", 1)[-1]
    return ANNOTATION_VALUES.get(base)
