"""Repository development tooling (not part of the installed package)."""
