"""Tests for dataset CSV/NPZ I/O."""

import numpy as np
import pytest

from repro.data.io import (
    load_dataset_npz,
    load_points_csv,
    save_dataset_npz,
)


class TestCsv:
    def _write(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text)
        return path

    def test_load_with_header(self, tmp_path):
        path = self._write(tmp_path, "a,b\n1.0,2.0\n3.0,4.0\n")
        points, labels = load_points_csv(path, normalize=False)
        assert points.tolist() == [[1.0, 2.0], [3.0, 4.0]]
        assert labels is None

    def test_label_column_extraction(self, tmp_path):
        path = self._write(tmp_path, "a,b,y\n1.0,2.0,0\n3.0,4.0,1\n")
        points, labels = load_points_csv(path, label_column=-1, normalize=False)
        assert points.shape == (2, 2)
        assert labels.tolist() == [0, 1]

    def test_normalisation_into_unit_cube(self, tmp_path):
        path = self._write(tmp_path, "a,b\n-10,0\n10,100\n0,50\n")
        points, _ = load_points_csv(path)
        assert points.min() == 0.0
        assert points.max() < 1.0

    def test_empty_file_raises(self, tmp_path):
        path = self._write(tmp_path, "a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_points_csv(path)


class TestMalformedCsv:
    """Malformed input must fail with the file and line, not a raw
    NumPy conversion error."""

    def _write(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text)
        return path

    def test_non_numeric_cell_names_file_line_column(self, tmp_path):
        path = self._write(tmp_path, "a,b\n1.0,2.0\n3.0,oops\n")
        with pytest.raises(ValueError, match=rf"{path.name}:3: .*column 1.*'oops'"):
            load_points_csv(path, normalize=False)

    def test_ragged_row_names_file_and_line(self, tmp_path):
        path = self._write(tmp_path, "a,b\n1.0,2.0\n3.0\n5.0,6.0\n")
        with pytest.raises(ValueError, match=rf"{path.name}:3: ragged row"):
            load_points_csv(path, normalize=False)

    @pytest.mark.parametrize("cell", ["nan", "inf", "-inf"])
    def test_non_finite_cell_rejected(self, tmp_path, cell):
        path = self._write(tmp_path, f"a,b\n1.0,2.0\n{cell},4.0\n")
        with pytest.raises(ValueError, match=rf"{path.name}:3: non-finite"):
            load_points_csv(path, normalize=False)

    def test_non_integer_label_names_file_and_line(self, tmp_path):
        path = self._write(tmp_path, "a,y\n1.0,0\n2.0,maybe\n")
        with pytest.raises(
            ValueError, match=rf"{path.name}:3: .*integer label.*'maybe'"
        ):
            load_points_csv(path, label_column=-1, normalize=False)

    def test_valid_file_still_loads_after_hardening(self, tmp_path):
        path = self._write(tmp_path, "a,b\n1.5,2.5\n3.5,4.5\n")
        points, labels = load_points_csv(path, normalize=False)
        assert points.tolist() == [[1.5, 2.5], [3.5, 4.5]]
        assert labels is None


class TestNpzRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path, easy_dataset):
        path = tmp_path / "dataset.npz"
        save_dataset_npz(easy_dataset, path)
        loaded = load_dataset_npz(path)
        assert np.array_equal(loaded.points, easy_dataset.points)
        assert np.array_equal(loaded.labels, easy_dataset.labels)
        assert loaded.name == easy_dataset.name
        assert len(loaded.clusters) == len(easy_dataset.clusters)
        for a, b in zip(loaded.clusters, easy_dataset.clusters):
            assert a.indices == b.indices
            assert a.relevant_axes == b.relevant_axes
        loaded.validate()
