"""Tests for the named paper dataset suites (Section IV-B groups)."""

import pytest

from repro.data.suites import (
    base_14d,
    cluster_sweep,
    dimensionality_sweep,
    first_group,
    first_group_rotated,
    noise_sweep,
    point_sweep,
    suite_by_name,
)

SCALE = 0.02  # keep suite construction fast in unit tests


class TestFirstGroup:
    def test_names_and_dimensionalities(self):
        datasets = list(first_group(scale=SCALE))
        assert [d.name for d in datasets] == [
            "6d", "8d", "10d", "12d", "14d", "16d", "18d",
        ]
        assert [d.dimensionality for d in datasets] == [6, 8, 10, 12, 14, 16, 18]

    def test_points_and_clusters_grow(self):
        datasets = list(first_group(scale=SCALE))
        points = [d.n_points for d in datasets]
        clusters = [d.n_clusters for d in datasets]
        assert points == sorted(points)
        assert clusters == sorted(clusters)
        assert clusters[0] == 2
        assert clusters[-1] == 17

    def test_noise_is_fifteen_percent(self):
        for dataset in first_group(scale=SCALE):
            assert dataset.noise_fraction == pytest.approx(0.15, abs=0.02)


class TestBase14d:
    def test_paper_anchor_values_at_full_scale(self):
        dataset = base_14d(scale=1.0)
        assert dataset.dimensionality == 14
        assert dataset.n_points == 90_000
        assert dataset.n_clusters == 17
        assert dataset.noise_fraction == pytest.approx(0.15, abs=0.005)


class TestSweeps:
    def test_point_sweep_names(self):
        names = [d.name for d in point_sweep(scale=SCALE)]
        assert names == ["50k", "100k", "150k", "200k", "250k"]

    def test_point_sweep_scales_points(self):
        points = [d.n_points for d in point_sweep(scale=SCALE)]
        assert points == sorted(points)
        assert points[-1] == pytest.approx(250_000 * SCALE, rel=0.05)

    def test_cluster_sweep_varies_only_clusters(self):
        datasets = list(cluster_sweep(scale=SCALE))
        assert [d.n_clusters for d in datasets] == [5, 10, 15, 20, 25]
        assert len({d.dimensionality for d in datasets}) == 1

    def test_dimensionality_sweep(self):
        datasets = list(dimensionality_sweep(scale=SCALE))
        assert [d.dimensionality for d in datasets] == [5, 10, 15, 20, 25, 30]
        assert [d.name for d in datasets] == [
            "5d_s", "10d_s", "15d_s", "20d_s", "25d_s", "30d_s",
        ]

    def test_dimensionality_sweep_keeps_clusters_detectable(self):
        """Beyond 18 axes the cluster dims must grow with d so no
        cluster has more than ~5 irrelevant axes (DESIGN.md 1.3)."""
        for dataset in dimensionality_sweep(scale=SCALE):
            for cluster in dataset.clusters:
                n_irrelevant = dataset.dimensionality - cluster.dimensionality
                assert n_irrelevant <= 5

    def test_noise_sweep(self):
        datasets = list(noise_sweep(scale=SCALE))
        fractions = [d.noise_fraction for d in datasets]
        assert fractions == sorted(fractions)
        assert fractions[0] == pytest.approx(0.05, abs=0.02)
        assert fractions[-1] == pytest.approx(0.25, abs=0.02)


class TestRotatedGroup:
    def test_names_follow_paper(self):
        names = [d.name for d in first_group_rotated(scale=SCALE)]
        assert names[0] == "6d_r"
        assert names[-1] == "18d_r"

    def test_marked_rotated(self):
        dataset = next(iter(first_group_rotated(scale=SCALE)))
        assert dataset.metadata["rotated"] is True


class TestSuiteByName:
    def test_known_names(self):
        for name in ("first_group", "rotated", "points", "clusters",
                     "dimensionality", "noise"):
            datasets = list(suite_by_name(name, scale=SCALE))
            assert datasets

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="first_group"):
            suite_by_name("nope")

    def test_scaling_preserves_structure(self):
        small = list(suite_by_name("clusters", scale=SCALE))
        smaller = list(suite_by_name("clusters", scale=SCALE / 2))
        assert [d.n_clusters for d in small] == [d.n_clusters for d in smaller]
        assert all(a.n_points >= b.n_points for a, b in zip(small, smaller))
