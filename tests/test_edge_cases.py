"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.core.counting_tree import CountingTree
from repro.core.mrcc import MrCC
from repro.data.normalize import minmax_normalize
from repro.types import NOISE_LABEL


class TestDegenerateInputs:
    def test_single_point(self):
        result = MrCC(normalize=False).fit(np.array([[0.5, 0.5]]))
        assert result.n_clusters == 0
        assert result.labels.tolist() == [NOISE_LABEL]

    def test_all_points_identical(self):
        points = np.full((500, 4), 0.3)
        result = MrCC(normalize=False).fit(points)
        # A zero-volume point mass is a degenerate "cluster"; whatever
        # the verdict, the result must be structurally sound.
        assert result.labels.shape == (500,)
        assert result.n_clusters <= 1

    def test_one_dimensional_data(self):
        rng = np.random.default_rng(0)
        points = np.concatenate(
            [rng.normal(0.3, 0.01, 400), rng.uniform(0, 1, 100)]
        ).reshape(-1, 1)
        points = np.clip(points, 0, np.nextafter(1.0, 0))
        result = MrCC(normalize=False).fit(points)
        assert result.n_clusters >= 1
        assert result.clusters[0].relevant_axes == frozenset({0})

    def test_two_points(self):
        result = MrCC(normalize=False).fit(np.array([[0.1, 0.1], [0.9, 0.9]]))
        assert result.n_clusters == 0

    def test_points_exactly_on_cell_boundaries(self):
        grid = np.linspace(0.0, 0.9375, 16)
        points = np.array([[x, y] for x in grid for y in grid])
        result = MrCC(normalize=False).fit(points)
        assert result.labels.shape == (256,)

    def test_value_just_below_one(self):
        points = np.full((100, 3), np.nextafter(1.0, 0.0))
        tree = CountingTree(points)
        for h in tree.levels:
            assert np.all(tree.level(h).coords == (1 << h) - 1)


class TestExtremeParameters:
    def test_very_deep_tree(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(300, 3))
        tree = CountingTree(points, n_resolutions=16)
        # Deep levels converge to one point per cell; counts stay exact.
        deepest = tree.level(15)
        assert int(deepest.n.sum()) == 300
        assert deepest.n.max() >= 1

    def test_extremely_strict_alpha_finds_nothing_small(self):
        rng = np.random.default_rng(2)
        cluster = np.clip(rng.normal(0.5, 0.01, size=(40, 3)), 0, 0.999)
        result = MrCC(alpha=1e-300, normalize=False).fit(cluster)
        assert result.n_clusters == 0

    def test_lenient_alpha_is_still_valid(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(500, 3))
        result = MrCC(alpha=0.2, normalize=False).fit(points)
        # A lax test may hallucinate clusters on noise, but the output
        # contract must hold.
        for k, cluster in enumerate(result.clusters):
            assert cluster.indices == frozenset(
                np.flatnonzero(result.labels == k).tolist()
            )

    def test_max_beta_clusters_zero_like_cap(self, medium_dataset):
        result = MrCC(normalize=False, max_beta_clusters=1).fit(
            medium_dataset.points
        )
        assert result.extras["n_beta_clusters"] == 1
        assert result.n_clusters == 1


class TestNormalizationEdges:
    def test_negative_and_large_values(self):
        rng = np.random.default_rng(4)
        raw = rng.normal(loc=-1000.0, scale=500.0, size=(400, 4))
        out = minmax_normalize(raw)
        assert out.min() == 0.0
        assert out.max() < 1.0

    def test_single_row(self):
        out = minmax_normalize(np.array([[5.0, -3.0]]))
        assert np.all(out == 0.0)

    def test_nan_free_given_finite_input(self):
        rng = np.random.default_rng(5)
        raw = rng.uniform(-1e9, 1e9, size=(100, 3))
        assert np.all(np.isfinite(minmax_normalize(raw)))


class TestBaselineDegenerateInputs:
    @pytest.mark.parametrize("n_points", [3, 10])
    def test_tiny_datasets_do_not_crash(self, n_points):
        from repro.baselines import CFPC, EPCH, LAC, P3C

        rng = np.random.default_rng(6)
        points = rng.uniform(0, 1, size=(n_points, 3))
        for method in (
            LAC(n_clusters=2),
            EPCH(max_no_cluster=2),
            P3C(),
            CFPC(n_clusters=2),
        ):
            result = method.fit(points)
            assert result.labels.shape == (n_points,)

    def test_constant_data_baselines(self):
        from repro.baselines import LAC

        points = np.full((50, 3), 0.4)
        result = LAC(n_clusters=2).fit(points)
        assert result.labels.shape == (50,)
