"""Unit tests for ``repro.obs``: tracer, hooks, delta merge, schema.

The golden-trace and property suites exercise the instrumented
algorithm end to end; this file pins the tracer mechanics themselves —
span nesting, the disabled no-op path, ``mark``/``since``/``absorb``
delta round trips, export validation, and the schema validator's
failure modes.
"""

import json

import pytest

from repro import obs
from repro.env import trace_from_env
from repro.obs import TraceSchemaError, validate_trace


def make_snapshot(**overrides):
    """A minimal schema-valid payload, with per-test overrides."""
    payload = {
        "schema": obs.TRACE_SCHEMA_VERSION,
        "generated_by": "repro.obs",
        "meta": {},
        "counters": {},
        "spans": [],
    }
    payload.update(overrides)
    return payload


class TestTracer:
    def test_incr_accumulates_and_counts_events(self):
        tracer = obs.Tracer()
        tracer.incr("a")
        tracer.incr("a", 4)
        tracer.incr("b", 2)
        assert tracer.counters == {"a": 5, "b": 2}
        assert tracer.n_events == 3

    def test_span_nesting_records_parent_and_depth(self):
        tracer = obs.Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(inner)
        sibling = tracer.begin("sibling")
        tracer.end(sibling)
        tracer.end(outer)
        records = tracer.spans
        assert [r.name for r in records] == ["outer", "inner", "sibling"]
        assert [r.parent for r in records] == [-1, 0, 0]
        assert [r.depth for r in records] == [0, 1, 1]
        assert all(r.closed for r in records)
        assert all(r.seconds >= 0.0 for r in records)

    def test_snapshot_is_schema_valid_and_sorted(self):
        tracer = obs.Tracer()
        tracer.incr("z.last")
        tracer.incr("a.first")
        with obs.capture() as live:
            with obs.span("root"):
                obs.incr("work")
            payload = live.snapshot(meta={"k": "v"})
        validate_trace(payload)
        assert payload["meta"] == {"k": "v"}
        assert list(tracer.snapshot()["counters"]) == ["a.first", "z.last"]

    def test_open_span_reports_elapsed_in_snapshot(self):
        tracer = obs.Tracer()
        tracer.begin("open")
        payload = tracer.snapshot()
        validate_trace(payload)
        assert payload["spans"][0]["seconds"] >= 0.0

    def test_end_closes_orphaned_children(self):
        """A parent ending before a nested child (exception unwinds,
        generators never resumed) closes the child too, with its
        duration bounded at the parent's end time — not left open to
        accrue until snapshot."""
        tracer = obs.Tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")  # never ended explicitly
        tracer.end(outer)
        parent, child = tracer.spans
        assert child.closed
        assert child.start_s + child.seconds == pytest.approx(
            parent.start_s + parent.seconds
        )
        assert tracer._stack == []


class TestModuleHooks:
    def test_disabled_hooks_are_no_ops(self):
        assert not obs.enabled()
        assert obs.active() is None
        obs.incr("ignored")
        with obs.span("ignored"):
            pass
        assert obs.counters_snapshot() == {}
        assert obs.mark() is None
        assert obs.since(None) is None
        obs.absorb(None)
        assert obs.snapshot() is None

    def test_disabled_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_set_enabled_installs_and_clears(self):
        assert obs.set_enabled(True) is False
        try:
            assert obs.enabled()
            obs.incr("x")
            assert obs.counters_snapshot() == {"x": 1}
            # Re-enabling replaces the buffer with a fresh one.
            assert obs.set_enabled(True) is True
            assert obs.counters_snapshot() == {}
        finally:
            assert obs.set_enabled(False) is True
        assert not obs.enabled()

    def test_capture_restores_previous_state(self):
        with obs.capture() as outer:
            obs.incr("outer.only")
            with obs.capture() as inner:
                obs.incr("inner.only")
                assert obs.active() is inner
            assert obs.active() is outer
            assert outer.counters == {"outer.only": 1}
            assert inner.counters == {"inner.only": 1}
        assert not obs.enabled()

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.capture():
                raise RuntimeError("boom")
        assert not obs.enabled()


class TestDeltaMerge:
    def test_since_reports_only_new_work(self):
        with obs.capture() as tracer:
            obs.incr("before", 3)
            base = obs.mark()
            obs.incr("before", 2)
            obs.incr("after")
            with obs.span("work"):
                pass
            delta = obs.since(base)
        assert delta["counters"] == {"before": 2, "after": 1}
        assert [s["name"] for s in delta["spans"]] == ["work"]
        assert delta["spans"][0]["parent"] == -1
        assert delta["spans"][0]["depth"] == 0
        # Three incr calls plus one span begin; ends are not events.
        assert tracer.n_events == 4

    def test_since_rebases_nested_spans(self):
        tracer = obs.Tracer()
        outer = tracer.begin("outer")
        base = tracer.mark()
        mid = tracer.begin("mid")
        leaf = tracer.begin("leaf")
        tracer.end(leaf)
        tracer.end(mid)
        tracer.end(outer)
        delta = tracer.since(base)
        # "outer" is outside the slice: "mid" becomes a root.
        assert [s["name"] for s in delta["spans"]] == ["mid", "leaf"]
        assert [s["parent"] for s in delta["spans"]] == [-1, 0]
        assert [s["depth"] for s in delta["spans"]] == [0, 1]

    def test_absorb_reattaches_under_open_span(self):
        worker = obs.Tracer()
        base = worker.mark()
        job = worker.begin("job")
        worker.incr("work.units", 7)
        worker.end(job)
        delta = worker.since(base)
        # Deltas cross a process boundary in real runs.
        delta = json.loads(json.dumps(delta))

        parent = obs.Tracer()
        suite = parent.begin("suite")
        parent.absorb(delta)
        parent.end(suite)
        assert parent.counters == {"work.units": 7}
        merged = parent.spans[1]
        assert merged.name == "job"
        assert merged.parent == 0
        assert merged.depth == 1
        validate_trace(parent.snapshot())

    def test_since_and_absorb_with_no_spans(self):
        """A worker task that opens no spans (the uninstrumented
        baseline methods) still yields a valid, absorbable delta.
        Regression: the empty span slice used to crash the depth
        re-basing, aborting any traced parallel suite with baselines."""
        worker = obs.Tracer()
        base = worker.mark()
        worker.incr("only.counters", 3)
        delta = worker.since(base)
        assert delta == {"counters": {"only.counters": 3}, "spans": []}
        parent = obs.Tracer()
        parent.absorb(delta)
        assert parent.counters == {"only.counters": 3}
        assert parent.spans == []

    def test_since_with_nothing_new(self):
        tracer = obs.Tracer()
        base = tracer.mark()
        assert tracer.since(base) == {"counters": {}, "spans": []}

    def test_absorb_into_empty_tracer_keeps_roots(self):
        worker = obs.Tracer()
        span = worker.begin("solo")
        worker.end(span)
        parent = obs.Tracer()
        parent.absorb(worker.since(obs.TraceMark(counters={}, n_spans=0)))
        assert parent.spans[0].parent == -1
        assert parent.spans[0].depth == 0


class TestExport:
    def test_export_trace_requires_enabled(self, tmp_path):
        assert not obs.enabled()
        with pytest.raises(RuntimeError, match="REPRO_TRACE"):
            obs.export_trace(tmp_path / "trace.json")

    def test_export_trace_round_trips(self, tmp_path):
        out = tmp_path / "trace.json"
        with obs.capture():
            with obs.span("root"):
                obs.incr("n", 2)
            payload = obs.export_trace(out, meta={"case": "unit"})
        loaded = json.loads(out.read_text())
        validate_trace(loaded)
        assert loaded == payload
        assert loaded["counters"] == {"n": 2}
        assert loaded["meta"] == {"case": "unit"}


class TestSchemaValidator:
    def test_accepts_minimal_payload(self):
        validate_trace(make_snapshot())

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"schema": 99}, "schema must be"),
            ({"generated_by": "elsewhere"}, "generated_by"),
            ({"meta": {"k": []}}, "JSON scalar"),
            ({"counters": {"c": -1}}, "non-negative"),
            ({"counters": {"c": 1.5}}, "integer"),
            ({"counters": {"c": True}}, "integer"),
            ({"spans": [{}]}, "keys mismatch"),
        ],
    )
    def test_rejects_bad_fields(self, mutation, match):
        with pytest.raises(TraceSchemaError, match=match):
            validate_trace(make_snapshot(**mutation))

    def test_rejects_missing_and_extra_keys(self):
        payload = make_snapshot()
        del payload["spans"]
        payload["unexpected"] = 1
        with pytest.raises(TraceSchemaError, match="keys mismatch"):
            validate_trace(payload)

    def test_rejects_forward_parent_and_wrong_depth(self):
        span = {
            "name": "s", "parent": 0, "depth": 0,
            "start_s": 0.0, "seconds": 0.0, "peak_rss_kb": 0.0,
        }
        with pytest.raises(TraceSchemaError, match="earlier span"):
            validate_trace(make_snapshot(spans=[span]))
        root = dict(span, parent=-1)
        child = dict(span, parent=0, depth=2)
        with pytest.raises(TraceSchemaError, match="depth must be 1"):
            validate_trace(make_snapshot(spans=[root, child]))

    def test_rejects_non_object(self):
        with pytest.raises(TraceSchemaError, match="JSON object"):
            validate_trace([])


class TestEnvAndClocks:
    def test_trace_from_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_from_env() is None
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert trace_from_env() is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_from_env() == ""
        monkeypatch.setenv("REPRO_TRACE", "/tmp/out.json")
        assert trace_from_env() == "/tmp/out.json"

    def test_perf_clock_is_monotonic(self):
        first = obs.perf_clock()
        second = obs.perf_clock()
        assert second >= first

    def test_peak_rss_is_non_negative(self):
        assert obs.peak_rss_kb() >= 0.0
