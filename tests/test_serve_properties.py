"""Property-based tests (hypothesis) for the serving layer.

Four serving invariants must hold for *any* fitted model and any query
workload, so they are checked over generated inputs rather than pinned
examples:

* **Round-trip bit-identity** — ``save → load → label`` reproduces the
  in-memory fit's labels exactly, on every compute backend available
  in this environment and in both loading modes.
* **mmap/in-memory equivalence** — the two loading modes expose
  byte-equal arrays, so no behaviour can depend on which one a worker
  picked.
* **Cache algebra** — for any access sequence, ``hits + misses`` is
  the number of lookups, residency never exceeds capacity, and
  ``evictions == misses - len(cache)``.
* **Micro-batch invariance** — however a workload is split into
  requests and whatever the point budget / delay window, the
  concatenated labels equal the single-call labels.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.mrcc import MrCC
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.serve import BatchLabeller, ModelCache, load_model, save_model

AVAILABLE = kernels.available_backends()

model_spec_strategy = st.builds(
    SyntheticDatasetSpec,
    dimensionality=st.integers(3, 7),
    n_points=st.integers(300, 900),
    n_clusters=st.integers(1, 3),
    noise_fraction=st.floats(0.0, 0.3),
    seed=st.integers(0, 200),
)


def _fit_and_save(spec, root, normalize=True, name="prop.model"):
    dataset = generate_dataset(spec)
    points = dataset.points * 3.0 - 1.0 if normalize else dataset.points
    estimator = MrCC(normalize=normalize)
    estimator.fit(points)
    path = Path(root) / name
    save_model(estimator, path)
    return estimator, points, path


class TestRoundTripProperties:
    @given(spec=model_spec_strategy, normalize=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_round_trip_is_bit_identical(self, spec, normalize):
        with tempfile.TemporaryDirectory() as root:
            estimator, points, path = _fit_and_save(spec, root, normalize)
            for mmap in (True, False):
                model = load_model(path, mmap=mmap)
                labels = model.label(points)
                assert np.array_equal(labels, estimator.labels_)

    @pytest.mark.parametrize("backend", AVAILABLE)
    @given(spec=model_spec_strategy)
    @settings(max_examples=6, deadline=None)
    def test_round_trip_holds_per_backend(self, backend, spec):
        with tempfile.TemporaryDirectory() as root, (
            pytest.MonkeyPatch.context()
        ) as patcher:
            patcher.setenv("REPRO_BACKEND", backend)
            estimator, points, path = _fit_and_save(spec, root)
            model = load_model(path)
            assert np.array_equal(model.label(points), estimator.labels_)

    @given(spec=model_spec_strategy)
    @settings(max_examples=8, deadline=None)
    def test_mmap_and_memory_modes_expose_equal_arrays(self, spec):
        with tempfile.TemporaryDirectory() as root:
            self._check_modes_agree(_fit_and_save(spec, root)[2])

    @staticmethod
    def _check_modes_agree(path):
        mapped = load_model(path, mmap=True)
        copied = load_model(path, mmap=False)
        assert mapped.meta == copied.meta
        assert mapped.groups == copied.groups
        for h in mapped.levels:
            a, b = mapped.levels[h], copied.levels[h]
            assert np.array_equal(a.coords, b.coords)
            assert np.array_equal(a.n, b.n)
            assert np.array_equal(a.half_counts, b.half_counts)
        for left, right in zip(mapped.betas, copied.betas):
            assert np.array_equal(left.lower, right.lower)
            assert np.array_equal(left.upper, right.upper)
            assert np.array_equal(left.relevant, right.relevant)
            assert np.array_equal(left.relevances, right.relevances)
            assert (left.level, left.center_row) == (
                right.level,
                right.center_row,
            )


class TestCacheAlgebra:
    @given(
        capacity=st.integers(1, 4),
        accesses=st.lists(st.integers(0, 5), min_size=1, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_counter_algebra(self, capacity, accesses):
        with tempfile.TemporaryDirectory() as root:
            self._check_algebra(capacity, accesses, root)

    @staticmethod
    def _check_algebra(capacity, accesses, root):
        spec = SyntheticDatasetSpec(
            dimensionality=3, n_points=300, n_clusters=1, seed=9
        )
        estimator, _, _ = _fit_and_save(spec, root, name="m0.model")
        for k in range(1, 6):
            save_model(estimator, Path(root) / f"m{k}.model")
        cache = ModelCache(root=root, capacity=capacity)
        for index in accesses:
            cache.get(f"m{index}.model")
        assert cache.hits + cache.misses == len(accesses)
        assert len(cache) <= capacity
        assert len(cache) <= cache.misses
        assert cache.evictions == cache.misses - len(cache)
        # Rerunning the same sequence from warm state is all hits once
        # the working set fits.
        if len(set(accesses)) <= capacity:
            before = cache.misses
            for index in accesses:
                cache.get(f"m{index}.model")
            assert cache.misses == before


class TestBatchInvariance:
    @given(
        cuts=st.lists(st.integers(1, 899), max_size=6, unique=True),
        batch_points=st.integers(1, 2048),
        delay=st.sampled_from([0.0, 0.001, 0.005]),
    )
    @settings(max_examples=12, deadline=None)
    def test_labels_do_not_depend_on_batching(
        self, cuts, batch_points, delay
    ):
        with tempfile.TemporaryDirectory() as root:
            self._check_invariance(cuts, batch_points, delay, root)

    @staticmethod
    def _check_invariance(cuts, batch_points, delay, root):
        spec = SyntheticDatasetSpec(
            dimensionality=4, n_points=900, n_clusters=2, seed=31
        )
        estimator, points, path = _fit_and_save(spec, root)
        pieces = np.split(points, sorted(cuts))
        cache = ModelCache(root=path.parent)

        async def main():
            async with BatchLabeller(
                cache, batch_points=batch_points, delay=delay
            ) as labeller:
                return await asyncio.gather(
                    *[
                        labeller.label(path.name, piece)
                        for piece in pieces
                        if piece.shape[0]
                    ]
                )

        parts = asyncio.run(main())
        assert np.array_equal(np.concatenate(parts), estimator.labels_)
