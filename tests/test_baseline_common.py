"""Tests for the shared baseline helpers."""

import numpy as np
import pytest

from repro.baselines.common import (
    kmeanspp_seeds,
    relabel_compact,
    result_from_labels,
)
from repro.types import NOISE_LABEL


class TestKmeansppSeeds:
    def test_seeds_are_distinct_and_valid(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(200, 3))
        seeds = kmeanspp_seeds(points, 5, rng)
        assert len(set(seeds.tolist())) == 5
        assert np.all(seeds >= 0)
        assert np.all(seeds < 200)

    def test_spreads_across_separated_blobs(self):
        rng = np.random.default_rng(1)
        blobs = np.vstack(
            [rng.normal(c, 0.01, size=(50, 2)) for c in (0.1, 0.5, 0.9)]
        )
        seeds = kmeanspp_seeds(blobs, 3, rng)
        blob_ids = {int(s) // 50 for s in seeds}
        assert len(blob_ids) == 3  # one seed per blob

    def test_rejects_more_seeds_than_points(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="more seeds"):
            kmeanspp_seeds(np.zeros((3, 2)), 4, rng)

    def test_handles_identical_points(self):
        rng = np.random.default_rng(3)
        seeds = kmeanspp_seeds(np.full((20, 2), 0.5), 3, rng)
        assert seeds.shape == (3,)


class TestRelabelCompact:
    def test_compacts_sparse_labels(self):
        labels = np.array([7, 7, 2, NOISE_LABEL, 2, 9])
        out = relabel_compact(labels)
        assert out.tolist() == [0, 0, 1, NOISE_LABEL, 1, 2]

    def test_noise_preserved(self):
        labels = np.array([NOISE_LABEL, NOISE_LABEL])
        assert relabel_compact(labels).tolist() == [NOISE_LABEL, NOISE_LABEL]

    def test_order_of_first_appearance(self):
        labels = np.array([5, 1, 5, 0])
        assert relabel_compact(labels).tolist() == [0, 1, 0, 2]


class TestResultFromLabels:
    def test_builds_clusters_with_axes(self):
        labels = np.array([4, 4, NOISE_LABEL, 8])
        result = result_from_labels(
            labels, axes_for_label=lambda lab: [lab % 3]
        )
        assert result.n_clusters == 2
        assert result.clusters[0].indices == frozenset({0, 1})
        assert result.clusters[0].relevant_axes == frozenset({1})  # 4 % 3
        assert result.clusters[1].indices == frozenset({3})
        assert result.clusters[1].relevant_axes == frozenset({2})  # 8 % 3

    def test_extras_passed_through(self):
        result = result_from_labels(
            np.array([0]), axes_for_label=lambda lab: [0], extras={"k": 1}
        )
        assert result.extras == {"k": 1}
