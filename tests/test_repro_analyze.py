"""Tests for the interprocedural analyzer (tools/repro_analyze)."""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repro_analyze import (
    BaselineError,
    CallGraph,
    Finding,
    Project,
    analyze_contracts,
    analyze_determinism,
    analyze_equivalence,
    analyze_ffi,
    analyze_purity,
    analyze_shapes,
    apply_baseline,
    find_parallel_entries,
    parse_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_project(tmp_path, files):
    for relative, content in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return Project.load([tmp_path])


def codes(findings):
    return sorted(f.code for f in findings)


ALL_MODULES = ("",)  # prefix matching every fixture module


class TestShapesPass:
    """A1: shape/dtype dataflow."""

    def test_narrowing_cast_true_positive(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np
                from repro.types import IntArray

                def shrink(a: IntArray):
                    return a.astype(np.uint16)
                """
            },
        )
        findings = analyze_shapes(project, module_prefixes=ALL_MODULES)
        assert codes(findings) == ["A101"]
        assert "int64" in findings[0].message
        assert "uint16" in findings[0].message
        assert findings[0].symbol == "mod.shrink"

    def test_clean_fixture_has_no_findings(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np
                from repro.types import FloatArray, IntArray

                def bin_points(points: FloatArray, h: int) -> IntArray:
                    base = np.floor(points * (1 << h)).astype(np.int64)
                    np.clip(base, 0, (1 << h) - 1, out=base)
                    return base

                def widths(counts: IntArray) -> FloatArray:
                    total = counts.astype(np.float64)
                    return total / 2.0
                """
            },
        )
        assert analyze_shapes(project, module_prefixes=ALL_MODULES) == []

    def test_integral_float_cast_is_exempt(self, tmp_path):
        # floor() marks the value integral, so float64 -> int64 binning
        # (not safe under np.can_cast) is still accepted.
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np
                from repro.types import FloatArray

                def bin(points: FloatArray):
                    return np.floor(points * 8).astype(np.int64)

                def truncate(points: FloatArray):
                    return points.astype(np.int64)
                """
            },
        )
        findings = analyze_shapes(project, module_prefixes=ALL_MODULES)
        # Only the un-floored truncation is a narrowing cast.
        assert codes(findings) == ["A101"]
        assert findings[0].symbol == "mod.truncate"

    def test_platform_dependent_width_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                def scratch(n: int):
                    return np.zeros(n, dtype=np.intp)
                """
            },
        )
        findings = analyze_shapes(project, module_prefixes=ALL_MODULES)
        assert codes(findings) == ["A102"]
        assert "np.intp" in findings[0].message

    def test_axis_out_of_range_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                def oops():
                    grid = np.zeros((4, 3))
                    return grid.sum(axis=2)
                """
            },
        )
        findings = analyze_shapes(project, module_prefixes=ALL_MODULES)
        assert codes(findings) == ["A103"]

    def test_silent_upcast_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np

                def mix(n: int):
                    unsigned = np.zeros(n, dtype=np.uint64)
                    signed = np.zeros(n, dtype=np.int64)
                    return unsigned + signed
                """
            },
        )
        findings = analyze_shapes(project, module_prefixes=ALL_MODULES)
        assert codes(findings) == ["A104"]
        assert "float64" in findings[0].message

    def test_check_array_refines_the_environment(self, tmp_path):
        # Without the refinement the ndim of ``points`` is unknown and
        # the axis check stays silent; with it, axis=3 is provably bad.
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np
                from repro.core.contracts import check_array
                from repro.types import AnyArray

                def reduce(points: AnyArray):
                    check_array("points", points, dtype=np.float64, ndim=2)
                    return points.sum(axis=3)
                """
            },
        )
        findings = analyze_shapes(project, module_prefixes=ALL_MODULES)
        assert codes(findings) == ["A103"]

    def test_summaries_flow_between_functions(self, tmp_path):
        # The narrowing source dtype is established in one function and
        # consumed in another via the round-one return summary.
        project = make_project(
            tmp_path,
            {
                "mod.py": """
                import numpy as np
                from repro.types import FloatArray

                def produce(points: FloatArray):
                    return np.floor(points * 4).astype(np.int64)

                def consume(points: FloatArray):
                    coords = produce(points)
                    return coords.astype(np.uint8)
                """
            },
        )
        findings = analyze_shapes(project, module_prefixes=ALL_MODULES)
        assert codes(findings) == ["A101"]
        assert findings[0].symbol == "mod.consume"


# Indented to match the triple-quoted fixture bodies below, so that the
# concatenated module dedents uniformly in make_project.
PARALLEL_PRELUDE = """
                import numpy as np
                from concurrent.futures import ProcessPoolExecutor
"""


class TestPurityPass:
    """A2: parallel-purity proofs."""

    def _analyze(self, project):
        return analyze_purity(project, CallGraph(project))

    def test_injected_mutable_global_write_is_flagged(self, tmp_path):
        # The ISSUE's acceptance fixture: a REPRO_JOBS-style worker that
        # writes module state, dispatched exactly like the runner does.
        project = make_project(
            tmp_path,
            {
                "runnerlike.py": PARALLEL_PRELUDE
                + """
                _RESULTS = {}

                def _configuration_task(name, params):
                    global _TOTAL
                    _TOTAL = len(params)
                    _RESULTS[name] = params
                    return params

                def run_suite_parallel(tasks, n_jobs):
                    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                        futures = [
                            pool.submit(_configuration_task, name, params)
                            for name, params in tasks
                        ]
                        return [f.result() for f in futures]
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A201", "A201", "A201"]
        messages = " | ".join(f.message for f in findings)
        assert "_TOTAL" in messages
        assert "_RESULTS" in messages
        assert all(
            f.symbol == "runnerlike._configuration_task" for f in findings
        )

    def test_clean_worker_has_no_findings(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "clean.py": PARALLEL_PRELUDE
                + """
                import time

                def task(seed, values):
                    rng = np.random.default_rng(seed)
                    start = time.perf_counter()
                    noise = rng.normal(size=len(values))
                    local = []
                    local.append(noise.sum())
                    return local, time.perf_counter() - start

                def run(seeds, pool_size):
                    with ProcessPoolExecutor(max_workers=pool_size) as pool:
                        return list(pool.map(task, seeds))
                """
            },
        )
        assert self._analyze(project) == []

    def test_ambient_randomness_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "rand.py": PARALLEL_PRELUDE
                + """
                def task(n):
                    return np.random.uniform(size=n)

                def run(sizes):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(task, sizes))
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A202"]
        assert "numpy.random.uniform" in findings[0].message

    def test_unseeded_default_rng_flagged_seeded_allowed(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "rng.py": PARALLEL_PRELUDE
                + """
                def bad(n):
                    return np.random.default_rng().normal(size=n)

                def good(seed):
                    return np.random.default_rng(seed).normal()

                def run(items):
                    with ProcessPoolExecutor() as pool:
                        a = pool.submit(bad, 3)
                        b = pool.submit(good, 0)
                    return a, b
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A202"]
        assert findings[0].symbol == "rng.bad"

    def test_ambient_reads_flagged_transitively(self, tmp_path):
        # The clock read hides one call down from the dispatched task.
        project = make_project(
            tmp_path,
            {
                "clock.py": PARALLEL_PRELUDE
                + """
                import os
                import time

                def helper():
                    return time.time(), os.environ.get("HOME")

                def task(x):
                    return helper()

                def run(items):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(task, items))
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A203", "A203"]
        assert all(f.symbol == "clock.helper" for f in findings)

    def test_methods_of_instantiated_classes_are_reachable(self, tmp_path):
        # The worker only *builds* the estimator; the conservative
        # closure still inspects every method of the class.
        project = make_project(
            tmp_path,
            {
                "cls.py": PARALLEL_PRELUDE
                + """
                class Estimator:
                    def fit(self, points):
                        return np.random.uniform(size=points.shape[0])

                def task(points):
                    model = Estimator()
                    return model.fit(points)

                def run(chunks):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(task, chunks))
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A202"]
        assert findings[0].symbol == "cls.Estimator.fit"

    def test_entry_detection_finds_submitted_functions(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "disp.py": PARALLEL_PRELUDE
                + """
                def task(x):
                    return x

                def run(items):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(task, i) for i in items]
                """
            },
        )
        entries = find_parallel_entries(project)
        assert [entry.qualname for entry in entries] == ["disp.task"]

    def test_run_supervised_dispatch_roots_the_proof(self, tmp_path):
        # The resilient runner hands its worker to run_supervised
        # instead of a raw pool.submit; the proof must still root at the
        # worker even though the calling module imports no executor.
        project = make_project(
            tmp_path,
            {
                "supervised.py": """
                import numpy as np
                from repro.resilience.supervisor import Task, run_supervised

                def task(name, params, *, attempt, fault, in_worker):
                    return {"noise": float(np.random.uniform())}

                def run(cells):
                    tasks = [Task(key=k, args=a) for k, a in cells]
                    return run_supervised(task, tasks, n_jobs=2)
                """
            },
        )
        entries = find_parallel_entries(project)
        assert [entry.qualname for entry in entries] == ["supervised.task"]
        findings = self._analyze(project)
        assert codes(findings) == ["A202"]
        assert findings[0].symbol == "supervised.task"

    def test_no_executor_import_means_no_entries(self, tmp_path):
        # ``pool.submit`` on something else (a thread pool wrapper the
        # module built itself) does not root a proof.
        project = make_project(
            tmp_path,
            {
                "noexec.py": """
                def task(x):
                    return x

                def run(pool, items):
                    return [pool.submit(task, i) for i in items]
                """
            },
        )
        assert find_parallel_entries(project) == []


CONTRACT_TYPES = """
                import numpy as np
                from repro.core.contracts import check_array, check_labels
                from repro.types import FloatArray, IntArray
"""


class TestContractsPass:
    """A3: contract cross-checking."""

    def test_unchecked_entry_point_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pkg/__init__.py": """
                from pkg.api import checked, unchecked

                __all__ = ["checked", "unchecked"]
                """,
                "pkg/api.py": CONTRACT_TYPES
                + """
                def checked(points: FloatArray) -> float:
                    points = np.asarray(points, dtype=np.float64)
                    check_array("points", points, dtype=np.float64, ndim=2)
                    return float(points.sum())

                def unchecked(points: FloatArray) -> float:
                    return float(points.sum())
                """,
            },
        )
        findings = analyze_contracts(project, packages=("pkg",))
        assert codes(findings) == ["A301"]
        assert findings[0].symbol == "pkg.api.unchecked"
        assert "'points'" in findings[0].message

    def test_forwarded_parameter_counts_as_checked(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pkg/__init__.py": """
                from pkg.api import outer

                __all__ = ["outer"]
                """,
                "pkg/api.py": CONTRACT_TYPES
                + """
                def _inner(points: FloatArray) -> float:
                    check_array("points", points, dtype=np.float64, ndim=2)
                    return float(points.sum())

                def outer(points: FloatArray) -> float:
                    return _inner(points)
                """,
            },
        )
        assert analyze_contracts(project, packages=("pkg",)) == []

    def test_iterable_parameter_checked_per_element(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pkg/__init__.py": """
                from pkg.api import stream_ok, stream_bad

                __all__ = ["stream_ok", "stream_bad"]
                """,
                "pkg/api.py": CONTRACT_TYPES
                + """
                from collections.abc import Iterable

                def stream_ok(chunks: Iterable[FloatArray]) -> float:
                    total = 0.0
                    for index, chunk in enumerate(chunks):
                        chunk = np.asarray(chunk, dtype=np.float64)
                        check_array("chunk", chunk, dtype=np.float64, ndim=2)
                        total += float(chunk.sum())
                    return total

                def stream_bad(chunks: Iterable[FloatArray]) -> float:
                    return sum(float(np.asarray(c).sum()) for c in chunks)
                """,
            },
        )
        findings = analyze_contracts(project, packages=("pkg",))
        assert codes(findings) == ["A301"]
        assert findings[0].symbol == "pkg.api.stream_bad"

    def test_inherited_public_method_resolves_through_bases(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pkg/__init__.py": """
                from pkg.model import Model

                __all__ = ["Model"]
                """,
                "pkg/base.py": CONTRACT_TYPES
                + """
                class Base:
                    def fit(self, points: FloatArray):
                        points = np.asarray(points, dtype=np.float64)
                        check_array("points", points, dtype=np.float64, ndim=2)
                        return self._fit(points)

                    def fit_predict(self, points: FloatArray):
                        return self.fit(points)
                """,
                "pkg/model.py": """
                from pkg.base import Base

                class Model(Base):
                    def _fit(self, points):
                        return points
                """,
            },
        )
        assert analyze_contracts(project, packages=("pkg",)) == []

    def test_dtype_disagreement_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pkg/__init__.py": """
                from pkg.api import labelled

                __all__ = ["labelled"]
                """,
                "pkg/api.py": CONTRACT_TYPES
                + """
                def labelled(labels: IntArray) -> int:
                    check_array("labels", labels, dtype=np.float64, ndim=1)
                    return int(labels.max())
                """,
            },
        )
        findings = analyze_contracts(project, packages=("pkg",))
        assert codes(findings) == ["A302"]
        assert "IntArray" in findings[0].message
        assert "float64" in findings[0].message

    def test_non_array_parameters_need_no_check(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "pkg/__init__.py": """
                from pkg.api import scalar_only

                __all__ = ["scalar_only"]
                """,
                "pkg/api.py": """
                def scalar_only(n_points: int, alpha: float) -> float:
                    return n_points * alpha
                """,
            },
        )
        assert analyze_contracts(project, packages=("pkg",)) == []


# A small FFI binding module in the shape of the real cext backend; the
# injected-divergence tests below mutate one line at a time.
FFI_FIXTURE = '''
import ctypes

import numpy as np

from repro.types import IntArray

_C_SOURCE = r"""
void scale(const int64_t *values, int64_t n, int64_t *out) {
    for (int64_t i = 0; i < n; i++) out[i] = 2 * values[i];
}
"""

_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")

def bind(lib):
    lib.scale.restype = None
    lib.scale.argtypes = [_I64P, ctypes.c_int64, _I64P]

    def scale(values: IntArray) -> IntArray:
        n = values.shape[0]
        out = np.empty(n, dtype=np.int64)
        lib.scale(np.ascontiguousarray(values, dtype=np.int64), n, out)
        return out

    return scale
'''


class TestFFIPass:
    """A4: C prototypes vs ctypes bindings vs call sites."""

    def _analyze(self, tmp_path, source):
        project = make_project(tmp_path, {"cext_mod.py": source})
        return analyze_ffi(project, cext_module="cext_mod")

    def test_clean_fixture_has_no_findings(self, tmp_path):
        assert self._analyze(tmp_path, FFI_FIXTURE) == []

    def test_signature_drift_flagged(self, tmp_path):
        # The injected divergence: the length parameter binds c_double
        # while the C prototype declares int64_t.
        drifted = FFI_FIXTURE.replace("ctypes.c_int64", "ctypes.c_double")
        findings = self._analyze(tmp_path, drifted)
        assert codes(findings) == ["A401"]
        assert "float64" in findings[0].message
        assert findings[0].symbol == "cext_mod.scale"

    def test_arity_drift_flagged(self, tmp_path):
        drifted = FFI_FIXTURE.replace("_I64P, ctypes.c_int64, _I64P", "_I64P")
        findings = self._analyze(tmp_path, drifted)
        assert "A401" in codes(findings)
        assert any("1 entries" in f.message for f in findings)

    def test_unbound_export_and_orphan_binding_flagged(self, tmp_path):
        drifted = FFI_FIXTURE.replace("lib.scale.argtypes", "lib.scan.argtypes")
        findings = self._analyze(tmp_path, drifted)
        assert codes(findings) == ["A401", "A401"]
        messages = " | ".join(f.message for f in findings)
        assert "no ctypes argtypes binding" in messages
        assert "no exported C function" in messages

    def test_missing_contiguity_flag_flagged(self, tmp_path):
        drifted = FFI_FIXTURE.replace(', flags="C_CONTIGUOUS"', "")
        findings = self._analyze(tmp_path, drifted)
        assert set(codes(findings)) == {"A401"}
        assert any("C_CONTIGUOUS" in f.message for f in findings)

    def test_unpaired_pointer_flagged(self, tmp_path):
        source = FFI_FIXTURE.replace(
            'void scale(const int64_t *values, int64_t n, int64_t *out) {\n'
            '    for (int64_t i = 0; i < n; i++) out[i] = 2 * values[i];\n'
            '}',
            'void scale(const int64_t *values, int64_t n, int64_t *out) {\n'
            '    for (int64_t i = 0; i < n; i++) out[i] = 2 * values[i];\n'
            '}\n'
            'void seed_out(int64_t *out, double alpha) {\n'
            '    out[0] = (int64_t)alpha;\n'
            '}',
        ).replace(
            "lib.scale.restype = None",
            "lib.scale.restype = None\n"
            "    lib.seed_out.restype = None\n"
            "    lib.seed_out.argtypes = [_I64P, ctypes.c_double]",
        )
        findings = self._analyze(tmp_path, source)
        assert codes(findings) == ["A402"]
        assert "'out'" in findings[0].message
        assert "no integer length parameter" in findings[0].message

    def test_data_derived_index_flagged(self, tmp_path):
        # values[j] where j was itself read out of the array: data,
        # never a bound.
        source = FFI_FIXTURE.replace(
            "out[i] = 2 * values[i];",
            "int64_t j = values[i];\n        out[i] = values[j];",
        )
        findings = self._analyze(tmp_path, source)
        assert codes(findings) == ["A402"]
        assert "'j'" in findings[0].message

    def test_bounded_counter_cycle_is_not_flagged(self, tmp_path):
        # low/mid/high step from each other (a binary search); none of
        # them reads data, so the mutually recursive group stays
        # bounded.
        source = FFI_FIXTURE.replace(
            "for (int64_t i = 0; i < n; i++) out[i] = 2 * values[i];",
            "int64_t low = 0, high = n;\n"
            "    while (low < high) {\n"
            "        int64_t mid = (low + high) / 2;\n"
            "        if (values[mid] < 0) low = mid + 1; else high = mid;\n"
            "    }\n"
            "    out[0] = low;",
        )
        assert self._analyze(tmp_path, source) == []

    def test_unproven_call_site_flagged(self, tmp_path):
        # The injected divergence: the guard is dropped, so the call
        # pushes a possibly non-contiguous view through the ndpointer.
        drifted = FFI_FIXTURE.replace(
            "np.ascontiguousarray(values, dtype=np.int64)", "values"
        )
        findings = self._analyze(tmp_path, drifted)
        assert codes(findings) == ["A403"]
        assert "not provably" in findings[0].message

    def test_wrong_dtype_call_site_flagged(self, tmp_path):
        drifted = FFI_FIXTURE.replace(
            "out = np.empty(n, dtype=np.int64)",
            "out = np.empty(n, dtype=np.float64)",
        )
        findings = self._analyze(tmp_path, drifted)
        assert codes(findings) == ["A403"]
        assert "float64" in findings[0].message

    def test_module_without_c_source_is_ignored(self, tmp_path):
        project = make_project(tmp_path, {"cext_mod.py": "X = 1\n"})
        assert analyze_ffi(project, cext_module="cext_mod") == []


LOOPS_FIXTURE = """
SF_GUARD_BAND = 1e-6

def scale(values, out):
    for i in range(values.shape[0]):
        out[i] = 2 * values[i]
"""

NUMBA_FIXTURE = """
import loops_mod as loops

compiled_scale = jit(loops.scale)

def scale(values, out):
    return compiled_scale(values, out)
"""

CEXT_EQ_FIXTURE = '''
_C_SOURCE = r"""
#define SF_GUARD_BAND 1e-6

void scale(const int64_t *values, int64_t n, int64_t *out) {
    for (int64_t i = 0; i < n; i++) out[i] = 2 * values[i];
}
"""
'''


class TestEquivalencePass:
    """A5: shared-body dispatch, loop skeletons, constants."""

    def _analyze(self, tmp_path, files):
        project = make_project(tmp_path, files)
        return analyze_equivalence(
            project,
            loops_module="loops_mod",
            numba_module="numba_mod",
            cext_module="cext_mod",
        )

    def test_clean_fixture_has_no_findings(self, tmp_path):
        findings = self._analyze(
            tmp_path,
            {
                "loops_mod.py": LOOPS_FIXTURE,
                "numba_mod.py": NUMBA_FIXTURE,
                "cext_mod.py": CEXT_EQ_FIXTURE,
            },
        )
        assert findings == []

    def test_private_numba_loop_copy_flagged(self, tmp_path):
        # The injected divergence: the backend keeps a loop-bearing
        # namesake instead of jitting the shared body.  It still
        # references loops.scale, so the only finding is the copy.
        findings = self._analyze(
            tmp_path,
            {
                "loops_mod.py": LOOPS_FIXTURE,
                "numba_mod.py": """
                import loops_mod as loops

                _shared = loops.scale

                def scale(values, out):
                    for i in range(values.shape[0]):
                        out[i] = 2 * values[i]
                """,
                "cext_mod.py": CEXT_EQ_FIXTURE,
            },
        )
        assert codes(findings) == ["A501"]
        assert "private copy" in findings[0].message
        assert "duplicate" in findings[0].message

    def test_unreferenced_kernel_flagged(self, tmp_path):
        findings = self._analyze(
            tmp_path,
            {
                "loops_mod.py": LOOPS_FIXTURE,
                "numba_mod.py": "import loops_mod as loops\n",
                "cext_mod.py": CEXT_EQ_FIXTURE,
            },
        )
        assert codes(findings) == ["A501"]
        assert "never references" in findings[0].message

    def test_skeleton_divergence_flagged(self, tmp_path):
        # The injected divergence: the C side nests a second loop the
        # Python body does not have.
        diverged = CEXT_EQ_FIXTURE.replace(
            "for (int64_t i = 0; i < n; i++) out[i] = 2 * values[i];",
            "for (int64_t i = 0; i < n; i++)\n"
            "        for (int64_t k = 0; k < n; k++)\n"
            "            out[i] = 2 * values[k];",
        )
        findings = self._analyze(
            tmp_path,
            {
                "loops_mod.py": LOOPS_FIXTURE,
                "numba_mod.py": NUMBA_FIXTURE,
                "cext_mod.py": diverged,
            },
        )
        assert codes(findings) == ["A502"]
        assert "[F(F)]" in findings[0].message
        assert "[F]" in findings[0].message

    def test_constant_mismatch_flagged(self, tmp_path):
        # The injected divergence: the C guard band is an order of
        # magnitude wider than the Python definition.
        findings = self._analyze(
            tmp_path,
            {
                "loops_mod.py": LOOPS_FIXTURE,
                "numba_mod.py": NUMBA_FIXTURE,
                "cext_mod.py": CEXT_EQ_FIXTURE.replace(
                    "#define SF_GUARD_BAND 1e-6",
                    "#define SF_GUARD_BAND 1e-5",
                ),
            },
        )
        assert codes(findings) == ["A503"]
        assert "1e-5" in findings[0].message

    def test_define_without_counterpart_flagged(self, tmp_path):
        findings = self._analyze(
            tmp_path,
            {
                "loops_mod.py": LOOPS_FIXTURE,
                "numba_mod.py": NUMBA_FIXTURE,
                "cext_mod.py": CEXT_EQ_FIXTURE.replace(
                    "#define SF_GUARD_BAND 1e-6",
                    "#define SF_GUARD_BAND 1e-6\n#define EXTRA_KNOB 3.0",
                ),
            },
        )
        assert codes(findings) == ["A503"]
        assert "EXTRA_KNOB" in findings[0].message

    def test_private_python_constant_pairs_with_bare_define(self, tmp_path):
        findings = self._analyze(
            tmp_path,
            {
                "loops_mod.py": LOOPS_FIXTURE.replace(
                    "SF_GUARD_BAND = 1e-6", "_SF_GUARD_BAND = 1e-6"
                ),
                "numba_mod.py": NUMBA_FIXTURE,
                "cext_mod.py": CEXT_EQ_FIXTURE,
            },
        )
        assert findings == []


class TestDeterminismPass:
    """A6: dispatch roots and worker-visible state."""

    def _analyze(self, project):
        return analyze_determinism(project, CallGraph(project))

    def test_unordered_worker_reduce_flagged(self, tmp_path):
        # The injected divergence: folding float results in completion
        # order.  as_completed is A601; the += over .result() is A602.
        project = make_project(
            tmp_path,
            {
                "fold.py": """
                from concurrent.futures import ProcessPoolExecutor
                from concurrent.futures import as_completed

                def task(x):
                    return x * 0.5

                def run(items):
                    total = 0.0
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(task, i) for i in items]
                        for future in as_completed(futures):
                            total += future.result()
                    return total
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A601", "A602"]
        assert "as_completed" in findings[0].message
        assert "submission order" in findings[1].message

    def test_submission_order_reduce_is_clean(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "ordered.py": """
                from concurrent.futures import ProcessPoolExecutor

                def task(x):
                    return x * 0.5

                def run(items):
                    out = []
                    done = 0
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(task, i) for i in items]
                        for item, future in zip(items, futures):
                            out.append((item, future.result()))
                            done += int(future.result())
                    return out, done
                """
            },
        )
        assert self._analyze(project) == []

    def test_sum_of_results_flagged(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "summed.py": """
                from concurrent.futures import ProcessPoolExecutor

                def task(x):
                    return x * 0.5

                def run(items):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(task, i) for i in items]
                        return sum(f.result() for f in futures)
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A602"]
        assert "sum(...)" in findings[0].message

    def test_set_iteration_outside_dispatch_path_not_flagged(self, tmp_path):
        # The same iteration in a function that neither dispatches nor
        # runs in a worker is out of scope (R003's territory, not A6's).
        project = make_project(
            tmp_path,
            {
                "plain.py": """
                def tally(values):
                    return [v for v in {1, 2, 3} if v in values]
                """
            },
        )
        assert self._analyze(project) == []

    def test_mutable_worker_state_flagged(self, tmp_path):
        # The injected divergences: a mutable default on the worker and
        # a module-level dict the parent mutates after forking.
        project = make_project(
            tmp_path,
            {
                "state.py": """
                from concurrent.futures import ProcessPoolExecutor

                _CACHE = {}

                def configure(value):
                    _CACHE["mode"] = value

                def task(x, acc=[]):
                    acc.append(x)
                    return len(acc) + len(_CACHE)

                def run(items):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(task, items))
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == ["A603", "A603"]
        messages = " | ".join(f.message for f in findings)
        assert "mutable default" in messages
        assert "_CACHE" in messages
        assert all(f.symbol == "state.task" for f in findings)

    def test_worker_local_mutation_is_clean(self, tmp_path):
        # A memo the worker itself maintains is per-process state with
        # no parent-side mutator: the A201/A603 boundary.
        project = make_project(
            tmp_path,
            {
                "memo.py": """
                from concurrent.futures import ProcessPoolExecutor

                _MEMO = {}

                def task(x):
                    if x not in _MEMO:
                        _MEMO[x] = x * 0.5
                    return _MEMO[x]

                def run(items):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(task, items))
                """
            },
        )
        findings = self._analyze(project)
        assert codes(findings) == []


class TestBaseline:
    def _finding(self, line=10):
        return Finding(
            path="src/x.py",
            line=line,
            col=0,
            code="A101",
            symbol="x.f",
            message="cast from int64 to uint32 can lose values",
        )

    def test_fingerprint_survives_line_moves(self):
        assert (
            self._finding(line=10).fingerprint()
            == self._finding(line=99).fingerprint()
        )

    def test_roundtrip_keeps_comments(self, tmp_path):
        path = tmp_path / "baseline.txt"
        finding = self._finding()
        write_baseline(path, [finding], {})
        # Fresh entries carry TODO comments that the parser rejects.
        with pytest.raises(BaselineError, match="TODO"):
            parse_baseline(path)
        text = path.read_text().replace("TODO: justify", "guarded upstream")
        path.write_text(text)
        entries = parse_baseline(path)
        assert list(entries) == [finding.fingerprint()]
        fresh, stale = apply_baseline([finding], entries)
        assert fresh == [] and stale == []
        # Re-writing keeps the human comment.
        write_baseline(path, [finding], entries)
        assert "guarded upstream" in path.read_text()

    def test_uncommented_entry_rejected(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(f"{self._finding().fingerprint()}\n")
        with pytest.raises(BaselineError, match="comment"):
            parse_baseline(path)

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "baseline.txt"
        gone = self._finding()
        write_baseline(path, [gone], {})
        text = path.read_text().replace("TODO: justify", "was accepted once")
        path.write_text(text)
        fresh, stale = apply_baseline([], parse_baseline(path))
        assert fresh == []
        assert [entry.fingerprint for entry in stale] == [gone.fingerprint()]


class TestCommandLine:
    def test_tree_is_clean_at_head(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.repro_analyze", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_exit_one_on_findings(self, tmp_path):
        # The shapes pass scopes itself to repro.core modules, so the
        # fixture recreates that package layout under tmp_path.
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (core / "__init__.py").write_text("")
        (core / "bad.py").write_text(
            textwrap.dedent(
                """
                import numpy as np
                from repro.types import IntArray

                def shrink(a: IntArray):
                    return a.astype(np.uint8)
                """
            )
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.repro_analyze",
                str(tmp_path),
                "--no-baseline",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "A101" in result.stdout

    def test_list_codes(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.repro_analyze", "--list-codes"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        for code in ("A101", "A201", "A301"):
            assert code in result.stdout

    def test_unparsable_file_reported_as_a000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.repro_analyze",
                str(broken),
                "--no-baseline",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "A000" in result.stdout
