"""Tests for the ``mrcc-repro`` command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.env import trace_from_env


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_validates_row(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "fig99"])

    def test_scale_option(self):
        args = build_parser().parse_args(["fig5", "fig5a-c", "--scale", "0.2"])
        assert args.scale == 0.2


class TestCommands:
    def test_list_prints_exhibits(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "fig5t" in out
        assert "rotated" in out

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "MrCC found" in out
        assert "Quality=" in out

    def test_fig5s_small_scale(self, capsys):
        assert main(["fig5", "fig5s", "--scale", "0.008"]) == 0
        out = capsys.readouterr().out
        assert "[subspaces_quality]" in out
        assert "LAC" not in out

    def test_trace_flag_exports_and_propagates(self, capsys, tmp_path, monkeypatch):
        """``--trace`` writes a schema-valid trace and mirrors itself
        into ``REPRO_TRACE`` so spawn/forkserver ``REPRO_JOBS`` workers
        (which re-import and read only the environment) come up traced,
        not just fork workers."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        out = tmp_path / "trace.json"
        try:
            assert main(["list", "--trace", str(out)]) == 0
        finally:
            obs.set_enabled(False)
        assert trace_from_env() == str(out)
        payload = json.loads(out.read_text())
        obs.validate_trace(payload)
        assert "trace written to" in capsys.readouterr().out

    def test_save_and_summary_round_trip(self, capsys, tmp_path):
        path = tmp_path / "rows.json"
        assert main(["fig5", "fig5t", "--scale", "0.02", "--save", str(path)]) == 0
        capsys.readouterr()
        assert path.exists()
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mean Quality per method" in out
        assert "MrCC" in out
