"""Tests for the experiment layer: registry, runner, sweeps, reports."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.experiments.config import (
    HEADLINE_METHODS,
    method_registry,
    profile_from_env,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import run_method_on_dataset, run_suite
from repro.experiments.sensibility import alpha_sweep, resolution_sweep
from repro.experiments.synthetic_suite import (
    FIGURE_ROWS,
    run_figure_row,
    run_subspaces_quality,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=5,
            n_points=800,
            n_clusters=2,
            noise_fraction=0.1,
            max_irrelevant=2,
            seed=2,
        )
    )


class TestRegistry:
    def test_headline_methods_registered(self):
        registry = method_registry()
        assert set(HEADLINE_METHODS) <= set(registry)

    def test_grids_are_non_empty(self, tiny_dataset):
        for spec in method_registry().values():
            assert list(spec.grid(tiny_dataset, "quick"))
            assert list(spec.grid(tiny_dataset, "full"))

    def test_full_grids_extend_quick_grids(self, tiny_dataset):
        for spec in method_registry().values():
            quick = list(spec.grid(tiny_dataset, "quick"))
            full = list(spec.grid(tiny_dataset, "full"))
            assert len(full) >= len(quick)

    def test_builders_produce_fittable_methods(self, tiny_dataset):
        for spec in method_registry().values():
            params = next(iter(spec.grid(tiny_dataset, "quick")))
            method = spec.build(tiny_dataset, **params)
            result = method.fit(tiny_dataset.points)
            assert result.labels.shape == (tiny_dataset.n_points,)

    def test_profile_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_from_env() == "quick"
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert profile_from_env() == "full"
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            profile_from_env()


class TestRunner:
    def test_row_schema(self, tiny_dataset):
        registry = method_registry()
        row = run_method_on_dataset(registry["MrCC"], tiny_dataset, profile="quick")
        assert {
            "method", "dataset", "quality", "subspaces_quality",
            "seconds", "peak_kb", "n_found", "n_real", "params",
        } <= set(row)
        assert row["method"] == "MrCC"
        assert 0.0 <= row["quality"] <= 1.0
        assert row["seconds"] > 0.0
        assert row["peak_kb"] > 0.0

    def test_memory_tracking_optional(self, tiny_dataset):
        registry = method_registry()
        row = run_method_on_dataset(
            registry["MrCC"], tiny_dataset, profile="quick", track_memory=False
        )
        assert row["peak_kb"] == 0.0

    def test_best_configuration_wins(self, tiny_dataset):
        """The reported quality is the max over the grid of the same
        seed-averaged quality the runner computes."""
        import numpy as np

        from repro.evaluation.quality import quality

        registry = method_registry()
        spec = registry["LAC"]
        best = run_method_on_dataset(
            spec, tiny_dataset, profile="quick", track_memory=False
        )
        means = []
        for params in spec.grid(tiny_dataset, "quick"):
            per_seed = []
            for seed in range(3):
                method = spec.build(tiny_dataset, **params, random_state=seed)
                result = method.fit(tiny_dataset.points)
                per_seed.append(quality(result.clusters, tiny_dataset.clusters))
            means.append(float(np.mean(per_seed)))
        assert best["quality"] == pytest.approx(max(means))

    def test_run_suite_covers_all_pairs(self, tiny_dataset):
        rows = run_suite(
            [tiny_dataset], methods=("MrCC", "LAC"), profile="quick",
            track_memory=False,
        )
        assert {(r["method"], r["dataset"]) for r in rows} == {
            ("MrCC", tiny_dataset.name), ("LAC", tiny_dataset.name),
        }

    def test_run_suite_rejects_unknown_method(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown"):
            run_suite([tiny_dataset], methods=("NOPE",))


class TestSensibility:
    def test_alpha_sweep_rows(self, tiny_dataset):
        rows = alpha_sweep([tiny_dataset], alphas=(1e-3, 1e-10))
        assert len(rows) == 2
        assert {r["alpha"] for r in rows} == {1e-3, 1e-10}
        assert all(r["dataset"] == tiny_dataset.name for r in rows)

    def test_resolution_sweep_time_grows_with_h(self, tiny_dataset):
        rows = resolution_sweep([tiny_dataset], h_values=(4, 10))
        assert rows[0]["peak_kb"] < rows[1]["peak_kb"]


class TestFigureRows:
    def test_every_figure_row_defined(self):
        assert set(FIGURE_ROWS) == {
            "fig5a-c", "fig5d-f", "fig5g-i", "fig5j-l", "fig5m-o", "fig5p-r",
        }

    def test_unknown_figure_raises(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure_row("fig9")

    def test_small_row_runs(self):
        rows = run_figure_row(
            "fig5a-c", scale=0.008, methods=("MrCC",), profile="quick"
        )
        assert len(rows) == 7  # seven first-group datasets
        assert all(r["method"] == "MrCC" for r in rows)

    def test_subspaces_quality_excludes_lac(self):
        rows = run_subspaces_quality(scale=0.008)
        assert "LAC" not in {r["method"] for r in rows}


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            {"method": "MrCC", "quality": 0.987, "seconds": 1.5},
            {"method": "HARP", "quality": 0.5, "seconds": 1000.0},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "MrCC" in lines[2]
        assert "1,000" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series_pivots(self):
        rows = [
            {"method": "MrCC", "dataset": "6d", "quality": 1.0},
            {"method": "MrCC", "dataset": "8d", "quality": 0.9},
            {"method": "LAC", "dataset": "6d", "quality": 0.8},
            {"method": "LAC", "dataset": "8d", "quality": 0.7},
        ]
        text = format_series(rows, "quality")
        lines = text.splitlines()
        assert lines[0] == "[quality]"
        assert "6d" in lines[1] and "8d" in lines[1]
        assert lines[2].startswith("MrCC")
        assert lines[3].startswith("LAC")
