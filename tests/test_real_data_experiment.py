"""Tests for the Figure 5t real-data experiment driver."""


from repro.experiments.real_data import (
    TABLE_METHODS,
    check_lac_degenerates,
    real_data_dataset,
    run_real_data_table,
)

SCALE = 0.015


class TestRealDataTable:
    def test_table_methods_match_paper(self):
        assert TABLE_METHODS == ("EPCH", "CFPC", "HARP", "MrCC")

    def test_dataset_is_left_mlo(self):
        dataset = real_data_dataset(scale=SCALE)
        assert dataset.name == "kddcup2008-left-MLO"
        assert dataset.dimensionality == 25

    def test_rows_cover_all_methods(self):
        rows = run_real_data_table(scale=SCALE, methods=("MrCC",))
        assert [r["method"] for r in rows] == ["MrCC"]
        row = rows[0]
        assert row["quality"] > 0.0
        assert row["seconds"] > 0.0

    def test_lac_degeneracy_check_reports(self):
        row = check_lac_degenerates(scale=SCALE)
        assert row["method"] == "LAC"
        assert 0.0 < row["largest_fraction"] <= 1.0
        assert row["n_found"] >= 1
