"""Behavioural tests for the HARP baseline."""

import numpy as np
import pytest

from repro.baselines import HARP
from repro.evaluation.quality import quality
from repro.types import NOISE_LABEL


class TestParameters:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="n_clusters"):
            HARP(n_clusters=0)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError, match="max_noise_percent"):
            HARP(n_clusters=2, max_noise_percent=1.0)


class TestClustering:
    def test_recovers_planted_structure(self, easy_dataset):
        result = HARP(
            n_clusters=3, max_noise_percent=0.1, max_points=800
        ).fit(easy_dataset.points)
        assert result.n_clusters == 3
        assert quality(result.clusters, easy_dataset.clusters) > 0.8

    def test_noise_percentile_is_honoured(self, easy_dataset):
        result = HARP(
            n_clusters=3, max_noise_percent=0.2, max_points=600
        ).fit(easy_dataset.points)
        noise_fraction = result.n_noise / easy_dataset.n_points
        assert noise_fraction == pytest.approx(0.2, abs=0.02)

    def test_zero_noise_keeps_all_points(self, easy_dataset):
        result = HARP(
            n_clusters=3, max_noise_percent=0.0, max_points=600
        ).fit(easy_dataset.points)
        assert result.n_noise == 0

    def test_subsampling_still_labels_everything(self, easy_dataset):
        result = HARP(
            n_clusters=3, max_noise_percent=0.1, max_points=150
        ).fit(easy_dataset.points)
        assert result.extras["n_agglomerated"] == 150
        labelled = np.count_nonzero(result.labels != NOISE_LABEL)
        assert labelled == easy_dataset.n_points - result.n_noise
        assert labelled > easy_dataset.n_points // 2

    def test_selected_dimensions_reflect_structure(self, single_cluster_points):
        points, _ = single_cluster_points
        result = HARP(
            n_clusters=2, max_noise_percent=0.2, max_points=500
        ).fit(points)
        cluster = max(result.clusters, key=lambda c: c.size)
        assert {1, 3} & cluster.relevant_axes

    def test_deterministic_given_seed(self, easy_dataset):
        a = HARP(n_clusters=3, max_points=400, random_state=5).fit(
            easy_dataset.points
        )
        b = HARP(n_clusters=3, max_points=400, random_state=5).fit(
            easy_dataset.points
        )
        assert np.array_equal(a.labels, b.labels)
