"""Golden-trace regression tests for the observability layer.

Two fixed-seed synthetic suites pin the deterministic half of an
``MrCC.fit`` trace — the algorithm-work counters, the cluster count,
and a hash of the label vector — as committed JSON fixtures.  Any
change in the per-stage work counts (cells per level, convolutions,
hypothesis tests, MDL cuts, β-cluster accept/reject) fails here with a
counter-by-counter diff; regenerate intentionally with::

    PYTHONPATH=src python scripts/regen_golden_traces.py

The suite also asserts the observability contract that makes tracing
safe to turn on anywhere: labels are bit-identical with tracing on
versus off, and an exported trace validates against the stable schema.
"""

import hashlib
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import MrCC, generate_dataset, obs

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES_DIR = Path(__file__).parent / "fixtures"

sys.path.insert(0, str(REPO_ROOT / "scripts"))
from regen_golden_traces import GOLDEN_SUITES, golden_payload  # noqa: E402

sys.path.pop(0)

SUITE_NAMES = sorted(GOLDEN_SUITES)


def load_fixture(name: str) -> dict:
    path = FIXTURES_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden fixture {path}; run "
        "PYTHONPATH=src python scripts/regen_golden_traces.py"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", SUITE_NAMES)
class TestGoldenTraces:
    def test_counters_match_committed_fixture(self, name):
        expected = load_fixture(name)
        observed = golden_payload(name)
        assert observed["suite"] == expected["suite"], (
            "suite parameters drifted from the fixture; regenerate"
        )
        mismatched = {
            key: (expected["counters"].get(key), observed["counters"].get(key))
            for key in set(expected["counters"]) | set(observed["counters"])
            if expected["counters"].get(key) != observed["counters"].get(key)
        }
        assert not mismatched, (
            f"{name}: counters drifted (fixture vs observed): {mismatched}"
        )
        assert observed["n_clusters_found"] == expected["n_clusters_found"]
        assert observed["labels_sha256"] == expected["labels_sha256"]

    def test_labels_identical_with_tracing_on_and_off(self, name):
        suite = GOLDEN_SUITES[name]
        dataset = generate_dataset(suite["spec"])
        h = suite["n_resolutions"]

        assert not obs.enabled()
        untraced = MrCC(n_resolutions=h).fit(dataset.points)
        with obs.capture():
            traced = MrCC(n_resolutions=h).fit(dataset.points)

        assert np.array_equal(untraced.labels, traced.labels)
        assert untraced.labels.tobytes() == traced.labels.tobytes()
        assert (
            hashlib.sha256(untraced.labels.tobytes()).hexdigest()
            == load_fixture(name)["labels_sha256"]
        )

    def test_exported_trace_is_schema_valid(self, name, tmp_path):
        suite = GOLDEN_SUITES[name]
        dataset = generate_dataset(suite["spec"])
        out = tmp_path / "trace.json"
        with obs.capture():
            MrCC(n_resolutions=suite["n_resolutions"]).fit(dataset.points)
            payload = obs.export_trace(out, meta={"suite": name})
        obs.validate_trace(json.loads(out.read_text()))
        assert payload["meta"] == {"suite": name}
        span_names = [span["name"] for span in payload["spans"]]
        assert span_names[0] == "fit"
        assert {"tree.build", "search", "assemble"} <= set(span_names)
