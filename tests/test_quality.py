"""Tests for the Quality / Subspaces Quality metrics (Eqs. 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.quality import (
    evaluate_clustering,
    precision,
    quality,
    recall,
    subspaces_quality,
)
from repro.types import ClusteringResult, Dataset, SubspaceCluster


def _cluster(indices, axes=(0,)):
    return SubspaceCluster.from_iterables(indices, axes)


class TestPrecisionRecall:
    def test_precision_is_fraction_of_found(self):
        assert precision(frozenset({1, 2, 3, 4}), frozenset({1, 2})) == 0.5

    def test_recall_is_fraction_of_real(self):
        assert recall(frozenset({1, 2}), frozenset({1, 2, 3, 4})) == 0.5

    def test_empty_sets_score_zero(self):
        assert precision(frozenset(), frozenset({1})) == 0.0
        assert recall(frozenset({1}), frozenset()) == 0.0


class TestQuality:
    def test_perfect_clustering_scores_one(self):
        clusters = [_cluster([0, 1]), _cluster([2, 3, 4])]
        assert quality(clusters, clusters) == pytest.approx(1.0)

    def test_no_found_clusters_scores_zero(self):
        assert quality([], [_cluster([0, 1])]) == 0.0

    def test_no_real_clusters_scores_zero(self):
        assert quality([_cluster([0, 1])], []) == 0.0

    def test_half_covered_cluster(self):
        found = [_cluster([0, 1])]
        real = [_cluster([0, 1, 2, 3])]
        # precision 1.0, recall 0.5 -> harmonic mean 2/3.
        assert quality(found, real) == pytest.approx(2 / 3)

    def test_oversplit_clustering_loses_recall(self):
        real = [_cluster(range(10))]
        found = [_cluster(range(5)), _cluster(range(5, 10))]
        value = quality(found, real)
        assert 0.0 < value < 1.0

    def test_matching_uses_point_overlap_not_axes(self):
        found = [_cluster([0, 1, 2], axes=(3,))]
        real = [_cluster([0, 1, 2], axes=(0,)), _cluster([9], axes=(3,))]
        # Dominant real cluster is the one sharing points, despite the
        # disjoint axis sets.
        assert quality(found, real) > 0.5

    @given(
        split=st.integers(1, 19),
        total=st.integers(20, 60),
    )
    @settings(max_examples=30, deadline=None)
    def test_quality_bounded_in_unit_interval(self, split, total):
        real = [_cluster(range(total))]
        found = [_cluster(range(split))]
        value = quality(found, real)
        assert 0.0 <= value <= 1.0


class TestSubspacesQuality:
    def test_exact_axes_score_one(self):
        found = [_cluster([0, 1], axes=(0, 2))]
        real = [_cluster([0, 1], axes=(0, 2))]
        assert subspaces_quality(found, real) == pytest.approx(1.0)

    def test_wrong_axes_score_low(self):
        found = [_cluster([0, 1], axes=(4, 5))]
        real = [_cluster([0, 1], axes=(0, 2))]
        assert subspaces_quality(found, real) == 0.0

    def test_partial_axes(self):
        found = [_cluster([0, 1], axes=(0,))]
        real = [_cluster([0, 1], axes=(0, 2))]
        # precision 1.0, recall 0.5 -> 2/3.
        assert subspaces_quality(found, real) == pytest.approx(2 / 3)


class TestEvaluateClustering:
    def test_report_fields(self):
        points = np.array([[0.1, 0.1], [0.12, 0.12], [0.9, 0.9]])
        labels = np.array([0, 0, -1])
        dataset = Dataset(
            points=points,
            labels=labels,
            clusters=[_cluster([0, 1], axes=(0, 1))],
            name="tiny",
        )
        result = ClusteringResult.from_labels(labels, [(0, 1)])
        report = evaluate_clustering(result, dataset)
        assert report.quality == pytest.approx(1.0)
        assert report.subspaces_quality == pytest.approx(1.0)
        assert report.n_found == 1
        assert report.n_real == 1
        assert report.n_noise_found == 1
        assert report.as_row()["quality"] == pytest.approx(1.0)
