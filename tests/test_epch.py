"""Behavioural tests for the EPCH baseline."""

import numpy as np
import pytest

from repro.baselines import EPCH
from repro.evaluation.quality import quality, subspaces_quality


class TestParameters:
    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="max_no_cluster"):
            EPCH(max_no_cluster=0)

    def test_rejects_bad_outlier_threshold(self):
        with pytest.raises(ValueError, match="outlier_threshold"):
            EPCH(max_no_cluster=2, outlier_threshold=1.0)

    def test_rejects_hist_dim_above_dimensionality(self, easy_dataset):
        with pytest.raises(ValueError, match="hist_dim"):
            EPCH(max_no_cluster=2, hist_dim=99).fit(easy_dataset.points)


class TestClustering:
    def test_recovers_planted_structure(self, easy_dataset):
        result = EPCH(max_no_cluster=3).fit(easy_dataset.points)
        assert result.n_clusters >= 2
        assert quality(result.clusters, easy_dataset.clusters) > 0.7

    def test_identifies_relevant_axes(self, easy_dataset):
        result = EPCH(max_no_cluster=3).fit(easy_dataset.points)
        assert subspaces_quality(result.clusters, easy_dataset.clusters) > 0.6

    def test_respects_cluster_budget(self, medium_dataset):
        result = EPCH(max_no_cluster=2).fit(medium_dataset.points)
        assert result.n_clusters <= 2

    def test_two_dimensional_histograms(self, easy_dataset):
        result = EPCH(max_no_cluster=3, hist_dim=2).fit(easy_dataset.points)
        assert result.extras["n_histograms"] == 10  # C(5, 2)
        assert result.n_clusters >= 1

    def test_uniform_noise_mostly_outliers(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 1, size=(1500, 5))
        result = EPCH(max_no_cluster=3).fit(points)
        assert result.n_noise > 1000

    def test_higher_outlier_threshold_accepts_more_points(self, medium_dataset):
        strict = EPCH(max_no_cluster=5, outlier_threshold=0.05).fit(
            medium_dataset.points
        )
        lenient = EPCH(max_no_cluster=5, outlier_threshold=0.5).fit(
            medium_dataset.points
        )
        assert lenient.n_noise <= strict.n_noise

    def test_extras_report_histograms(self, easy_dataset):
        result = EPCH(max_no_cluster=3).fit(easy_dataset.points)
        assert result.extras["n_histograms"] == 5
        assert len(result.extras["regions_per_histogram"]) == 5
