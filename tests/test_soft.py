"""Tests for the soft-clustering extension."""

import numpy as np
import pytest

from repro.core.counting_tree import CountingTree
from repro.core.soft import SoftMrCC, find_beta_clusters_soft, merge_soft
from repro.core.beta_cluster import BetaCluster
from repro.evaluation.quality import quality
from repro.types import NOISE_LABEL


def _beta(lower, upper, relevant):
    lower = np.asarray(lower, dtype=float)
    return BetaCluster(
        lower=lower,
        upper=np.asarray(upper, dtype=float),
        relevant=np.asarray(relevant, dtype=bool),
        level=2,
        center_row=0,
        relevances=np.zeros(lower.shape[0]),
    )


@pytest.fixture(scope="module")
def overlapping_points():
    """Two clusters sharing space: same region on axis 0, different on
    axis 1; plus noise."""
    rng = np.random.default_rng(0)
    a = np.column_stack(
        [rng.normal(0.4, 0.02, 600), rng.normal(0.2, 0.02, 600),
         rng.uniform(0, 1, 600), rng.uniform(0, 1, 600),
         rng.normal(0.6, 0.02, 600)]
    )
    b = np.column_stack(
        [rng.normal(0.4, 0.02, 600), rng.normal(0.8, 0.02, 600),
         rng.uniform(0, 1, 600), rng.uniform(0, 1, 600),
         rng.normal(0.3, 0.02, 600)]
    )
    noise = rng.uniform(0, 1, size=(300, 5))
    points = np.clip(np.vstack([a, b, noise]), 0, np.nextafter(1.0, 0))
    return points


class TestSoftSearch:
    def test_finds_more_candidates_without_exclusion(self, overlapping_points):
        tree = CountingTree(overlapping_points)
        betas = find_beta_clusters_soft(tree, alpha=1e-10, max_beta_clusters=32)
        assert len(betas) >= 2

    def test_budget_is_respected(self, overlapping_points):
        tree = CountingTree(overlapping_points)
        betas = find_beta_clusters_soft(tree, alpha=1e-10, max_beta_clusters=3)
        assert len(betas) <= 3


class TestMergeSoft:
    def test_identical_boxes_merge(self):
        a = _beta([0.2, 0.0], [0.5, 1.0], [True, False])
        b = _beta([0.2, 0.0], [0.5, 1.0], [True, False])
        assert merge_soft([a, b]) == [[0, 1]]

    def test_barely_touching_boxes_stay_apart(self):
        a = _beta([0.2, 0.0], [0.5, 1.0], [True, False])
        b = _beta([0.48, 0.0], [0.8, 1.0], [True, False])
        assert merge_soft([a, b], jaccard_threshold=0.5) == [[0], [1]]

    def test_disjoint_axes_never_merge(self):
        a = _beta([0.2, 0.0], [0.5, 1.0], [True, False])
        b = _beta([0.0, 0.2], [1.0, 0.5], [False, True])
        assert merge_soft([a, b]) == [[0], [1]]


class TestSoftMrCC:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="membership_threshold"):
            SoftMrCC(membership_threshold=1.0)

    def test_membership_matrix_shape_and_range(self, overlapping_points):
        model = SoftMrCC(normalize=False)
        result = model.fit(overlapping_points)
        membership = model.membership_
        assert membership.shape[0] == overlapping_points.shape[0]
        assert membership.shape[1] >= result.n_clusters
        assert np.all(membership >= 0.0)
        assert np.all(membership <= 1.0)

    def test_recovers_overlapping_clusters(self, overlapping_points):
        from repro.types import SubspaceCluster

        model = SoftMrCC(normalize=False)
        result = model.fit(overlapping_points)
        truth = [
            SubspaceCluster.from_iterables(range(600), [0, 1, 4]),
            SubspaceCluster.from_iterables(range(600, 1200), [0, 1, 4]),
        ]
        assert result.n_clusters >= 2
        assert quality(result.clusters, truth) > 0.7

    def test_membership_is_graded_not_binary(self, overlapping_points):
        """Degrees form a continuum: members near the centre score close
        to 1, boundary members in between, far points near 0 — unlike
        the hard variant's {0, 1} labels."""
        model = SoftMrCC(normalize=False)
        result = model.fit(overlapping_points)
        membership = model.membership_
        assert membership.size
        graded = (membership > 0.05) & (membership < 0.95)
        assert np.count_nonzero(graded) > 10
        # Hard members of a cluster score higher in it than non-members.
        for k in range(result.n_clusters):
            members = result.labels == k
            if np.any(members) and np.any(~members):
                assert (
                    membership[members, k].mean()
                    > membership[~members, k].mean()
                )

    def test_noise_points_have_weak_membership(self, overlapping_points):
        model = SoftMrCC(normalize=False)
        result = model.fit(overlapping_points)
        noise = result.labels == NOISE_LABEL
        if np.any(noise) and model.membership_.shape[1]:
            assert (
                model.membership_[noise].max(axis=1).mean()
                < model.membership_[~noise].max(axis=1).mean()
            )

    def test_hard_view_consistent(self, overlapping_points):
        result = SoftMrCC(normalize=False).fit(overlapping_points)
        for k, cluster in enumerate(result.clusters):
            assert cluster.indices == frozenset(
                np.flatnonzero(result.labels == k).tolist()
            )
