"""Tests for the >30-axis front-end: PCA, FDR and the pipeline."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.preprocessing import PCA, FractalDimensionReducer, HighDimPipeline
from repro.preprocessing.fdr import correlation_dimension


class TestPCA:
    def test_recovers_low_rank_structure(self):
        rng = np.random.default_rng(0)
        latent = rng.normal(size=(500, 2))
        mixing = rng.normal(size=(2, 6))
        points = latent @ mixing + 0.01 * rng.normal(size=(500, 6))
        pca = PCA(n_components=0.99).fit(points)
        assert pca.n_components_ <= 3
        assert pca.explained_variance_ratio_.sum() >= 0.99

    def test_components_are_orthonormal(self):
        rng = np.random.default_rng(1)
        pca = PCA(n_components=3).fit(rng.normal(size=(200, 5)))
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-10)

    def test_transform_then_inverse_approximates_input(self):
        rng = np.random.default_rng(2)
        latent = rng.normal(size=(300, 2))
        points = latent @ rng.normal(size=(2, 5))
        pca = PCA(n_components=2).fit(points)
        recovered = pca.inverse_transform(pca.transform(points))
        assert np.allclose(recovered, points, atol=1e-8)

    def test_rejects_bad_parameters_and_order(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA(n_components=1.5)
        with pytest.raises(RuntimeError):
            PCA(n_components=2).transform(np.zeros((3, 3)))


class TestCorrelationDimension:
    def test_uniform_square_has_dimension_two(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(8000, 2))
        d2 = correlation_dimension(points)
        assert 1.6 < d2 < 2.3

    def test_line_embedded_in_plane_has_dimension_one(self):
        rng = np.random.default_rng(4)
        t = rng.uniform(0, 1, size=8000)
        points = np.column_stack([t, np.clip(t, 0, np.nextafter(1.0, 0))])
        d2 = correlation_dimension(points)
        assert 0.7 < d2 < 1.3

    def test_redundant_axis_does_not_raise_dimension(self):
        rng = np.random.default_rng(5)
        base = rng.uniform(0, 1, size=(5000, 2))
        redundant = np.column_stack([base, base[:, 0]])
        assert correlation_dimension(redundant) < correlation_dimension(base) + 0.3


class TestFractalDimensionReducer:
    def test_drops_redundant_copies_first(self):
        rng = np.random.default_rng(6)
        informative = rng.uniform(0, 1, size=(3000, 3))
        copies = informative[:, [0, 1]] + 0.003 * rng.normal(size=(3000, 2))
        points = np.clip(
            np.hstack([informative, copies]), 0, np.nextafter(1.0, 0)
        )
        reducer = FractalDimensionReducer(n_features=3, sample_size=2000)
        reducer.fit(points)
        # The three kept axes must reconstruct the informative content:
        # at least two of the three originals (one original may be
        # swapped for its near-copy, which carries the same signal).
        assert len(reducer.selected_) == 3
        kept = set(reducer.selected_)
        equivalent = [{0, 3}, {1, 4}, {2}]
        assert all(kept & group for group in equivalent)

    def test_stops_when_information_would_be_lost(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 1, size=(2000, 4))  # all axes independent
        reducer = FractalDimensionReducer(
            n_features=1, max_dimension_loss=0.3, sample_size=1500
        )
        reducer.fit(points)
        # Independent axes all carry information: elimination must halt
        # well before reaching 1 attribute.
        assert len(reducer.selected_) > 1

    def test_transform_selects_columns(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0, 1, size=(500, 5))
        reducer = FractalDimensionReducer(n_features=4, sample_size=500)
        out = reducer.fit_transform(points)
        assert out.shape == (500, len(reducer.selected_))


class TestHighDimPipeline:
    def test_narrow_data_bypasses_reduction(self, easy_dataset):
        pipeline = HighDimPipeline(max_axes=30)
        result = pipeline.fit(easy_dataset.points)
        assert pipeline.reduced_ is False
        assert result.extras["reducer"] is None
        assert result.n_clusters >= 1

    def test_wide_data_is_reduced_then_clustered(self):
        """Plant clusters in 10 informative axes, pad with 25 redundant
        ones; the pipeline must reduce below the threshold and still
        find structure."""
        dataset = generate_dataset(
            SyntheticDatasetSpec(
                dimensionality=10,
                n_points=3000,
                n_clusters=3,
                noise_fraction=0.1,
                max_irrelevant=2,
                seed=17,
            )
        )
        rng = np.random.default_rng(17)
        mixing = rng.normal(size=(10, 25))
        padded = np.hstack([dataset.points, dataset.points @ mixing])
        pipeline = HighDimPipeline(max_axes=10, reducer="pca")
        result = pipeline.fit(padded)
        assert pipeline.reduced_ is True
        assert result.extras["reducer"] == "pca"
        # Structure survives the projection: clusters are found and the
        # clustered points cover most of the true cluster mass (close
        # clusters may merge in the projected space).
        assert result.n_clusters >= 1
        clustered = result.labels >= 0
        true_clustered = dataset.labels >= 0
        assert clustered[true_clustered].mean() > 0.6

    def test_fdr_reports_original_attribute_ids(self):
        rng = np.random.default_rng(9)
        cluster = rng.uniform(0, 1, size=(1500, 6))
        cluster[:600, 1] = rng.normal(0.4, 0.01, 600)
        cluster[:600, 3] = rng.normal(0.6, 0.01, 600)
        redundant = cluster[:, [0, 2]] * 0.5 + 0.25
        points = np.clip(
            np.hstack([cluster, redundant]), 0, np.nextafter(1.0, 0)
        )
        pipeline = HighDimPipeline(max_axes=6, reducer="fdr")
        result = pipeline.fit(points)
        for cluster_found in result.clusters:
            assert all(0 <= a < 8 for a in cluster_found.relevant_axes)

    def test_rejects_unknown_reducer(self):
        with pytest.raises(ValueError, match="reducer"):
            HighDimPipeline(reducer="umap")
