"""Cross-backend equivalence tests for the hot-path kernel layer.

The compiled backends (numba when installed, the C extension whenever a
system compiler exists) must be *bit-identical* to the numpy reference
backend — not merely close.  This suite drives that contract three
ways: hypothesis-generated level views exercise each kernel against the
oracle, a planted pipeline asserts identical β-clusters and labels end
to end, and a traced fit asserts the obs counter stream is invariant
under ``REPRO_BACKEND``.  The interpreted loop bodies
(:mod:`repro.core.kernels.loops`) are tested as a pseudo-backend of
their own, so the compiled semantics stay covered on machines where no
compiled backend loads.
"""

import types

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro import obs
from repro.core import kernels
from repro.core.kernels import cext_backend, numba_backend
from repro.core.beta_cluster import find_beta_clusters
from repro.core.counting_tree import CountingTree, void_keys
from repro.core.hypothesis_test import critical_values
from repro.core.kernels import LevelSoA, loops, reference
from repro.core.mrcc import MrCC
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset

AVAILABLE = kernels.available_backends()
COMPILED = tuple(
    name for name in AVAILABLE if kernels.get_backend(name).compiled
)


class _LoopsAdapter:
    """The interpreted loop bodies, wrapped with the backend signature."""

    name = "loops"

    @staticmethod
    def level_responses(soa):
        return loops.level_responses(soa.coords, soa.counts, soa.limit)

    @staticmethod
    def box_scan(soa, lo, hi, start, stop):
        return loops.box_scan(soa.coords, lo, hi, start, stop)

    @staticmethod
    def six_region(soa, position, bits):
        return loops.six_region(
            soa.coords, soa.counts, soa.half_counts, position, bits, soa.limit
        )

    @staticmethod
    def binom_thetas(totals, probs, alpha):
        return loops.binom_thetas(totals, probs, alpha)


IMPL_NAMES = ["loops"] + [name for name in AVAILABLE if name != "numpy"]


def implementation(name):
    return _LoopsAdapter if name == "loops" else kernels.get_backend(name)


@st.composite
def level_views(draw):
    """A random key-sorted :class:`LevelSoA` (unique cells, valid halves)."""
    seed = draw(st.integers(0, 10_000))
    d = draw(st.integers(1, 6))
    h = draw(st.integers(1, 5))
    m = draw(st.integers(1, 60))
    rng = np.random.default_rng(seed)
    limit = (1 << h) - 1
    # np.unique(axis=0) sorts rows lexicographically, which coincides
    # with the big-endian void-key order the kernels require.
    coords = np.unique(
        rng.integers(0, limit + 1, size=(m, d), dtype=np.int64), axis=0
    )
    counts = rng.integers(1, 50, size=coords.shape[0]).astype(np.int64)
    half_counts = rng.integers(
        0, counts[:, None] + 1, size=(coords.shape[0], d)
    ).astype(np.int64)
    return LevelSoA(
        h=h,
        coords=coords,
        counts=counts,
        half_counts=half_counts,
        order=None,
        keys=void_keys(coords),
    )


class TestBackendSelection:
    def test_numpy_always_loads(self):
        backend = kernels.get_backend("numpy")
        assert backend.name == "numpy"
        assert backend.compiled is False
        assert backend.version == str(np.__version__)

    def test_unknown_backend_is_a_named_error(self):
        with pytest.raises(kernels.BackendUnavailableError, match="fortran"):
            kernels.get_backend("fortran")

    def test_numpy_is_always_available(self):
        assert "numpy" in AVAILABLE

    def test_env_pin_selects_exactly_that_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert kernels.active_backend().name == "numpy"

    def test_flipping_env_reresolves_mid_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert kernels.active_backend().name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert kernels.active_backend().name == AVAILABLE[0]

    def test_auto_prefers_a_compiled_backend_when_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        backend = kernels.active_backend()
        assert backend.name == AVAILABLE[0]
        if COMPILED:
            assert backend.compiled

    def test_unavailable_named_backend_carries_the_probe_reason(self):
        missing = [
            name for name in ("numba", "cext") if name not in AVAILABLE
        ]
        if not missing:
            pytest.skip("every optional backend loads on this machine")
        with pytest.raises(
            kernels.BackendUnavailableError, match=missing[0]
        ):
            kernels.get_backend(missing[0])

    def test_backend_info_reports_the_active_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        info = kernels.backend_info()
        assert info["requested"] == "numpy"
        assert info["name"] == "numpy"
        assert info["compiled"] is False
        assert set(info["available"]) == set(AVAILABLE)

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_warm_up_exercises_every_kernel(self, name):
        kernels.warm_up(kernels.get_backend(name))

    def test_reset_forgets_probes_and_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        before = kernels.active_backend()
        kernels.reset_backends()
        after = kernels.active_backend()
        assert after.name == before.name
        assert after is not before


class TestCextFailurePaths:
    """Every way the C build can fail must degrade with a named reason."""

    @pytest.fixture(autouse=True)
    def _fresh_caches(self, monkeypatch):
        monkeypatch.setattr(cext_backend, "_LOADED", None)
        monkeypatch.setattr(cext_backend, "_UNAVAILABLE_REASON", None)
        kernels.reset_backends()
        yield
        kernels.reset_backends()

    def test_missing_compiler_reason_is_captured(self, monkeypatch):
        monkeypatch.setattr(cext_backend.shutil, "which", lambda name: None)
        with pytest.raises(ImportError, match="no C compiler"):
            cext_backend.load()
        # The failure is memoized: the retry re-raises without re-probing.
        with pytest.raises(ImportError, match="no C compiler"):
            cext_backend.load()
        with pytest.raises(
            kernels.BackendUnavailableError, match="no C compiler"
        ):
            kernels.get_backend("cext")

    def test_compile_error_reason_is_captured(self, monkeypatch):
        if cext_backend._compiler() is None:
            pytest.skip("no C compiler on PATH")
        monkeypatch.setattr(
            cext_backend, "_C_SOURCE", "int broken(void { return 0; }\n"
        )
        with pytest.raises(ImportError, match="C kernel build failed"):
            cext_backend.load()
        assert "CalledProcessError" in cext_backend._UNAVAILABLE_REASON

    def test_unlinkable_shared_object_is_captured(self, monkeypatch):
        if cext_backend._compiler() is None:
            pytest.skip("no C compiler on PATH")

        def refuse(path):
            raise OSError("not a linkable shared object")

        monkeypatch.setattr(cext_backend.ctypes, "CDLL", refuse)
        with pytest.raises(ImportError, match="OSError"):
            cext_backend.load()
        with pytest.raises(kernels.BackendUnavailableError, match="OSError"):
            kernels.get_backend("cext")

    def test_auto_degrades_to_numpy_when_compiled_backends_fail(
        self, monkeypatch
    ):
        monkeypatch.setattr(cext_backend.shutil, "which", lambda name: None)

        def no_numba():
            raise ImportError("numba disabled for this test")

        monkeypatch.setattr(numba_backend, "load", no_numba)
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        backend = kernels.active_backend()
        assert backend.name == "numpy"
        assert kernels.backend_info()["available"] == ["numpy"]


class TestSanitizedBuild:
    """The REPRO_CEXT_SANITIZE knob and the hardened default flags."""

    def test_default_flags_are_hardened(self):
        flags = cext_backend._cflags(sanitize=False)
        for flag in ("-Wall", "-Wextra", "-Werror"):
            assert flag in flags
        assert not any(flag.startswith("-fsanitize") for flag in flags)

    def test_sanitize_adds_asan_ubsan(self):
        flags = cext_backend._cflags(sanitize=True)
        assert "-fsanitize=address,undefined" in flags
        assert "-fno-omit-frame-pointer" in flags

    def test_sanitize_changes_the_content_address(self):
        compiler = cext_backend._compiler()
        if compiler is None:
            pytest.skip("no C compiler on PATH")
        plain = cext_backend._shared_object(compiler, sanitize=False)
        hardened = cext_backend._shared_object(compiler, sanitize=True)
        assert plain != hardened
        assert plain.exists() and hardened.exists()

    def test_compiler_identity_feeds_the_hash(self, monkeypatch):
        compiler = cext_backend._compiler()
        if compiler is None:
            pytest.skip("no C compiler on PATH")
        assert cext_backend._compiler_identity(compiler)
        baseline = cext_backend._shared_object(compiler, sanitize=False)
        # A toolchain swap (same path, new banner) must miss the cache.
        monkeypatch.setattr(
            cext_backend, "_compiler_identity", lambda c: "other-cc 99.9"
        )
        assert (
            cext_backend._shared_object(compiler, sanitize=False) != baseline
        )

    def test_version_reports_the_sanitized_build(self, monkeypatch):
        if "cext" not in AVAILABLE:
            pytest.skip("cext backend does not load on this machine")

        # Never dlopen here: loading an ASan .so into an unsanitized
        # interpreter aborts the process unless libasan is LD_PRELOADed.
        class _StubLib:
            def __getattr__(self, name):
                fn = types.SimpleNamespace(argtypes=None, restype=None)
                setattr(self, name, fn)
                return fn

        monkeypatch.setattr(
            cext_backend.ctypes, "CDLL", lambda path: _StubLib()
        )
        monkeypatch.setattr(cext_backend, "_UNAVAILABLE_REASON", None)
        monkeypatch.setattr(cext_backend, "_LOADED", None)
        monkeypatch.delenv("REPRO_CEXT_SANITIZE", raising=False)
        assert "+asan" not in cext_backend.load()["version"]
        monkeypatch.setattr(cext_backend, "_LOADED", None)
        monkeypatch.setenv("REPRO_CEXT_SANITIZE", "1")
        assert "+asan" in cext_backend.load()["version"]


@pytest.mark.parametrize("name", IMPL_NAMES)
class TestKernelEquivalence:
    """Each kernel, every implementation, against the numpy oracle."""

    @given(soa=level_views())
    @settings(max_examples=40, deadline=None)
    def test_level_responses_bit_identical(self, name, soa):
        impl = implementation(name)
        np.testing.assert_array_equal(
            impl.level_responses(soa), reference.level_responses(soa)
        )

    @given(soa=level_views(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_box_scan_bit_identical(self, name, soa, data):
        impl = implementation(name)
        d, m = soa.coords.shape[1], soa.n_cells
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        lo = rng.integers(0, soa.limit + 1, size=d).astype(np.int64)
        hi = np.minimum(
            lo + rng.integers(0, soa.limit + 1, size=d), soa.limit
        ).astype(np.int64)
        start = int(rng.integers(0, m + 1))
        stop = int(rng.integers(start, m + 1))
        np.testing.assert_array_equal(
            impl.box_scan(soa, lo, hi, start, stop),
            reference.box_scan(soa, lo, hi, start, stop),
        )

    @given(soa=level_views(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_six_region_bit_identical(self, name, soa, data):
        impl = implementation(name)
        d = soa.coords.shape[1]
        position = data.draw(st.integers(0, soa.n_cells - 1))
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        bits = rng.integers(0, 2, size=d).astype(np.int64)
        center, total = impl.six_region(soa, position, bits)
        ref_center, ref_total = reference.six_region(soa, position, bits)
        np.testing.assert_array_equal(center, ref_center)
        np.testing.assert_array_equal(total, ref_total)

    @given(
        seed=st.integers(0, 10_000),
        d=st.integers(1, 8),
        alpha=st.sampled_from([1e-10, 1e-6, 1e-3, 0.05, 0.2]),
    )
    @settings(max_examples=40, deadline=None)
    def test_binom_thetas_match_after_adjudication(self, name, seed, d, alpha):
        impl = implementation(name)
        rng = np.random.default_rng(seed)
        totals = rng.integers(0, 5_000, size=d).astype(np.int64)
        probs = rng.choice(
            np.array([1.0 / 6.0, 1.0 / 4.0, 0.1, 0.37]), size=d
        ).astype(np.float64)
        thetas, flags = impl.binom_thetas(totals, probs, alpha)
        # Apply the caller-side contract: borderline axes go back to the
        # scipy oracle, after which the result must be bit-identical.
        borderline = np.flatnonzero(flags)
        if borderline.size:
            thetas = thetas.copy()
            thetas[borderline] = critical_values(
                totals[borderline], alpha, probability=probs[borderline]
            )
        expected, _ = reference.binom_thetas(totals, probs, alpha)
        np.testing.assert_array_equal(thetas, expected)


class TestBinomialTail:
    @given(
        n=st.integers(1, 20_000),
        t=st.integers(-2, 20_000),
        p=st.sampled_from([1.0 / 6.0, 1.0 / 4.0, 0.05, 0.37, 0.5]),
    )
    @settings(max_examples=100, deadline=None)
    def test_loop_tail_is_well_inside_the_guard_band(self, n, t, p):
        # The bit-identity argument needs the kernel tail sum at least
        # an order of magnitude more accurate than SF_GUARD_BAND, so a
        # decision the kernel keeps cannot disagree with scipy.
        ours = loops.binom_sf(n, p, t)
        scipy_sf = float(stats.binom.sf(t, n, p))
        assert ours == pytest.approx(
            scipy_sf, rel=loops.SF_GUARD_BAND / 10.0, abs=1e-300
        )

    def test_boundaries_are_exact(self):
        assert loops.binom_sf(10, 0.3, -1) == 1.0
        assert loops.binom_sf(10, 0.3, 10) == 0.0

    def test_guard_band_keeps_clear_decisions(self):
        # A tail sum far from alpha must never be flagged: the kernels
        # only defer to scipy near the cut.
        totals = np.array([600], dtype=np.int64)
        probs = np.array([1.0 / 6.0], dtype=np.float64)
        _, flags = loops.binom_thetas(totals, probs, 1e-10)
        assert flags[0] == 0


@pytest.mark.parametrize("name", COMPILED or [None])
class TestCrossBackendPipeline:
    """End-to-end bit-identity: compiled backend versus numpy oracle."""

    @pytest.fixture(autouse=True)
    def _require_compiled(self, name):
        if name is None:
            pytest.skip("no compiled backend loads on this machine")

    @pytest.fixture()
    def dataset(self):
        return generate_dataset(
            SyntheticDatasetSpec(
                dimensionality=8,
                n_points=2_000,
                n_clusters=3,
                noise_fraction=0.15,
                seed=29,
            )
        )

    def test_beta_clusters_identical(self, name, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        oracle = find_beta_clusters(CountingTree(dataset.points), alpha=1e-10)
        monkeypatch.setenv("REPRO_BACKEND", name)
        betas = find_beta_clusters(CountingTree(dataset.points), alpha=1e-10)
        assert len(betas) == len(oracle)
        for ours, expected in zip(betas, oracle):
            np.testing.assert_array_equal(ours.lower, expected.lower)
            np.testing.assert_array_equal(ours.upper, expected.upper)
            np.testing.assert_array_equal(ours.relevant, expected.relevant)

    def test_labels_bit_identical(self, name, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        oracle = MrCC(normalize=False).fit(dataset.points)
        monkeypatch.setenv("REPRO_BACKEND", name)
        result = MrCC(normalize=False).fit(dataset.points)
        assert result.n_clusters == oracle.n_clusters
        np.testing.assert_array_equal(result.labels, oracle.labels)

    def test_trace_counters_invariant_under_backend(
        self, name, dataset, monkeypatch
    ):
        def traced_counters(backend):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            with obs.capture() as tracer:
                MrCC(normalize=False).fit(dataset.points)
                return dict(tracer.counters)

        assert traced_counters(name) == traced_counters("numpy")
