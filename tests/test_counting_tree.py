"""Tests for the Counting-tree (Algorithm 1, Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.contracts import ContractError
from repro.core.counting_tree import CountingTree, void_keys


def _tree(points, H=4):
    return CountingTree(np.asarray(points, dtype=np.float64), n_resolutions=H)


class TestConstruction:
    def test_rejects_points_outside_unit_cube(self):
        with pytest.raises(ValueError, match="normalise"):
            _tree([[0.5, 1.5]])

    def test_rejects_too_few_resolutions(self):
        with pytest.raises(ValueError, match=">= 3"):
            _tree([[0.5, 0.5]], H=2)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="zero points"):
            _tree(np.zeros((0, 3)))

    def test_levels_one_to_h_minus_one(self):
        tree = _tree([[0.1, 0.9]], H=5)
        assert list(tree.levels) == [1, 2, 3, 4]
        with pytest.raises(KeyError):
            tree.level(5)


class TestCounts:
    def test_every_level_counts_every_point(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(500, 4))
        tree = _tree(points)
        for h in tree.levels:
            assert int(tree.level(h).n.sum()) == 500

    def test_single_point_path(self):
        tree = _tree([[0.3, 0.8]])
        for h in tree.levels:
            level = tree.level(h)
            assert level.n_cells == 1
            expected = np.floor(np.array([0.3, 0.8]) * (1 << h)).astype(int)
            assert np.array_equal(level.coords[0], expected)

    def test_known_grid_placement(self):
        # Four points in distinct level-1 quadrants of the unit square.
        points = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]]
        level1 = _tree(points).level(1)
        assert level1.n_cells == 4
        assert np.all(level1.n == 1)

    def test_parent_child_count_consistency(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(400, 3))
        tree = _tree(points)
        for h in range(2, tree.n_resolutions - 1 + 1):
            if h not in tree.levels:
                continue
            child = tree.level(h)
            parent = tree.level(h - 1)
            per_parent = {}
            for row in range(child.n_cells):
                key = tuple((child.coords[row] >> 1).tolist())
                per_parent[key] = per_parent.get(key, 0) + int(child.n[row])
            for key, total in per_parent.items():
                parent_row = parent.row_of(np.asarray(key))
                assert parent_row >= 0
                assert int(parent.n[parent_row]) == total


class TestHalfSpaceCounts:
    def test_half_counts_sum_to_cell_count_in_each_axis(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(300, 3))
        tree = _tree(points)
        for h in tree.levels:
            level = tree.level(h)
            assert np.all(level.half_counts >= 0)
            assert np.all(level.half_counts <= level.n[:, None])

    def test_half_count_matches_direct_computation(self):
        points = np.array(
            [[0.10, 0.6], [0.20, 0.6], [0.30, 0.6], [0.45, 0.6]]
        )
        tree = _tree(points, H=3)
        level1 = tree.level(1)
        # All four points are in level-1 cell (0, 1).
        row = level1.row_of(np.array([0, 1]))
        # Along axis 0, the cell [0, 0.5) splits at 0.25: two points
        # (0.10, 0.20) in the lower half.
        assert level1.half_counts[row, 0] == 2
        # Along axis 1, the cell [0.5, 1.0) splits at 0.75: all four
        # points in the lower half.
        assert level1.half_counts[row, 1] == 4


class TestNeighborsAndBounds:
    def test_face_neighbors_found_and_missing(self):
        points = np.array([[0.1, 0.1], [0.4, 0.1]])  # adjacent level-2 cells? no:
        # level-2 cells: floor(x*4): (0,0) and (1,0) — adjacent along axis 0.
        tree = _tree(points, H=3)
        level2 = tree.level(2)
        row = level2.row_of(np.array([0, 0]))
        lower, upper = level2.neighbor_rows(row, 0)
        assert lower == -1  # grid border
        assert upper == level2.row_of(np.array([1, 0]))
        lower, upper = level2.neighbor_rows(row, 1)
        assert lower == -1
        assert upper == -1  # empty space

    def test_bounds(self):
        tree = _tree([[0.3, 0.8]])
        level2 = tree.level(2)
        lower, upper = level2.bounds(0)
        assert lower == pytest.approx([0.25, 0.75])
        assert upper == pytest.approx([0.5, 1.0])

    def test_loc_bits_match_relative_position(self):
        tree = _tree([[0.3, 0.8]])
        # Level-2 cell (1, 3): inside its level-1 parent (0, 1) it sits
        # in the upper half of both axes.
        bits = tree.loc_bits(2, 0)
        assert bits.tolist() == [1, 1]

    def test_parent_row_round_trip(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 1, size=(100, 2))
        tree = _tree(points)
        level2 = tree.level(2)
        for row in range(level2.n_cells):
            parent = tree.parent_row(2, row)
            assert np.array_equal(
                tree.level(1).coords[parent], level2.coords[row] >> 1
            )


class TestVoidKeys:
    def test_orders_lexicographically(self):
        coords = np.array([[0, 5], [1, 0], [0, 2]])
        keys = void_keys(coords)
        order = np.argsort(keys)
        assert order.tolist() == [2, 0, 1]

    def test_rows_of_vectorised_lookup(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 1, size=(200, 3))
        tree = _tree(points)
        level = tree.level(2)
        rows = level.rows_of(level.coords)
        assert np.array_equal(rows, np.arange(level.n_cells))
        missing = level.rows_of(np.full((1, 3), 3, dtype=np.int64) + 10)
        assert missing[0] == -1


class TestUint32KeyGuard:
    """The `>u4` key packing must reject coordinates it cannot hold."""

    U4_MAX = 2**32 - 1

    def test_boundary_coordinate_is_accepted(self):
        coords = np.array([[self.U4_MAX, 0], [0, self.U4_MAX]], dtype=np.int64)
        keys = void_keys(coords)
        assert keys.shape == (2,)
        assert keys[0] != keys[1]

    def test_coordinate_past_uint32_raises_contract_error(self):
        coords = np.array([[self.U4_MAX + 1, 0]], dtype=np.int64)
        with pytest.raises(ContractError, match="uint32"):
            void_keys(coords)

    def test_negative_coordinate_raises_contract_error(self):
        with pytest.raises(ContractError, match="uint32"):
            void_keys(np.array([[-1, 0]], dtype=np.int64))

    def test_boundary_values_do_not_alias(self):
        # Without the guard, 2**32 would wrap to the same key as 0.
        wrapped = np.array([[2**32, 0]], dtype=np.int64)
        with pytest.raises(ContractError):
            void_keys(wrapped)
        zero_key = void_keys(np.array([[0, 0]], dtype=np.int64))
        max_key = void_keys(np.array([[self.U4_MAX, 0]], dtype=np.int64))
        assert zero_key[0] != max_key[0]

    def test_tree_rejects_high_resolutions(self):
        with pytest.raises(ContractError, match="n_resolutions"):
            _tree([[0.5, 0.5]], H=33)

    def test_tree_disabled_contracts_still_guard_keys(self):
        # The guard is a correctness invariant, not a data-scan option.
        from repro.core import contracts

        with contracts.disabled():
            with pytest.raises(ContractError):
                void_keys(np.array([[2**32, 0]], dtype=np.int64))

    def test_streaming_build_rejects_high_resolutions(self):
        from repro.core.streaming import build_tree_from_chunks

        chunks = [np.array([[0.25, 0.75]], dtype=np.float64)]
        with pytest.raises(ContractError, match="n_resolutions"):
            build_tree_from_chunks(chunks, n_resolutions=33)


class TestComplexityProxies:
    def test_cells_bounded_by_points_per_level(self):
        rng = np.random.default_rng(6)
        points = rng.uniform(0, 1, size=(250, 8))
        tree = _tree(points, H=5)
        for h in tree.levels:
            assert tree.level(h).n_cells <= 250

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 120), st.integers(1, 5)),
            elements=st.floats(0.0, 0.999, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_for_random_data(self, points):
        tree = _tree(points)
        n = points.shape[0]
        for h in tree.levels:
            level = tree.level(h)
            assert int(level.n.sum()) == n
            assert np.all(level.half_counts <= level.n[:, None])
            assert np.all(level.coords >= 0)
            assert np.all(level.coords < (1 << h))
