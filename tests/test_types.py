"""Unit tests for the shared value types."""

import numpy as np
import pytest

from repro.types import NOISE_LABEL, ClusteringResult, Dataset, SubspaceCluster


class TestSubspaceCluster:
    def test_from_iterables_normalises_to_frozensets(self):
        cluster = SubspaceCluster.from_iterables([3, 1, 1], (np.int64(2), 0))
        assert cluster.indices == frozenset({1, 3})
        assert cluster.relevant_axes == frozenset({0, 2})

    def test_size_and_dimensionality(self):
        cluster = SubspaceCluster.from_iterables(range(10), [0, 4])
        assert cluster.size == 10
        assert cluster.dimensionality == 2

    def test_is_hashable_and_equal_by_value(self):
        a = SubspaceCluster.from_iterables([1, 2], [0])
        b = SubspaceCluster.from_iterables([2, 1], [0])
        assert a == b
        assert len({a, b}) == 1


class TestClusteringResult:
    def test_from_labels_builds_clusters_in_label_order(self):
        labels = [0, 1, 0, NOISE_LABEL, 1]
        result = ClusteringResult.from_labels(labels, [[0, 1], [2]])
        assert result.n_clusters == 2
        assert result.clusters[0].indices == frozenset({0, 2})
        assert result.clusters[1].indices == frozenset({1, 4})
        assert result.clusters[1].relevant_axes == frozenset({2})

    def test_n_noise_counts_noise_labels(self):
        result = ClusteringResult.from_labels([0, NOISE_LABEL, NOISE_LABEL], [[0]])
        assert result.n_noise == 2

    def test_empty_clusters_allowed(self):
        result = ClusteringResult.from_labels([NOISE_LABEL, NOISE_LABEL], [])
        assert result.n_clusters == 0
        assert result.n_noise == 2


class TestDataset:
    def _dataset(self):
        points = np.array([[0.1, 0.2], [0.3, 0.4], [0.9, 0.9]])
        labels = np.array([0, 0, NOISE_LABEL])
        clusters = [SubspaceCluster.from_iterables([0, 1], [1])]
        return Dataset(points=points, labels=labels, clusters=clusters, name="t")

    def test_properties(self):
        ds = self._dataset()
        assert ds.n_points == 3
        assert ds.dimensionality == 2
        assert ds.n_clusters == 1
        assert ds.noise_fraction == pytest.approx(1 / 3)

    def test_validate_accepts_consistent_dataset(self):
        self._dataset().validate()

    def test_validate_rejects_label_cluster_mismatch(self):
        ds = self._dataset()
        ds.clusters = [SubspaceCluster.from_iterables([0], [1])]
        with pytest.raises(ValueError, match="disagree"):
            ds.validate()

    def test_validate_rejects_points_outside_unit_cube(self):
        ds = self._dataset()
        ds.points = ds.points + 1.0
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            ds.validate()

    def test_validate_rejects_out_of_range_axis(self):
        ds = self._dataset()
        ds.clusters = [SubspaceCluster.from_iterables([0, 1], [5])]
        with pytest.raises(ValueError, match="out-of-range"):
            ds.validate()
