"""Tests for the runtime array contracts (repro.core.contracts).

The contracts guard the public trust boundary of the core: every
violation must raise :class:`ContractError` (a ``ValueError``) whose
message names the offending argument, so failures deep in a pipeline
still point at the call site.
"""

import numpy as np
import pytest

from repro.core import MrCC
from repro.core.contracts import (
    ContractError,
    check_array,
    check_labels,
    check_level,
    check_probability,
    disabled,
    enabled,
    set_enabled,
)
from repro.core.counting_tree import CountingTree
from repro.types import NOISE_LABEL


def unit_points(n=50, d=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, d)) * 0.999


class TestCheckArray:
    def test_accepts_and_returns_valid_array(self):
        a = unit_points()
        out = check_array("points", a, dtype=np.float64, ndim=2, unit_box=True)
        assert out is a

    def test_non_array_names_argument(self):
        with pytest.raises(ContractError, match="points"):
            check_array("points", [[0.1, 0.2]])

    def test_wrong_dtype_names_argument(self):
        bad = unit_points().astype(np.float32)
        with pytest.raises(ContractError, match="points.*float64"):
            check_array("points", bad, dtype=np.float64)

    def test_wrong_ndim_names_argument(self):
        with pytest.raises(ContractError, match="points.*2-d"):
            check_array("points", np.zeros(5, dtype=np.float64), ndim=2)

    def test_out_of_unit_box_names_argument(self):
        bad = unit_points()
        bad[3, 1] = 1.5
        with pytest.raises(ContractError, match="points.*normalise"):
            check_array("points", bad, unit_box=True)

    def test_negative_values_rejected_by_unit_box(self):
        bad = unit_points()
        bad[0, 0] = -0.01
        with pytest.raises(ContractError, match="points"):
            check_array("points", bad, unit_box=True)

    def test_nan_rejected_by_finite(self):
        bad = unit_points()
        bad[2, 2] = np.nan
        with pytest.raises(ContractError, match="points.*NaN"):
            check_array("points", bad, finite=True)

    def test_nan_rejected_by_unit_box(self):
        # NaN compares false against both bounds; unit_box must still
        # catch it via the implied finiteness scan.
        bad = unit_points()
        bad[2, 2] = np.nan
        with pytest.raises(ContractError, match="points"):
            check_array("points", bad, unit_box=True)

    def test_infinity_rejected_by_finite(self):
        bad = unit_points()
        bad[1, 0] = np.inf
        with pytest.raises(ContractError, match="points"):
            check_array("points", bad, finite=True)

    def test_empty_array_passes_unit_box(self):
        empty = np.empty((0, 3), dtype=np.float64)
        check_array("points", empty, ndim=2, unit_box=True)

    def test_is_a_value_error(self):
        # Existing callers catch ValueError; the contract layer must
        # stay substitutable for the manual checks it replaced.
        with pytest.raises(ValueError):
            check_array("points", "not an array")


class TestCheckLabels:
    def test_accepts_valid_labels(self):
        labels = np.array([NOISE_LABEL, 0, 1, 2], dtype=np.int64)
        assert check_labels("labels", labels) is labels

    def test_rejects_non_array(self):
        with pytest.raises(ContractError, match="labels"):
            check_labels("labels", [0, 1, 2])

    def test_rejects_2d(self):
        with pytest.raises(ContractError, match="labels.*1-d"):
            check_labels("labels", np.zeros((2, 2), dtype=np.int64))

    def test_rejects_float_dtype(self):
        with pytest.raises(ContractError, match="labels.*integer"):
            check_labels("labels", np.zeros(3, dtype=np.float64))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ContractError, match="labels.*5"):
            check_labels("labels", np.zeros(3, dtype=np.int64), n_points=5)

    def test_rejects_ids_below_noise(self):
        bad = np.array([NOISE_LABEL - 1, 0], dtype=np.int64)
        with pytest.raises(ContractError, match="labels.*noise"):
            check_labels("labels", bad)


class TestCheckLevel:
    def test_real_tree_levels_pass(self):
        tree = CountingTree(unit_points(200, 4), n_resolutions=3)
        for h in tree.levels:
            check_level(f"levels[{h}]", tree.level(h))

    def test_column_disagreement_is_reported(self):
        tree = CountingTree(unit_points(200, 4), n_resolutions=3)
        level = tree.level(1)

        class Broken:
            h = level.h
            coords = level.coords
            n = level.n[:-1]  # one count short
            half_counts = level.half_counts
            used = level.used

        with pytest.raises(ContractError, match="disagree"):
            check_level("levels[1]", Broken())


class TestCheckProbability:
    def test_interior_value_passes(self):
        assert check_probability("alpha", 0.01) == 0.01

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.5, 2.0])
    def test_boundary_and_outside_rejected(self, value):
        with pytest.raises(ContractError, match="alpha"):
            check_probability("alpha", value)


class TestToggling:
    def test_default_is_enabled(self):
        assert enabled()

    def test_set_enabled_returns_previous(self):
        previous = set_enabled(False)
        try:
            assert previous is True
            assert not enabled()
        finally:
            set_enabled(previous)

    def test_disabled_context_skips_data_scans(self):
        bad = unit_points()
        bad[0, 0] = np.nan
        with disabled():
            # O(n) scans off: NaN slips through...
            check_array("points", bad, unit_box=True, finite=True)
            # ...but O(1) structural checks stay on.
            with pytest.raises(ContractError):
                check_array("points", bad, ndim=3)
        assert enabled()
        with pytest.raises(ContractError):
            check_array("points", bad, finite=True)

    def test_disabled_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with disabled():
                raise RuntimeError("boom")
        assert enabled()


class TestIntegration:
    """Contracts wired into the public entry points."""

    def test_mrcc_fit_rejects_nan_naming_points(self):
        bad = unit_points(100, 4)
        bad[7, 2] = np.nan
        with pytest.raises(ContractError, match="points"):
            MrCC().fit(bad)

    def test_mrcc_fit_rejects_wrong_ndim(self):
        with pytest.raises(ContractError, match="points.*2-d"):
            MrCC().fit(np.zeros(10, dtype=np.float64))

    def test_counting_tree_rejects_out_of_box(self):
        bad = unit_points(100, 3)
        bad[0, 0] = 2.0
        with pytest.raises(ContractError, match="points"):
            CountingTree(bad, n_resolutions=3)

    def test_fitted_labels_satisfy_label_contract(self):
        model = MrCC(n_resolutions=3)
        model.fit(unit_points(300, 4))
        check_labels("labels", model.labels_, n_points=300)
