"""Tests for the Section IV-F aggregate summaries."""

import pytest

from repro.experiments.summary import (
    load_rows_json,
    memory_table,
    quality_table,
    save_rows_json,
    speedup_table,
)


def _rows():
    return [
        {"method": "MrCC", "dataset": "6d", "seconds": 1.0, "peak_kb": 100.0,
         "quality": 0.95},
        {"method": "MrCC", "dataset": "8d", "seconds": 2.0, "peak_kb": 200.0,
         "quality": 0.90},
        {"method": "HARP", "dataset": "6d", "seconds": 100.0, "peak_kb": 1000.0,
         "quality": 0.99},
        {"method": "HARP", "dataset": "8d", "seconds": 800.0, "peak_kb": 4000.0,
         "quality": 0.98},
        {"method": "LAC", "dataset": "6d", "seconds": 2.0, "peak_kb": 50.0,
         "quality": 0.80},
        {"method": "LAC", "dataset": "8d", "seconds": 8.0, "peak_kb": 100.0,
         "quality": 0.85},
    ]


class TestSpeedupTable:
    def test_geometric_mean_ratios(self):
        table = speedup_table(_rows())
        assert table["HARP"] == pytest.approx(200.0)  # gm(100, 400)
        assert table["LAC"] == pytest.approx(2.828, rel=1e-3)  # gm(2, 4)

    def test_base_method_excluded(self):
        assert "MrCC" not in speedup_table(_rows())

    def test_missing_base_raises(self):
        with pytest.raises(ValueError, match="base method"):
            speedup_table(_rows(), base_method="NOPE")


class TestMemoryTable:
    def test_ratios(self):
        table = memory_table(_rows())
        assert table["HARP"] == pytest.approx(
            (10.0 * 20.0) ** 0.5
        )
        assert table["LAC"] == pytest.approx(0.5)


class TestQualityTable:
    def test_means(self):
        table = quality_table(_rows())
        assert table["MrCC"] == pytest.approx(0.925)
        assert table["HARP"] == pytest.approx(0.985)


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        rows = _rows()
        rows[0]["params"] = {"alpha": 1e-10}
        path = tmp_path / "rows.json"
        save_rows_json(rows, path)
        loaded = load_rows_json(path)
        assert loaded[0]["params"]["alpha"] == 1e-10
        assert len(loaded) == len(rows)
