"""Contract tests every clustering algorithm in the package must honour.

Parametrised over MrCC and all nine baselines: output invariants
(label compactness, labels/clusters agreement, noise handling) and
reproducibility for a fixed seed.
"""

import numpy as np
import pytest

from repro.baselines import (
    CFPC,
    CLIQUE,
    DOC,
    EPCH,
    HARP,
    LAC,
    P3C,
    PROCLUS,
    StatPCLite,
)
from repro.core.mrcc import MrCC
from repro.types import NOISE_LABEL

K = 3  # the easy fixture's cluster count


def _methods():
    return [
        pytest.param(lambda: MrCC(normalize=False), id="MrCC"),
        pytest.param(lambda: LAC(n_clusters=K, random_state=0), id="LAC"),
        pytest.param(lambda: EPCH(max_no_cluster=K), id="EPCH"),
        pytest.param(lambda: P3C(), id="P3C"),
        pytest.param(lambda: CFPC(n_clusters=K, random_state=0), id="CFPC"),
        pytest.param(
            lambda: HARP(n_clusters=K, max_noise_percent=0.1, max_points=600),
            id="HARP",
        ),
        pytest.param(lambda: PROCLUS(n_clusters=K, avg_dims=3), id="PROCLUS"),
        pytest.param(lambda: CLIQUE(), id="CLIQUE"),
        pytest.param(lambda: DOC(n_clusters=K, random_state=0), id="DOC"),
        pytest.param(lambda: StatPCLite(random_state=0), id="STATPC-lite"),
    ]


@pytest.fixture(scope="module")
def results(easy_dataset):
    """Fit every method once; contract tests share the outputs."""
    out = {}
    for param in _methods():
        factory = param.values[0]
        out[param.id] = (factory, factory().fit(easy_dataset.points))
    return out


@pytest.mark.parametrize("factory", _methods())
class TestContracts:
    def _result(self, results, request):
        return results[request.node.callspec.id]

    def test_labels_shape_and_dtype(self, factory, results, request, easy_dataset):
        _, result = self._result(results, request)
        assert result.labels.shape == (easy_dataset.n_points,)
        assert result.labels.dtype == np.int64

    def test_labels_are_compact(self, factory, results, request):
        _, result = self._result(results, request)
        non_noise = sorted(set(result.labels.tolist()) - {NOISE_LABEL})
        assert non_noise == list(range(result.n_clusters))

    def test_clusters_match_labels(self, factory, results, request):
        _, result = self._result(results, request)
        for k, cluster in enumerate(result.clusters):
            members = frozenset(np.flatnonzero(result.labels == k).tolist())
            assert cluster.indices == members

    def test_clusters_are_disjoint(self, factory, results, request):
        _, result = self._result(results, request)
        seen: set[int] = set()
        for cluster in result.clusters:
            assert not (seen & cluster.indices)
            seen |= cluster.indices

    def test_relevant_axes_in_range(self, factory, results, request, easy_dataset):
        _, result = self._result(results, request)
        for cluster in result.clusters:
            assert all(
                0 <= a < easy_dataset.dimensionality for a in cluster.relevant_axes
            )

    def test_refit_is_reproducible(self, factory, results, request, easy_dataset):
        maker, first = self._result(results, request)
        again = maker().fit(easy_dataset.points)
        assert np.array_equal(first.labels, again.labels)

    def test_estimator_stores_results(self, factory, results, request, easy_dataset):
        method = factory()
        result = method.fit(easy_dataset.points)
        assert np.array_equal(method.labels_, result.labels)

    def test_rejects_empty_input(self, factory, results, request):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((0, 5)))
