"""Serving harness: persisted models, mmap store, async front end.

The suite proves the serving contract from four sides:

* **Golden fixtures** — the committed model binaries label their pinned
  suites to the exact label SHA the original fit produced, and
  re-serializing today's fit reproduces the committed file bytes
  (byte-stability), for every compute backend on this machine.
* **Round trip** — ``save → load → label`` is bit-identical to the
  in-memory fit, in both mmap and private-copy loading modes, and the
  reconstituted Counting-tree answers the same queries.
* **Failure paths** — truncated, corrupted, version-skewed and
  misdeclared files all raise :class:`ModelFormatError` (never a bare
  numpy error or silent garbage), and a model vanishing mid-serve
  poisons only its own requests.
* **Shared mmap** — concurrent reader processes mapping one model file
  agree with each other and with the parent, bit for bit.

Regenerate the fixtures intentionally with::

    PYTHONPATH=src python scripts/regen_golden_models.py
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import struct
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro import MrCC, generate_dataset, obs
from repro.core import kernels
from repro.data.synthetic import SyntheticDatasetSpec
from repro.resilience.faults import InjectedFault
from repro.serve import (
    MODEL_MAGIC,
    BatchLabeller,
    LabellerStopped,
    ModelCache,
    ModelFormatError,
    load_model,
    model_from_estimator,
    save_model,
)
from repro.serve.store import write_model

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES_DIR = Path(__file__).parent / "fixtures"

sys.path.insert(0, str(REPO_ROOT / "scripts"))
from regen_golden_models import GOLDEN_MODELS  # noqa: E402

sys.path.pop(0)

MODEL_NAMES = sorted(GOLDEN_MODELS)
AVAILABLE = kernels.available_backends()


def load_sidecar(name: str) -> dict:
    path = FIXTURES_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden fixture {path}; run "
        "PYTHONPATH=src python scripts/regen_golden_models.py"
    )
    return json.loads(path.read_text())


def suite_points(name: str) -> np.ndarray:
    return generate_dataset(GOLDEN_MODELS[name]["spec"]).points


@pytest.fixture(scope="module")
def small_fit() -> tuple[MrCC, np.ndarray]:
    """One small fitted estimator shared by the fast tests."""
    dataset = generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=6, n_points=900, n_clusters=2, seed=5
        )
    )
    points = dataset.points * 4.0 - 1.0  # force a non-trivial normalizer
    estimator = MrCC(n_resolutions=4)
    estimator.fit(points)
    return estimator, points


@pytest.fixture()
def small_model_path(small_fit, tmp_path) -> Path:
    estimator, _ = small_fit
    path = tmp_path / "small.model"
    save_model(estimator, path)
    return path


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestGoldenModels:
    def test_committed_binary_reproduces_pinned_labels(self, name):
        sidecar = load_sidecar(name)
        model = load_model(FIXTURES_DIR / f"{name}.bin")
        labels = model.label(suite_points(name))
        assert (
            hashlib.sha256(labels.tobytes()).hexdigest()
            == sidecar["labels_sha256"]
        )
        groups = model.groups
        assert len(groups) == sidecar["n_clusters_found"]
        assert len(model.betas) == sidecar["n_beta_clusters"]

    @pytest.mark.parametrize("backend", AVAILABLE)
    def test_pinned_labels_hold_across_backends(
        self, name, backend, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        sidecar = load_sidecar(name)
        model = load_model(FIXTURES_DIR / f"{name}.bin")
        labels = model.label(suite_points(name))
        assert (
            hashlib.sha256(labels.tobytes()).hexdigest()
            == sidecar["labels_sha256"]
        )

    def test_refit_reserializes_to_pinned_bytes(self, name, tmp_path):
        sidecar = load_sidecar(name)
        suite = GOLDEN_MODELS[name]
        estimator = MrCC(n_resolutions=suite["n_resolutions"])
        estimator.fit(suite_points(name))
        path = tmp_path / "regen.model"
        save_model(estimator, path)
        assert (
            hashlib.sha256(path.read_bytes()).hexdigest()
            == sidecar["file_sha256"]
        ), "model serialization is no longer byte-stable; regenerate"
        assert path.stat().st_size == sidecar["file_bytes"]

    def test_loaded_meta_matches_suite(self, name):
        sidecar = load_sidecar(name)
        model = load_model(FIXTURES_DIR / f"{name}.bin")
        assert model.dimensionality == sidecar["suite"]["dimensionality"]
        assert model.n_resolutions == sidecar["suite"]["n_resolutions"]
        assert model.meta["n_points"] == sidecar["suite"]["n_points"]


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_labels_bit_identical_to_fit(
        self, small_fit, small_model_path, mmap
    ):
        estimator, points = small_fit
        model = load_model(small_model_path, mmap=mmap)
        assert np.array_equal(model.label(points), estimator.labels_)

    def test_label_result_matches_fit_clusters(
        self, small_fit, small_model_path
    ):
        estimator, points = small_fit
        result = load_model(small_model_path).label_result(points)
        assert np.array_equal(result.labels, estimator.labels_)
        assert [c.relevant_axes for c in result.clusters] == (
            estimator.relevant_axes_
        )

    def test_label_stream_matches_fit(self, small_fit, small_model_path):
        estimator, points = small_fit
        model = load_model(small_model_path)
        result = model.label_stream(np.array_split(points, 5))
        assert np.array_equal(result.labels, estimator.labels_)

    def test_tree_reconstructs_counts(self, small_fit, small_model_path):
        estimator, _ = small_fit
        tree = load_model(small_model_path).tree()
        original = estimator.tree_
        assert tree.n_points == original.n_points
        for h in original.levels:
            level, ref = tree.level(h), original.level(h)
            assert np.array_equal(level.coords, ref.coords)
            assert np.array_equal(level.n, ref.n)
            assert np.array_equal(level.half_counts, ref.half_counts)
            # Lookups go through the persisted packed keys.
            assert level.row_of(ref.coords[0]) == ref.row_of(ref.coords[0])

    def test_save_is_byte_stable(self, small_fit, tmp_path):
        estimator, _ = small_fit
        save_model(estimator, tmp_path / "a.model")
        save_model(estimator, tmp_path / "b.model")
        assert (tmp_path / "a.model").read_bytes() == (
            tmp_path / "b.model"
        ).read_bytes()

    def test_mrcc_save_front_door(self, small_fit, tmp_path):
        estimator, points = small_fit
        estimator.save(tmp_path / "front.model")
        model = load_model(tmp_path / "front.model")
        assert np.array_equal(model.label(points), estimator.labels_)

    def test_normalizer_round_trips(self, small_fit, small_model_path):
        estimator, _ = small_fit
        model = load_model(small_model_path)
        assert model.normalizer is not None
        lo, span = model.normalizer
        ref_lo, ref_span = estimator.normalizer_
        assert np.array_equal(lo, ref_lo)
        assert np.array_equal(span, ref_span)

    def test_label_rejects_wrong_dimensionality(self, small_model_path):
        model = load_model(small_model_path)
        with pytest.raises(ValueError, match="axes"):
            model.label(np.zeros((3, model.dimensionality + 1)))

    def test_unfitted_estimator_refuses_to_save(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            MrCC().save(tmp_path / "never.model")

    def test_mmap_arrays_are_read_only_views(self, small_model_path):
        model = load_model(small_model_path, mmap=True)
        level = next(iter(model.levels.values()))
        assert not level.coords.flags.writeable
        with pytest.raises(ValueError):
            level.coords[0, 0] = 99


def _raw_model(path: Path, header: dict, data: bytes) -> Path:
    """Hand-assemble a model file for format-violation tests."""
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode()
    start = 16 + len(header_bytes)
    aligned = (start + 63) // 64 * 64
    blob = (
        MODEL_MAGIC
        + struct.pack("<Q", len(header_bytes))
        + header_bytes
        + b"\x00" * (aligned - start)
        + data
    )
    path.write_bytes(blob)
    return path


def _valid_header(**overrides) -> dict:
    header = {
        "schema": 1,
        "generated_by": "repro.serve",
        "byte_order": "little",
        "meta": {"k": 1},
        "arrays": [
            {
                "name": "x",
                "dtype": "<i8",
                "shape": [2],
                "offset": 0,
                "nbytes": 16,
            }
        ],
    }
    header.update(overrides)
    return header


class TestFailurePaths:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelFormatError, match="unreadable"):
            load_model(tmp_path / "nope.model")

    def test_not_a_model_file(self, tmp_path):
        path = tmp_path / "junk.model"
        path.write_bytes(b"definitely not a model artifact")
        with pytest.raises(ModelFormatError, match="magic"):
            load_model(path)

    @pytest.mark.parametrize("keep", [0, 4, 12, 40])
    def test_truncated_prefix(self, small_model_path, tmp_path, keep):
        stub = tmp_path / "trunc.model"
        stub.write_bytes(small_model_path.read_bytes()[:keep])
        with pytest.raises(ModelFormatError):
            load_model(stub)

    def test_truncated_data_section(self, small_model_path, tmp_path):
        blob = small_model_path.read_bytes()
        stub = tmp_path / "trunc.model"
        stub.write_bytes(blob[: len(blob) - 64])
        with pytest.raises(ModelFormatError, match="truncated|bounds"):
            load_model(stub)

    def test_wrong_schema_version(self, tmp_path):
        path = _raw_model(
            tmp_path / "skew.model", _valid_header(schema=99), b"\x00" * 16
        )
        with pytest.raises(ModelFormatError, match="schema"):
            load_model(path)

    def test_wrong_byte_order(self, tmp_path):
        path = _raw_model(
            tmp_path / "endian.model",
            _valid_header(byte_order="big"),
            b"\x00" * 16,
        )
        with pytest.raises(ModelFormatError, match="byte order"):
            load_model(path)

    def test_header_not_json(self, tmp_path):
        blob = MODEL_MAGIC + struct.pack("<Q", 4) + b"{{{{"
        path = tmp_path / "nojson.model"
        path.write_bytes(blob + b"\x00" * 64)
        with pytest.raises(ModelFormatError, match="header"):
            load_model(path)

    def test_unknown_dtype_token(self, tmp_path):
        header = _valid_header()
        header["arrays"][0]["dtype"] = "<c16"
        path = _raw_model(tmp_path / "dtype.model", header, b"\x00" * 16)
        with pytest.raises(ModelFormatError, match="dtype"):
            load_model(path)

    def test_section_past_end_of_file(self, tmp_path):
        header = _valid_header()
        header["arrays"][0]["offset"] = 4096
        path = _raw_model(tmp_path / "bounds.model", header, b"\x00" * 16)
        with pytest.raises(ModelFormatError, match="bounds|truncated"):
            load_model(path)

    def test_overlapping_sections(self, tmp_path):
        header = _valid_header()
        header["arrays"] = [
            dict(header["arrays"][0]),
            {
                "name": "y",
                "dtype": "<i8",
                "shape": [2],
                "offset": 8,
                "nbytes": 16,
            },
        ]
        path = _raw_model(tmp_path / "overlap.model", header, b"\x00" * 24)
        with pytest.raises(ModelFormatError, match="overlap"):
            load_model(path)

    def test_nbytes_shape_mismatch(self, tmp_path):
        header = _valid_header()
        header["arrays"][0]["nbytes"] = 8
        path = _raw_model(tmp_path / "nbytes.model", header, b"\x00" * 16)
        with pytest.raises(ModelFormatError, match="nbytes"):
            load_model(path)

    def test_store_file_with_wrong_model_meta(self, tmp_path):
        # A structurally valid store file that is not a serving model.
        path = tmp_path / "notmodel.model"
        write_model(
            path, {"who": "knows"}, [("x", np.arange(4, dtype="<i8"))]
        )
        with pytest.raises(ModelFormatError, match="meta keys"):
            load_model(path)

    def test_model_missing_level_arrays(self, small_model_path, tmp_path):
        from repro.serve.store import read_model

        header, data = read_model(small_model_path, mmap=False)
        dropped = {
            name: array
            for name, array in data.items()
            if not name.startswith("level1/")
        }
        path = tmp_path / "missing.model"
        write_model(path, header["meta"], sorted(dropped.items()))
        with pytest.raises(ModelFormatError, match="missing"):
            load_model(path)

    def test_cache_rejects_path_escapes(self, tmp_path):
        cache = ModelCache(root=tmp_path)
        for name in ("..", "a/b.model", "/abs.model", ""):
            with pytest.raises(ValueError, match="bare file name"):
                cache.path_of(name)

    def test_model_vanishing_mid_serve(self, small_fit, tmp_path):
        estimator, points = small_fit
        save_model(estimator, tmp_path / "good.model")
        cache = ModelCache(root=tmp_path)

        async def main():
            async with BatchLabeller(cache, delay=0.0) as labeller:
                ok = await labeller.label("good.model", points[:50])
                with pytest.raises(ModelFormatError):
                    await labeller.label("gone.model", points[:50])
                # The worker loop survived the poisoned request.
                again = await labeller.label("good.model", points[50:100])
                return ok, again, labeller.stats()

        ok, again, stats = asyncio.run(main())
        assert np.array_equal(ok, estimator.labels_[:50])
        assert np.array_equal(again, estimator.labels_[50:100])
        assert stats["errors"] == 1


class TestModelCache:
    def _populate(self, tmp_path, small_fit, n):
        estimator, _ = small_fit
        for k in range(n):
            save_model(estimator, tmp_path / f"m{k}.model")

    def test_lru_eviction_order(self, small_fit, tmp_path):
        self._populate(tmp_path, small_fit, 3)
        cache = ModelCache(root=tmp_path, capacity=2)
        cache.get("m0.model")
        cache.get("m1.model")
        cache.get("m0.model")  # refresh m0 → m1 is now LRU
        cache.get("m2.model")  # evicts m1
        assert "m0.model" in cache and "m2.model" in cache
        assert "m1.model" not in cache
        assert (cache.hits, cache.misses, cache.evictions) == (1, 3, 1)

    def test_counters_flow_into_obs(self, small_fit, tmp_path):
        self._populate(tmp_path, small_fit, 1)
        cache = ModelCache(root=tmp_path, capacity=1)
        with obs.capture() as tracer:
            cache.get("m0.model")
            cache.get("m0.model")
            counters = dict(tracer.counters)
        assert counters["serve.cache.miss"] == 1
        assert counters["serve.cache.hit"] == 1
        assert counters["serve.models_loaded"] == 1

    def test_failed_load_is_not_cached(self, small_fit, tmp_path):
        self._populate(tmp_path, small_fit, 1)
        cache = ModelCache(root=tmp_path)
        with pytest.raises(ModelFormatError):
            cache.get("absent.model")
        assert len(cache) == 0
        # Repairing the file makes the same name loadable.
        (tmp_path / "m0.model").rename(tmp_path / "absent.model")
        cache.get("absent.model")
        assert len(cache) == 1

    def test_invalidate(self, small_fit, tmp_path):
        self._populate(tmp_path, small_fit, 2)
        cache = ModelCache(root=tmp_path, capacity=4)
        cache.get("m0.model")
        cache.get("m1.model")
        cache.invalidate("m0.model")
        assert "m0.model" not in cache and "m1.model" in cache
        cache.invalidate()
        assert len(cache) == 0


class TestBatchLabeller:
    def test_labels_match_direct_path(self, small_fit, tmp_path):
        estimator, points = small_fit
        save_model(estimator, tmp_path / "m.model")
        cache = ModelCache(root=tmp_path)

        async def main():
            async with BatchLabeller(
                cache, batch_points=256, delay=0.002
            ) as labeller:
                return await asyncio.gather(
                    *[
                        labeller.label("m.model", points[i::4])
                        for i in range(4)
                    ]
                )

        parts = asyncio.run(main())
        for i, part in enumerate(parts):
            assert np.array_equal(part, estimator.labels_[i::4])

    def test_stats_shape(self, small_fit, tmp_path):
        estimator, points = small_fit
        save_model(estimator, tmp_path / "m.model")
        cache = ModelCache(root=tmp_path)

        async def main():
            async with BatchLabeller(cache, delay=0.0) as labeller:
                await labeller.label("m.model", points[:64])
                return labeller.stats()

        stats = asyncio.run(main())
        assert stats["requests"] == 1 and stats["errors"] == 0
        assert stats["batches"] >= 1
        assert set(stats["latency_s"]) == {"p50", "p99"}
        assert 0.0 <= stats["latency_s"]["p50"] <= stats["latency_s"]["p99"]

    def test_injected_fault_poisons_one_request(
        self, small_fit, tmp_path, monkeypatch
    ):
        estimator, points = small_fit
        save_model(estimator, tmp_path / "m.model")
        monkeypatch.setenv("REPRO_FAULTS", "raise:request1:0")
        cache = ModelCache(root=tmp_path)

        async def main():
            async with BatchLabeller(cache, delay=0.0) as labeller:
                first = await labeller.label("m.model", points[:40])
                with pytest.raises(InjectedFault):
                    await labeller.label("m.model", points[40:80])
                third = await labeller.label("m.model", points[80:120])
                return first, third, labeller.stats()

        first, third, stats = asyncio.run(main())
        assert np.array_equal(first, estimator.labels_[:40])
        assert np.array_equal(third, estimator.labels_[80:120])
        assert stats["errors"] == 1 and stats["requests"] == 3

    def test_label_requires_started_worker(self, tmp_path):
        labeller = BatchLabeller(ModelCache(root=tmp_path))

        async def main():
            with pytest.raises(RuntimeError, match="not started"):
                await labeller.label("m.model", np.zeros((1, 2)))

        asyncio.run(main())


class TestLabellerShutdown:
    """stop() flushes in-flight work and fails new work loudly."""

    def test_stop_flushes_queued_requests(self, small_fit, tmp_path):
        estimator, points = small_fit
        save_model(estimator, tmp_path / "m.model")
        cache = ModelCache(root=tmp_path)

        async def main():
            # A huge delay window parks the worker coalescing forever;
            # only the stop sentinel can close the batch, so these
            # requests are in flight exactly when stop() runs.
            labeller = BatchLabeller(cache, batch_points=10**6, delay=60.0)
            labeller.start()
            pending = [
                asyncio.ensure_future(
                    labeller.label("m.model", points[i::3])
                )
                for i in range(3)
            ]
            while labeller._queue.qsize() < 3:  # let them all enqueue
                await asyncio.sleep(0)
            await labeller.stop()
            assert all(future.done() for future in pending)
            return await asyncio.gather(*pending)

        parts = asyncio.run(main())
        for i, part in enumerate(parts):
            assert np.array_equal(part, estimator.labels_[i::3])

    def test_label_after_stop_raises_typed_error(self, small_fit, tmp_path):
        estimator, points = small_fit
        save_model(estimator, tmp_path / "m.model")
        cache = ModelCache(root=tmp_path)

        async def main():
            async with BatchLabeller(cache, delay=0.0) as labeller:
                await labeller.label("m.model", points[:16])
            with pytest.raises(LabellerStopped, match="not.*dropped"):
                await labeller.label("m.model", points[:16])

        asyncio.run(main())
        assert issubclass(LabellerStopped, RuntimeError)

    def test_restart_after_stop(self, small_fit, tmp_path):
        estimator, points = small_fit
        save_model(estimator, tmp_path / "m.model")
        cache = ModelCache(root=tmp_path)

        async def main():
            labeller = BatchLabeller(cache, delay=0.0)
            labeller.start()
            await labeller.stop()
            labeller.start()  # a stopped labeller can be restarted...
            labels = await labeller.label("m.model", points[:32])
            await labeller.stop()
            return labels

        labels = asyncio.run(main())
        assert np.array_equal(labels, estimator.labels_[:32])

    def test_stats_safe_with_empty_latency_buffer(self, tmp_path):
        labeller = BatchLabeller(ModelCache(root=tmp_path))
        stats = labeller.stats()
        assert stats["requests"] == 0
        assert stats["latency_s"] == {}

    def test_stop_twice_is_idempotent(self, small_fit, tmp_path):
        cache = ModelCache(root=tmp_path)

        async def main():
            labeller = BatchLabeller(cache, delay=0.0)
            labeller.start()
            await labeller.stop()
            await labeller.stop()  # no worker left: a quiet no-op

        asyncio.run(main())


def _mmap_reader(model_path: str, points: np.ndarray) -> tuple[int, bytes]:
    """Worker: map the shared model read-only and label the points."""
    model = load_model(model_path, mmap=True)
    labels = model.label(points)
    return int(labels.shape[0]), labels.tobytes()


class TestSharedMmap:
    def test_concurrent_readers_agree(self, small_fit, small_model_path):
        estimator, points = small_fit
        expected = estimator.labels_.tobytes()
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_mmap_reader, str(small_model_path), points)
                for _ in range(2)
            ]
            outcomes = [future.result(timeout=120) for future in futures]
        assert all(n == points.shape[0] for n, _ in outcomes)
        assert all(blob == expected for _, blob in outcomes)


class TestServeCli:
    def test_save_model_then_serve_round_trip(
        self, small_fit, tmp_path, capsys
    ):
        from repro.cli import main

        _, points = small_fit
        np.save(tmp_path / "pts.npy", points)
        model = tmp_path / "cli.model"
        assert (
            main(
                [
                    "save-model",
                    str(model),
                    "--input",
                    str(tmp_path / "pts.npy"),
                ]
            )
            == 0
        )
        assert model.exists()
        assert (
            main(
                [
                    "serve",
                    str(model),
                    "--input",
                    str(tmp_path / "pts.npy"),
                    "--output",
                    str(tmp_path / "labels.npy"),
                    "--requests",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "model saved to" in out and "p50=" in out
        labels = np.load(tmp_path / "labels.npy")
        estimator, _ = small_fit
        assert np.array_equal(labels, estimator.labels_)
