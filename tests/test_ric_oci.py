"""Behavioural tests for the information-theoretic extras: RIC and OCI."""

import numpy as np
import pytest

from repro.baselines.oci import OCI, bimodality_valley, epd_shape, fast_ica
from repro.baselines.ric import RIC, gaussian_bits, relevant_axes_by_vac
from repro.core.mrcc import MrCC
from repro.evaluation.quality import quality
from repro.types import NOISE_LABEL


class TestFastICA:
    def test_recovers_independent_sources(self):
        rng = np.random.default_rng(0)
        sources = rng.uniform(-1, 1, size=(3000, 2))
        mixed = sources @ np.array([[1.0, 0.45], [0.3, 1.0]]).T
        recovered, directions = fast_ica(mixed, random_state=1)
        # Recovered components are decorrelated in their energies
        # (uniform sources are sub-Gaussian; abs-correlation near 0).
        corr = np.corrcoef(np.abs(recovered[:, 0]), np.abs(recovered[:, 1]))[0, 1]
        assert abs(corr) < 0.1
        assert directions.shape == (2, 2)

    def test_handles_degenerate_rank(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(200, 1))
        points = np.hstack([base, base * 2.0])  # rank 1
        sources, _ = fast_ica(points, random_state=0)
        assert np.all(np.isfinite(sources))


class TestEpdShape:
    def test_gaussian_scores_two(self):
        rng = np.random.default_rng(2)
        assert epd_shape(rng.normal(size=20000)) == pytest.approx(2.0, abs=0.3)

    def test_laplace_scores_low(self):
        rng = np.random.default_rng(3)
        assert epd_shape(rng.laplace(size=20000)) < 1.5

    def test_uniform_scores_high(self):
        rng = np.random.default_rng(4)
        assert epd_shape(rng.uniform(size=20000)) > 5.0

    def test_constant_input_defaults_to_gaussian(self):
        assert epd_shape(np.full(100, 3.0)) == 2.0


class TestBimodalityValley:
    def test_two_modes_scored_high(self):
        rng = np.random.default_rng(5)
        values = np.concatenate(
            [rng.normal(-3, 0.3, 800), rng.normal(3, 0.3, 800)]
        )
        score, threshold = bimodality_valley(values)
        assert score > 0.8
        assert -2 < threshold < 2

    def test_unimodal_scored_low(self):
        rng = np.random.default_rng(6)
        score, _ = bimodality_valley(rng.normal(size=2000))
        assert score < 0.5

    def test_edge_artifacts_ignored(self):
        rng = np.random.default_rng(7)
        values = np.concatenate([rng.normal(size=2000), [50.0]])
        score, threshold = bimodality_valley(values)
        assert threshold < 10.0  # the lone outlier cannot define the cut


class TestOCI:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="min_cluster_size"):
            OCI(min_cluster_size=1)
        with pytest.raises(ValueError, match="outlier_quantile"):
            OCI(outlier_quantile=0.7)

    def test_splits_well_separated_clusters(self):
        from repro.types import SubspaceCluster

        rng = np.random.default_rng(8)
        a = rng.normal([0.2] * 4, 0.02, size=(500, 4))
        b = rng.normal([0.8] * 4, 0.02, size=(500, 4))
        points = np.clip(np.vstack([a, b]), 0, np.nextafter(1.0, 0))
        result = OCI(random_state=0).fit(points)
        truth = [
            SubspaceCluster.from_iterables(range(500), range(4)),
            SubspaceCluster.from_iterables(range(500, 1000), range(4)),
        ]
        assert result.n_clusters == 2
        assert quality(result.clusters, truth) > 0.9

    def test_outlier_filter_drops_tail_points(self):
        rng = np.random.default_rng(9)
        points = np.clip(
            rng.normal(0.5, 0.05, size=(800, 3)), 0, np.nextafter(1.0, 0)
        )
        result = OCI(outlier_quantile=0.05, random_state=0).fit(points)
        assert 0 < result.n_noise <= 80


class TestRIC:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="eviction_sigmas"):
            RIC(eviction_sigmas=0.0)

    def test_vac_picks_tight_axes(self):
        rng = np.random.default_rng(10)
        members = rng.uniform(0, 1, size=(500, 4))
        members[:, 1] = rng.normal(0.5, 0.01, 500)
        members[:, 2] = rng.normal(0.3, 0.02, 500)
        axes = relevant_axes_by_vac(members)
        assert axes == frozenset({1, 2})

    def test_gaussian_bits_reward_tightness(self):
        rng = np.random.default_rng(11)
        tight = gaussian_bits(rng.normal(0.5, 0.01, 500))
        loose = gaussian_bits(rng.normal(0.5, 0.2, 500))
        assert tight < loose

    def test_refinement_improves_precision_of_contaminated_cluster(self):
        """Plant a tight cluster, contaminate its label set with noise
        points: RIC must evict mostly contaminants."""
        rng = np.random.default_rng(12)
        cluster = rng.normal(0.5, 0.01, size=(400, 4))
        noise = rng.uniform(0, 1, size=(100, 4))
        points = np.clip(np.vstack([cluster, noise]), 0, np.nextafter(1.0, 0))
        from repro.types import ClusteringResult

        contaminated = ClusteringResult.from_labels(
            np.zeros(500, dtype=np.int64), [range(4)]
        )
        refined = RIC().refine(contaminated, points)
        assert refined.n_clusters == 1
        members = np.asarray(sorted(refined.clusters[0].indices))
        precision = np.mean(members < 400)
        assert precision > 0.95
        # Most genuine members survive the eviction.
        assert np.count_nonzero(members < 400) > 320

    def test_refining_mrcc_preserves_cluster_count(self, medium_dataset):
        base = MrCC(normalize=False).fit(medium_dataset.points)
        refined = RIC().refine(base, medium_dataset.points)
        assert refined.n_clusters <= base.n_clusters
        assert refined.n_clusters >= base.n_clusters - 1
        assert np.all(
            (refined.labels == NOISE_LABEL) | (refined.labels >= 0)
        )
