"""Tests for chunked/streaming Counting-tree construction."""

import numpy as np
import pytest

from repro.core.counting_tree import CountingTree
from repro.core.mrcc import MrCC
from repro.core.streaming import build_tree_from_chunks, fit_stream, label_stream
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset


@pytest.fixture(scope="module")
def stream_dataset():
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=7,
            n_points=3000,
            n_clusters=3,
            noise_fraction=0.1,
            max_irrelevant=2,
            seed=23,
        )
    )


def _levels_equal(a, b):
    order_a = np.lexsort(a.coords.T[::-1])
    order_b = np.lexsort(b.coords.T[::-1])
    return (
        np.array_equal(a.coords[order_a], b.coords[order_b])
        and np.array_equal(a.n[order_a], b.n[order_b])
        and np.array_equal(a.half_counts[order_a], b.half_counts[order_b])
    )


class TestBuildTreeFromChunks:
    def test_identical_to_batch_tree(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 9)
        streamed = build_tree_from_chunks(chunks)
        batch = CountingTree(stream_dataset.points)
        assert streamed.n_points == batch.n_points
        for h in batch.levels:
            assert _levels_equal(streamed.level(h), batch.level(h))

    def test_chunking_is_irrelevant(self, stream_dataset):
        one = build_tree_from_chunks([stream_dataset.points])
        many = build_tree_from_chunks(np.array_split(stream_dataset.points, 50))
        for h in one.levels:
            assert _levels_equal(one.level(h), many.level(h))

    def test_empty_chunks_are_skipped(self, stream_dataset):
        chunks = [np.empty((0, 7)), stream_dataset.points, np.empty((0, 7))]
        tree = build_tree_from_chunks(chunks)
        assert tree.n_points == stream_dataset.n_points

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="no points"):
            build_tree_from_chunks([])

    def test_rejects_mismatched_dimensionality(self):
        with pytest.raises(ValueError, match="dimensionality"):
            build_tree_from_chunks([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_rejects_unnormalised_chunk(self):
        with pytest.raises(ValueError, match="normalise"):
            build_tree_from_chunks([np.full((2, 3), 1.5)])


class TestStreamingPipeline:
    def test_fit_and_label_match_batch_mrcc(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 6)
        _, betas = fit_stream(chunks)
        streamed = label_stream(chunks, betas)
        batch = MrCC(normalize=False).fit(stream_dataset.points)
        assert np.array_equal(streamed.labels, batch.labels)
        assert streamed.n_clusters == batch.n_clusters
        for a, b in zip(streamed.clusters, batch.clusters):
            assert a.indices == b.indices
            assert a.relevant_axes == b.relevant_axes

    def test_label_stream_concatenates_in_order(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 4)
        _, betas = fit_stream(chunks)
        result = label_stream(chunks, betas)
        assert result.labels.shape == (stream_dataset.n_points,)
