"""Tests for chunked/streaming Counting-tree construction."""

import numpy as np
import pytest

from repro.core.contracts import ContractError
from repro.core.counting_tree import CountingTree
from repro.core.mrcc import MrCC
from repro.core.streaming import (
    TreeStreamBuilder,
    build_tree_from_chunks,
    fit_stream,
    label_stream,
)
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset


@pytest.fixture(scope="module")
def stream_dataset():
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=7,
            n_points=3000,
            n_clusters=3,
            noise_fraction=0.1,
            max_irrelevant=2,
            seed=23,
        )
    )


def _levels_equal(a, b):
    order_a = np.lexsort(a.coords.T[::-1])
    order_b = np.lexsort(b.coords.T[::-1])
    return (
        np.array_equal(a.coords[order_a], b.coords[order_b])
        and np.array_equal(a.n[order_a], b.n[order_b])
        and np.array_equal(a.half_counts[order_a], b.half_counts[order_b])
    )


class TestBuildTreeFromChunks:
    def test_identical_to_batch_tree(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 9)
        streamed = build_tree_from_chunks(chunks)
        batch = CountingTree(stream_dataset.points)
        assert streamed.n_points == batch.n_points
        for h in batch.levels:
            assert _levels_equal(streamed.level(h), batch.level(h))

    def test_chunking_is_irrelevant(self, stream_dataset):
        one = build_tree_from_chunks([stream_dataset.points])
        many = build_tree_from_chunks(np.array_split(stream_dataset.points, 50))
        for h in one.levels:
            assert _levels_equal(one.level(h), many.level(h))

    def test_empty_chunks_are_skipped(self, stream_dataset):
        chunks = [np.empty((0, 7)), stream_dataset.points, np.empty((0, 7))]
        tree = build_tree_from_chunks(chunks)
        assert tree.n_points == stream_dataset.n_points

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="no points"):
            build_tree_from_chunks([])

    def test_rejects_mismatched_dimensionality(self):
        with pytest.raises(ValueError, match="dimensionality"):
            build_tree_from_chunks([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_rejects_unnormalised_chunk(self):
        with pytest.raises(ValueError, match="normalise"):
            build_tree_from_chunks([np.full((2, 3), 1.5)])


class TestStreamFailurePaths:
    """A bad chunk mid-stream must not corrupt already-absorbed state."""

    def test_contract_violation_leaves_absorbed_state_intact(self, stream_dataset):
        halves = np.array_split(stream_dataset.points, 2)
        builder = TreeStreamBuilder()
        builder.absorb(halves[0])
        points_before = builder.n_points

        bad = halves[1].copy()
        bad[0, 0] = 1.5  # outside the unit box -> contract violation
        with pytest.raises(ContractError):
            builder.absorb(bad)

        # The rejected chunk changed nothing...
        assert builder.n_points == points_before
        # ...and a subsequent valid chunk still works: the final tree is
        # identical to a never-interrupted build over the same points.
        builder.absorb(halves[1])
        resumed = builder.build()
        clean = build_tree_from_chunks(halves)
        assert resumed.n_points == clean.n_points
        for h in clean.levels:
            assert _levels_equal(resumed.level(h), clean.level(h))

    def test_dimensionality_mismatch_leaves_absorbed_state_intact(
        self, stream_dataset
    ):
        builder = TreeStreamBuilder()
        builder.absorb(stream_dataset.points)
        with pytest.raises(ValueError, match="dimensionality"):
            builder.absorb(np.zeros((5, 3)))
        assert builder.n_points == stream_dataset.n_points
        tree = builder.build()
        batch = CountingTree(stream_dataset.points)
        for h in batch.levels:
            assert _levels_equal(tree.level(h), batch.level(h))

    def test_nan_chunk_rejected_before_mutation(self, stream_dataset):
        builder = TreeStreamBuilder()
        builder.absorb(stream_dataset.points)
        bad = np.full((4, stream_dataset.dimensionality), np.nan)
        with pytest.raises(ContractError):
            builder.absorb(bad)
        assert builder.n_points == stream_dataset.n_points

    def test_build_requires_points(self):
        with pytest.raises(ValueError, match="no points"):
            TreeStreamBuilder().build()

    def test_build_reflects_later_chunks(self, stream_dataset):
        halves = np.array_split(stream_dataset.points, 2)
        builder = TreeStreamBuilder()
        builder.absorb(halves[0])
        partial = builder.build()
        builder.absorb(halves[1])
        full = builder.build()
        assert partial.n_points == len(halves[0])
        assert full.n_points == stream_dataset.n_points


class TestStreamingPipeline:
    def test_fit_and_label_match_batch_mrcc(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 6)
        _, betas = fit_stream(chunks)
        streamed = label_stream(chunks, betas)
        batch = MrCC(normalize=False).fit(stream_dataset.points)
        assert np.array_equal(streamed.labels, batch.labels)
        assert streamed.n_clusters == batch.n_clusters
        for a, b in zip(streamed.clusters, batch.clusters):
            assert a.indices == b.indices
            assert a.relevant_axes == b.relevant_axes

    def test_label_stream_concatenates_in_order(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 4)
        _, betas = fit_stream(chunks)
        result = label_stream(chunks, betas)
        assert result.labels.shape == (stream_dataset.n_points,)
