"""Tests for chunked/streaming Counting-tree construction."""

import numpy as np
import pytest

from repro.core.contracts import ContractError
from repro.core.counting_tree import CountingTree
from repro.core.mrcc import MrCC
from repro.core.streaming import (
    TreeStreamBuilder,
    build_tree_from_chunks,
    fit_stream,
    label_stream,
    shard_level_arrays,
)
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset


@pytest.fixture(scope="module")
def stream_dataset():
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=7,
            n_points=3000,
            n_clusters=3,
            noise_fraction=0.1,
            max_irrelevant=2,
            seed=23,
        )
    )


def _levels_equal(a, b):
    order_a = np.lexsort(a.coords.T[::-1])
    order_b = np.lexsort(b.coords.T[::-1])
    return (
        np.array_equal(a.coords[order_a], b.coords[order_b])
        and np.array_equal(a.n[order_a], b.n[order_b])
        and np.array_equal(a.half_counts[order_a], b.half_counts[order_b])
    )


class TestBuildTreeFromChunks:
    def test_identical_to_batch_tree(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 9)
        streamed = build_tree_from_chunks(chunks)
        batch = CountingTree(stream_dataset.points)
        assert streamed.n_points == batch.n_points
        for h in batch.levels:
            assert _levels_equal(streamed.level(h), batch.level(h))

    def test_chunking_is_irrelevant(self, stream_dataset):
        one = build_tree_from_chunks([stream_dataset.points])
        many = build_tree_from_chunks(np.array_split(stream_dataset.points, 50))
        for h in one.levels:
            assert _levels_equal(one.level(h), many.level(h))

    def test_empty_chunks_are_skipped(self, stream_dataset):
        chunks = [np.empty((0, 7)), stream_dataset.points, np.empty((0, 7))]
        tree = build_tree_from_chunks(chunks)
        assert tree.n_points == stream_dataset.n_points

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="no points"):
            build_tree_from_chunks([])

    def test_rejects_mismatched_dimensionality(self):
        with pytest.raises(ValueError, match="dimensionality"):
            build_tree_from_chunks([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_rejects_unnormalised_chunk(self):
        with pytest.raises(ValueError, match="normalise"):
            build_tree_from_chunks([np.full((2, 3), 1.5)])


class TestStreamFailurePaths:
    """A bad chunk mid-stream must not corrupt already-absorbed state."""

    def test_contract_violation_leaves_absorbed_state_intact(self, stream_dataset):
        halves = np.array_split(stream_dataset.points, 2)
        builder = TreeStreamBuilder()
        builder.absorb(halves[0])
        points_before = builder.n_points

        bad = halves[1].copy()
        bad[0, 0] = 1.5  # outside the unit box -> contract violation
        with pytest.raises(ContractError):
            builder.absorb(bad)

        # The rejected chunk changed nothing...
        assert builder.n_points == points_before
        # ...and a subsequent valid chunk still works: the final tree is
        # identical to a never-interrupted build over the same points.
        builder.absorb(halves[1])
        resumed = builder.build()
        clean = build_tree_from_chunks(halves)
        assert resumed.n_points == clean.n_points
        for h in clean.levels:
            assert _levels_equal(resumed.level(h), clean.level(h))

    def test_dimensionality_mismatch_leaves_absorbed_state_intact(
        self, stream_dataset
    ):
        builder = TreeStreamBuilder()
        builder.absorb(stream_dataset.points)
        with pytest.raises(ValueError, match="dimensionality"):
            builder.absorb(np.zeros((5, 3)))
        assert builder.n_points == stream_dataset.n_points
        tree = builder.build()
        batch = CountingTree(stream_dataset.points)
        for h in batch.levels:
            assert _levels_equal(tree.level(h), batch.level(h))

    def test_nan_chunk_rejected_before_mutation(self, stream_dataset):
        builder = TreeStreamBuilder()
        builder.absorb(stream_dataset.points)
        bad = np.full((4, stream_dataset.dimensionality), np.nan)
        with pytest.raises(ContractError):
            builder.absorb(bad)
        assert builder.n_points == stream_dataset.n_points

    def test_build_requires_points(self):
        with pytest.raises(ValueError, match="no points"):
            TreeStreamBuilder().build()

    def test_build_reflects_later_chunks(self, stream_dataset):
        halves = np.array_split(stream_dataset.points, 2)
        builder = TreeStreamBuilder()
        builder.absorb(halves[0])
        partial = builder.build()
        builder.absorb(halves[1])
        full = builder.build()
        assert partial.n_points == len(halves[0])
        assert full.n_points == stream_dataset.n_points


class TestStreamingPipeline:
    def test_fit_and_label_match_batch_mrcc(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 6)
        _, betas = fit_stream(chunks)
        streamed = label_stream(chunks, betas)
        batch = MrCC(normalize=False).fit(stream_dataset.points)
        assert np.array_equal(streamed.labels, batch.labels)
        assert streamed.n_clusters == batch.n_clusters
        for a, b in zip(streamed.clusters, batch.clusters):
            assert a.indices == b.indices
            assert a.relevant_axes == b.relevant_axes

    def test_label_stream_concatenates_in_order(self, stream_dataset):
        chunks = np.array_split(stream_dataset.points, 4)
        _, betas = fit_stream(chunks)
        result = label_stream(chunks, betas)
        assert result.labels.shape == (stream_dataset.n_points,)


def _levels_bit_identical(a, b):
    """Element-wise equality — canonical key order, not just set equality."""
    return (
        np.array_equal(a.coords, b.coords)
        and np.array_equal(a.n, b.n)
        and np.array_equal(a.half_counts, b.half_counts)
    )


class TestShardedBuild:
    """The process-sharded tree build must be bit-identical to serial.

    An explicit ``n_jobs`` bypasses the point-count floor, so these
    small datasets genuinely fan out over worker processes.
    """

    def test_sharded_tree_identical_to_serial(self, stream_dataset):
        serial = CountingTree(stream_dataset.points, n_jobs=1)
        sharded = CountingTree(stream_dataset.points, n_jobs=4)
        assert sharded.n_points == serial.n_points
        for h in serial.levels:
            assert _levels_bit_identical(sharded.level(h), serial.level(h))

    def test_shard_count_is_irrelevant(self, stream_dataset):
        two = CountingTree(stream_dataset.points, n_jobs=2)
        five = CountingTree(stream_dataset.points, n_jobs=5)
        for h in two.levels:
            assert _levels_bit_identical(two.level(h), five.level(h))

    def test_fit_labels_bit_identical_across_n_jobs(self, stream_dataset):
        serial = MrCC(normalize=False, n_jobs=1).fit(stream_dataset.points)
        sharded = MrCC(normalize=False, n_jobs=4).fit(stream_dataset.points)
        assert sharded.n_clusters == serial.n_clusters
        assert np.array_equal(sharded.labels, serial.labels)

    def test_deep_tree_coordinates_survive_the_merge(self):
        # Levels with coordinates >= 256 exercise the multi-byte cell
        # keys: the shard merge must order them numerically, exactly
        # like the serial build.
        rng = np.random.default_rng(41)
        points = rng.uniform(0.0, 1.0, size=(4000, 2))
        serial = CountingTree(points, n_resolutions=10, n_jobs=1)
        sharded = CountingTree(points, n_resolutions=10, n_jobs=3)
        deepest = max(serial.levels)
        assert int(serial.level(deepest).coords.max()) >= 256
        for h in serial.levels:
            assert _levels_bit_identical(sharded.level(h), serial.level(h))

    def test_rejects_non_positive_n_jobs(self, stream_dataset):
        with pytest.raises(ValueError, match="n_jobs"):
            CountingTree(stream_dataset.points, n_jobs=0)


class TestAbsorbArrays:
    """The reduce primitive: validation precedes every mutation."""

    def _partial(self, points, n_resolutions=4):
        return shard_level_arrays(points, n_resolutions)

    def test_matches_chunk_absorb(self, stream_dataset):
        halves = np.array_split(stream_dataset.points, 2)
        via_chunks = TreeStreamBuilder()
        via_arrays = TreeStreamBuilder()
        for half in halves:
            via_chunks.absorb(half)
            via_arrays.absorb_arrays(
                self._partial(half), n_points=int(half.shape[0])
            )
        a, b = via_chunks.build(), via_arrays.build()
        for h in a.levels:
            assert _levels_bit_identical(a.level(h), b.level(h))

    def test_wrong_level_coverage_leaves_builder_unchanged(
        self, stream_dataset
    ):
        builder = TreeStreamBuilder()
        builder.absorb(stream_dataset.points)
        partial = self._partial(stream_dataset.points)
        del partial[max(partial)]
        with pytest.raises(ValueError, match="levels"):
            builder.absorb_arrays(partial, n_points=stream_dataset.n_points)
        assert builder.n_points == stream_dataset.n_points
        batch = CountingTree(stream_dataset.points)
        tree = builder.build()
        for h in batch.levels:
            assert _levels_bit_identical(tree.level(h), batch.level(h))

    def test_dimensionality_mismatch_rejected(self, stream_dataset):
        builder = TreeStreamBuilder()
        builder.absorb(stream_dataset.points)
        alien = self._partial(np.zeros((8, 3)))
        with pytest.raises(ValueError, match="dimensionality"):
            builder.absorb_arrays(alien, n_points=8)
        assert builder.n_points == stream_dataset.n_points

    def test_non_positive_point_count_rejected(self, stream_dataset):
        builder = TreeStreamBuilder()
        with pytest.raises(ValueError, match="point"):
            builder.absorb_arrays(
                self._partial(stream_dataset.points), n_points=0
            )
        assert builder.n_points == 0
