"""Tests for the simulated KDD Cup 2008 dataset (DESIGN.md substitution #1)."""

import numpy as np
import pytest

from repro.data.kddcup2008 import (
    N_FEATURES,
    KddCup2008Spec,
    generate_kddcup2008,
    kddcup2008_split,
)

SPEC = KddCup2008Spec(scale=0.02)


class TestSplitGeneration:
    @pytest.fixture(scope="class")
    def split(self):
        return kddcup2008_split("left", "MLO", SPEC)

    def test_feature_count_matches_kddcup(self, split):
        assert split.dimensionality == N_FEATURES

    def test_points_in_unit_cube(self, split):
        assert np.all(split.points >= 0.0)
        assert np.all(split.points < 1.0)

    def test_class_ground_truth_consistent(self, split):
        """Clusters are the two ROI classes: 0 = normal, 1 = malignant."""
        split.validate()
        assert split.n_clusters == 2
        assert np.all(split.labels >= 0)  # every ROI belongs to a class

    def test_class_skew_is_strong(self, split):
        is_malignant = split.metadata["is_malignant"]
        fraction = is_malignant.mean()
        assert 0.0 < fraction < 0.2
        assert np.array_equal(split.labels == 1, is_malignant)

    def test_structures_recorded_in_metadata(self, split):
        structures = split.metadata["structure_labels"]
        axes = split.metadata["structure_axes"]
        spec = split.metadata["spec"]
        n_structures = spec.n_benign_clusters + spec.n_malignant_clusters
        assert len(axes) == n_structures
        assert set(np.unique(structures)) <= set(range(-1, n_structures))

    def test_dominant_benign_structure(self, split):
        """Most normal ROIs belong to one tissue structure (the
        property that drives the paper-level recall on this data)."""
        structures = split.metadata["structure_labels"]
        normal = split.labels == 0
        dominant = np.bincount(structures[normal] + 1).max()
        assert dominant / normal.sum() > 0.6

    def test_malignant_rois_form_structures(self, split):
        structures = split.metadata["structure_labels"]
        malignant = split.labels == 1
        assert np.all(structures[malignant] >= 0)

    def test_deterministic(self):
        a = kddcup2008_split("right", "CC", SPEC)
        b = kddcup2008_split("right", "CC", SPEC)
        assert np.array_equal(a.points, b.points)

    def test_splits_differ(self):
        a = kddcup2008_split("left", "CC", SPEC)
        b = kddcup2008_split("left", "MLO", SPEC)
        assert not np.array_equal(a.points, b.points)

    def test_rejects_unknown_side_or_view(self):
        with pytest.raises(ValueError, match="side"):
            kddcup2008_split("center", "CC", SPEC)
        with pytest.raises(ValueError, match="view"):
            kddcup2008_split("left", "XX", SPEC)


class TestGenerateAll:
    def test_four_splits(self):
        splits = generate_kddcup2008(SPEC)
        assert sorted(splits) == ["left-CC", "left-MLO", "right-CC", "right-MLO"]

    def test_total_roi_count_tracks_published_size(self):
        splits = generate_kddcup2008(SPEC)
        total = sum(ds.n_points for ds in splits.values())
        assert total == pytest.approx(102_294 * SPEC.scale, rel=0.05)
