"""Tests for the job fabric: queue, leases, locks, shards, chaos.

The chaos classes formalize the exactly-once acceptance criteria of
PR 10: a fabric worker SIGKILL-ed mid-cell (and mid-tree-shard) leaves
an expired lease, the cell is re-issued exactly once, and the final
report/tree is bit-identical to an undisturbed run — serially and
under ``REPRO_JOBS=2``.  The sharding class proves that ``--shard
0/2`` + ``--shard 1/2`` + ``fabric merge`` reproduces the unsharded
report bit-identically, including after an interrupt + resume on one
shard.
"""

import json
import socket
import subprocess

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.counting_tree import CountingTree
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.env import heartbeat_from_env
from repro.experiments.runner import _load_resume_index, run_suite
from repro.fabric import (
    JournalLockError,
    QueueEntry,
    RunJournal,
    ShardSpec,
    SimulatedKill,
    Task,
    WorkQueue,
    format_status,
    journal_status,
    load_journal,
    load_records,
    merge_journals,
    parse_shard,
    pending_leases,
    run_supervised,
    shard_tasks,
)
from repro.fabric.faults import fire
from repro.fabric.journal import JournalError


def _unit_worker(value, *, attempt, fault, in_worker):
    if fault is not None:
        fire(fault, in_worker)
    return {"value": value}


def _tasks(*values):
    return [Task(key=f"cell|{value}", args=(value,)) for value in values]


def _kinds(path):
    return [record["kind"] for record in load_records(path)]


class TestWorkQueue:
    def test_own_pool_is_drained_fifo(self):
        queue = WorkQueue(2)
        for index in (0, 2, 4):  # all home in pool 0
            queue.push(QueueEntry(task_index=index, attempt=0))
        assert queue.take(0, now=0.0) == (QueueEntry(0, 0), 0)
        assert queue.take(0, now=0.0) == (QueueEntry(2, 0), 0)
        assert len(queue) == 1

    def test_empty_slot_steals_from_the_largest_pool_tail(self):
        queue = WorkQueue(3)
        for index in (1, 4, 7, 2):  # pool 1 holds 1,4,7; pool 2 holds 2
            queue.push(QueueEntry(task_index=index, attempt=0))
        entry, home = queue.take(0, now=0.0)
        assert home == 1  # the largest other pool...
        assert entry.task_index == 7  # ...loses its newest entry

    def test_victim_ties_break_to_the_lowest_pool(self):
        queue = WorkQueue(3)
        queue.push(QueueEntry(task_index=2, attempt=0))  # pool 2
        queue.push(QueueEntry(task_index=1, attempt=0))  # pool 1
        _, home = queue.take(0, now=0.0)
        assert home == 1

    def test_backoff_entries_are_invisible_until_release(self):
        queue = WorkQueue(2)
        queue.push(QueueEntry(task_index=0, attempt=1, not_before=50.0))
        assert queue.take(0, now=0.0) is None
        assert queue.take(1, now=0.0) is None  # not stealable either
        assert queue.earliest_release() == 50.0
        assert queue.take(0, now=50.0) == (QueueEntry(0, 1, 50.0), 0)

    def test_rejects_non_positive_pools(self):
        with pytest.raises(ValueError, match="n_pools"):
            WorkQueue(0)


class TestJournalLock:
    def test_second_writer_fails_fast(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path):
            with pytest.raises(JournalLockError, match="locked"):
                RunJournal(path)
        # Releasing the lock (close) lets the next writer in.
        with RunJournal(path) as journal:
            journal.record_cell("a", "ok", 1, None, None)

    def test_dead_pid_lock_is_broken_automatically(self, tmp_path):
        # The expected leftover of a kill -9: a lock naming a pid that
        # no longer exists on this host.  Resume must not need manual
        # cleanup.
        path = tmp_path / "run.jsonl"
        probe = subprocess.Popen(["true"])
        probe.wait()
        (tmp_path / "run.jsonl.lock").write_text(
            f"{probe.pid} {socket.gethostname()}\n"
        )
        with RunJournal(path) as journal:
            journal.record_cell("a", "ok", 1, None, None)
        assert load_journal(path)["a"]["status"] == "ok"

    def test_unreadable_lock_is_treated_as_stale(self, tmp_path):
        path = tmp_path / "run.jsonl"
        (tmp_path / "run.jsonl.lock").write_text("<torn garbage>")
        with RunJournal(path):
            pass

    def test_foreign_host_lock_is_refused(self, tmp_path):
        # A pid on another host cannot be probed, so the lock must be
        # honoured even if that pid happens to be dead over there.
        path = tmp_path / "run.jsonl"
        (tmp_path / "run.jsonl.lock").write_text("12345 some-other-host\n")
        with pytest.raises(JournalLockError, match="some-other-host"):
            RunJournal(path)

    def test_crash_before_open_releases_the_lock(self, tmp_path):
        # Opening a journal whose path is a directory fails after the
        # lock was taken; the lock must not leak.
        path = tmp_path / "run.jsonl"
        path.mkdir()
        with pytest.raises(OSError):
            RunJournal(path)
        assert not (tmp_path / "run.jsonl.lock").exists()


class TestTornRecords:
    def test_mid_file_error_names_the_byte_offset(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first = '{"kind": "header", "meta": {}, "schema": 2}\n'
        path.write_text(first + "<garbage>\n" + first)
        with pytest.raises(JournalError) as excinfo:
            load_records(path)
        assert f"byte offset {len(first)}" in str(excinfo.value)
        assert "run.jsonl:2" in str(excinfo.value)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_lease("a", 0, 0, None)
        path.write_text(path.read_text() + '{"kind": "le')
        assert _kinds(path) == ["header", "lease"]


class TestLeaseProtocol:
    def test_every_attempt_is_leased_before_it_commits(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            run_supervised(_unit_worker, _tasks("a", "b"), journal=journal)
        records = load_records(path)
        assert [r["kind"] for r in records] == [
            "header", "lease", "cell", "lease", "cell",
        ]
        leases = [r for r in records if r["kind"] == "lease"]
        assert [r["key"] for r in leases] == ["cell|a", "cell|b"]
        assert all(r["attempt"] == 0 for r in leases)
        assert pending_leases(records) == {}

    def test_lease_without_commit_is_expired(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_lease("cell|a", 0, 0, 30.0)
            journal.record_cell("cell|b", "ok", 1, {"value": "b"}, None)
        with obs.capture() as tracer:
            index = _load_resume_index(path)
        # The committed cell resumes; the expired lease stays out of the
        # index, so the fabric re-issues exactly that cell.
        assert set(index) == {"cell|b"}
        assert tracer.counters["fabric.leases_expired"] == 1
        outcomes = run_supervised(
            _unit_worker, _tasks("a", "b"), resume=index
        )
        assert [(o.key, o.resumed) for o in outcomes] == [
            ("cell|a", False), ("cell|b", True),
        ]

    def test_committed_record_wins_over_a_late_duplicate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("cell|a", "ok", 1, {"value": "first"}, None)
            journal.record_lease("cell|a", 0, 0, None)
        index = _load_resume_index(path)
        outcomes = run_supervised(_unit_worker, _tasks("a"), resume=index)
        assert outcomes[0].resumed is True
        assert outcomes[0].row == {"value": "first"}


class TestHeartbeat:
    def test_heartbeats_reach_the_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            run_supervised(
                _slow_worker,
                _tasks("a", "b", "c"),
                journal=journal,
                heartbeat=0.001,
            )
        records = load_records(path)
        beats = [r for r in records if r["kind"] == "heartbeat"]
        assert beats
        assert all(
            0 <= beat["done"] <= beat["total"] == 3 for beat in beats
        )

    def test_heartbeat_disabled_writes_none(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            run_supervised(
                _slow_worker, _tasks("a"), journal=journal, heartbeat=0.0
            )
        assert "heartbeat" not in _kinds(path)

    @pytest.mark.parametrize(
        "raw,expected",
        [("", 5.0), ("false", 0.0), ("0", 0.0), ("2.5", 2.5)],
    )
    def test_env_knob(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_HEARTBEAT", raw)
        assert heartbeat_from_env() == expected

    def test_env_knob_rejects_negatives(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "-1")
        with pytest.raises(ValueError, match="REPRO_HEARTBEAT"):
            heartbeat_from_env()


def _slow_worker(value, *, attempt, fault, in_worker):
    import time

    if fault is not None:
        fire(fault, in_worker)
    time.sleep(0.01)
    return {"value": value}


class TestSigkillChaos:
    """kill -9 a fabric worker mid-cell: exactly-once, bit-identical."""

    def test_sigkill_is_simulated_on_the_serial_path(self):
        with pytest.raises(SimulatedKill, match="SIGKILL"):
            fire("sigkill", in_worker=False)

    def _assert_exactly_once(self, path, key):
        records = load_records(path)
        leases = [
            r for r in records if r["kind"] == "lease" and r["key"] == key
        ]
        commits = [
            r for r in records if r["kind"] == "cell" and r["key"] == key
        ]
        assert [r["attempt"] for r in leases] == [0, 1]
        assert len(commits) == 1  # re-run exactly once, committed once
        assert commits[0]["status"] == "retried"
        assert commits[0]["attempts"] == 2
        assert pending_leases(records) == {}

    def test_sigkill_mid_cell_serial(self, tmp_path):
        undisturbed = run_supervised(_unit_worker, _tasks("a", "b", "c"))
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            outcomes = run_supervised(
                _unit_worker,
                _tasks("a", "b", "c"),
                retries=1,
                backoff=0.0,
                faults="sigkill:cell|b:0:1",
                journal=journal,
            )
        assert [o.status for o in outcomes] == ["ok", "retried", "ok"]
        assert [o.row for o in outcomes] == [o.row for o in undisturbed]
        self._assert_exactly_once(path, "cell|b")

    def test_sigkill_mid_cell_parallel(self, tmp_path):
        # A real kill -9: the worker process delivers SIGKILL to itself
        # mid-cell, the slot's pool breaks, the lease expires, and the
        # cell is re-issued exactly once.
        undisturbed = run_supervised(
            _unit_worker, _tasks("a", "b", "c", "d"), n_jobs=2
        )
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            outcomes = run_supervised(
                _unit_worker,
                _tasks("a", "b", "c", "d"),
                n_jobs=2,
                retries=1,
                backoff=0.0,
                faults="sigkill:cell|c:0:1",
                journal=journal,
            )
        by_key = {o.key: o for o in outcomes}
        assert by_key["cell|c"].status == "retried"
        assert by_key["cell|c"].attempts == 2
        assert [o.row for o in outcomes] == [o.row for o in undisturbed]
        self._assert_exactly_once(path, "cell|c")

    def test_sigkill_without_retry_budget_is_a_crashed_row(self):
        outcomes = run_supervised(
            _unit_worker,
            _tasks("a", "b"),
            n_jobs=2,
            retries=0,
            faults="sigkill:cell|a:0",
        )
        assert outcomes[0].status == "crashed"
        assert outcomes[0].error["type"].startswith("Broken")
        assert outcomes[1].status == "ok"

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_sigkill_mid_tree_shard_keeps_the_tree_bit_identical(
        self, monkeypatch, n_jobs
    ):
        # SIGKILL the worker cascading shard 0 mid-``absorb_arrays``
        # pipeline; the retried shard must leave the merged tree
        # bit-identical to a fault-free serial build.
        rng = np.random.default_rng(17)
        points = rng.uniform(0.0, 1.0, size=(1200, 3))
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        serial = CountingTree(points, n_jobs=1)
        monkeypatch.setenv("REPRO_FAULTS", "sigkill:tree|shard0:0:1")
        monkeypatch.setenv("REPRO_RETRIES", "1")
        monkeypatch.setenv("REPRO_BACKOFF", "0")
        chaotic = CountingTree(points, n_jobs=max(2, n_jobs))
        assert chaotic.n_points == serial.n_points
        for h in serial.levels:
            a, b = serial.level(h), chaotic.level(h)
            assert np.array_equal(a.coords, b.coords)
            assert np.array_equal(a.n, b.n)
            assert np.array_equal(a.half_counts, b.half_counts)


class TestShardSpec:
    def test_parse_round_trip(self):
        shard = parse_shard("1/3")
        assert shard == ShardSpec(index=1, count=3)
        assert str(shard) == "1/3"
        assert [shard.owns(i) for i in range(6)] == [
            False, True, False, False, True, False,
        ]

    @pytest.mark.parametrize(
        "spec", ["", "1", "a/b", "2/2", "-1/2", "0/0", "1/2/3"]
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError, match="shard spec"):
            parse_shard(spec)

    def test_shard_tasks_is_a_disjoint_cover(self):
        tasks = _tasks(*"abcdefg")
        slices = [
            shard_tasks(tasks, ShardSpec(index, 3)) for index in range(3)
        ]
        flat = [task for piece in slices for task in piece]
        assert sorted(t.key for t in flat) == sorted(t.key for t in tasks)
        assert shard_tasks(tasks, None) == list(tasks)


def _shard_journal(tmp_path, name, shard, cells, meta=None):
    path = tmp_path / name
    full_meta = {"profile": "quick", "n_cells": 4, "shard": shard}
    full_meta.update(meta or {})
    with RunJournal(path, meta=full_meta) as journal:
        for key in cells:
            journal.record_lease(key, 0, 0, None)
            journal.record_cell(key, "ok", 1, {"value": key}, None)
    return path


class TestMergeJournals:
    def test_merge_is_order_insensitive_and_sorted(self, tmp_path):
        s0 = _shard_journal(tmp_path, "s0.jsonl", "0/2", ["c", "a"])
        s1 = _shard_journal(tmp_path, "s1.jsonl", "1/2", ["b", "d"])
        out_a = tmp_path / "merged_a.jsonl"
        out_b = tmp_path / "merged_b.jsonl"
        summary = merge_journals([s0, s1], out_a)
        merge_journals([s1, s0], out_b)
        assert summary == {"shards": 2, "cells": 4, "path": str(out_a)}
        assert out_a.read_bytes() == out_b.read_bytes()
        records = load_records(out_a)
        # Operational records are dropped; cells are sorted by key; the
        # header no longer carries a shard spec.
        assert [r["kind"] for r in records] == ["header"] + ["cell"] * 4
        assert "shard" not in records[0]["meta"]
        assert [r["key"] for r in records[1:]] == ["a", "b", "c", "d"]

    def test_missing_shard_is_an_incomplete_partition(self, tmp_path):
        s0 = _shard_journal(tmp_path, "s0.jsonl", "0/3", ["a"])
        s2 = _shard_journal(tmp_path, "s2.jsonl", "2/3", ["c"])
        with pytest.raises(JournalError, match="missing shard.*1/3"):
            merge_journals([s0, s2], tmp_path / "out.jsonl")

    def test_duplicate_shard_rejected(self, tmp_path):
        s0 = _shard_journal(tmp_path, "s0.jsonl", "0/2", ["a"])
        dup = _shard_journal(tmp_path, "dup.jsonl", "0/2", ["b"])
        with pytest.raises(JournalError, match="appears twice"):
            merge_journals([s0, dup], tmp_path / "out.jsonl")

    def test_metadata_disagreement_rejected(self, tmp_path):
        s0 = _shard_journal(tmp_path, "s0.jsonl", "0/2", ["a"])
        s1 = _shard_journal(
            tmp_path, "s1.jsonl", "1/2", ["b"], meta={"profile": "full"}
        )
        with pytest.raises(JournalError, match="disagrees"):
            merge_journals([s0, s1], tmp_path / "out.jsonl")

    def test_overlapping_cells_rejected(self, tmp_path):
        s0 = _shard_journal(tmp_path, "s0.jsonl", "0/2", ["a"])
        s1 = _shard_journal(tmp_path, "s1.jsonl", "1/2", ["a"])
        with pytest.raises(JournalError, match="not a disjoint partition"):
            merge_journals([s0, s1], tmp_path / "out.jsonl")

    def test_unsharded_journal_rejected(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        with RunJournal(path, meta={"profile": "quick"}):
            pass
        with pytest.raises(JournalError, match="no shard spec"):
            merge_journals([path], tmp_path / "out.jsonl")


class TestStatusView:
    def _journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(
            path, meta={"profile": "quick", "n_cells": 3, "shard": "0/2"}
        ) as journal:
            journal.record_lease("a", 0, 0, None)
            journal.record_cell("a", "ok", 1, {"value": "a"}, None)
            journal.record_steal("b", 1, 0)
            journal.record_lease("b", 0, 0, None)
            journal.record_heartbeat(1, 1, 3, {"fabric.steals": 1})
        return path

    def test_journal_status_summarizes_progress(self, tmp_path):
        status = journal_status(self._journal(tmp_path))
        assert status["total"] == 3
        assert status["committed"] == 1
        assert status["statuses"]["ok"] == 1
        assert status["in_flight"] == ["b"]
        assert status["steals"] == 1
        assert status["heartbeat"]["done"] == 1

    def test_format_status_renders_every_section(self, tmp_path):
        text = format_status(journal_status(self._journal(tmp_path)))
        assert "shard:   0/2" in text
        assert "1/3 committed (33%)" in text
        assert "ok=1" in text
        assert "steals:  1" in text
        assert "leased:  b" in text
        assert "done=1 running=1 total=3" in text


SUITE_METHODS = ("MrCC", "LAC")


@pytest.fixture(scope="module")
def shard_dataset():
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=4,
            n_points=400,
            n_clusters=2,
            noise_fraction=0.1,
            max_irrelevant=1,
            seed=7,
        )
    )


def _stable(row):
    return {k: v for k, v in row.items() if k not in ("seconds", "peak_kb")}


def _run(dataset, **kwargs):
    return run_suite(
        [dataset],
        methods=SUITE_METHODS,
        profile="quick",
        track_memory=False,
        **kwargs,
    )


class TestShardedSuite:
    """--shard 0/2 + --shard 1/2 + merge == the unsharded run, bitwise."""

    def test_merge_reproduces_the_unsharded_report(
        self, shard_dataset, tmp_path
    ):
        unsharded_journal = tmp_path / "full.jsonl"
        full = _run(shard_dataset, journal=unsharded_journal)
        for spec in ("0/2", "1/2"):
            _run(
                shard_dataset,
                journal=tmp_path / f"s{spec[0]}.jsonl",
                shard=spec,
            )
        merged = tmp_path / "merged.jsonl"
        summary = merge_journals(
            [tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"], merged
        )
        assert summary["cells"] == 5  # the full quick grid
        # The merged header is byte-identical to the unsharded one...
        full_header = json.loads(
            unsharded_journal.read_text().splitlines()[0]
        )
        merged_header = json.loads(merged.read_text().splitlines()[0])
        assert merged_header == full_header
        # ...and resuming from the merged journal replays the entire
        # unsharded table without recomputing anything.
        with obs.capture() as tracer:
            resumed = _run(shard_dataset, journal=merged, resume=True)
        assert tracer.counters["fabric.cells_resumed"] == 5
        assert [_stable(r) for r in resumed] == [_stable(r) for r in full]

    def test_interrupted_shard_resumes_then_merges_bit_identically(
        self, shard_dataset, tmp_path
    ):
        full = _run(shard_dataset, journal=tmp_path / "full.jsonl")
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        _run(shard_dataset, journal=s0, shard="0/2")
        _run(shard_dataset, journal=s1, shard="1/2")
        # Interrupt shard 0 right after its first commit, leaving the
        # next lease dangling — as a kill -9 mid-cell would.
        lines = s0.read_text().splitlines()
        first_commit = next(
            number for number, line in enumerate(lines)
            if json.loads(line)["kind"] == "cell"
        )
        s0.write_text("\n".join(lines[: first_commit + 1]) + "\n")
        with obs.capture() as tracer:
            _run(shard_dataset, journal=s0, shard="0/2", resume=True)
        assert tracer.counters["fabric.cells_resumed"] == 1
        merged = tmp_path / "merged.jsonl"
        merge_journals([s0, s1], merged)
        resumed = _run(shard_dataset, journal=merged, resume=True)
        assert [_stable(r) for r in resumed] == [_stable(r) for r in full]

    def test_shard_headers_record_their_slice(self, shard_dataset, tmp_path):
        path = tmp_path / "s1.jsonl"
        _run(shard_dataset, journal=path, shard="1/2")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["meta"]["shard"] == "1/2"
        assert header["meta"]["n_cells"] == 5  # full grid, not the slice


class TestFabricCli:
    def test_merge_and_status(self, tmp_path, capsys):
        s0 = _shard_journal(tmp_path, "s0.jsonl", "0/2", ["a", "c"])
        s1 = _shard_journal(tmp_path, "s1.jsonl", "1/2", ["b", "d"])
        merged = tmp_path / "merged.jsonl"
        assert main(
            ["fabric", "merge", str(s0), str(s1), "-o", str(merged)]
        ) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard(s), 4 cell(s)" in out
        assert main(["fabric", "status", str(merged)]) == 0
        assert "4/4 committed (100%)" in capsys.readouterr().out

    def test_merge_failure_exits_2(self, tmp_path, capsys):
        s0 = _shard_journal(tmp_path, "s0.jsonl", "0/2", ["a"])
        code = main(
            ["fabric", "merge", str(s0), "-o", str(tmp_path / "out.jsonl")]
        )
        assert code == 2
        assert "missing shard" in capsys.readouterr().err

    def test_status_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(["fabric", "status", str(tmp_path / "nope.jsonl")]) == 2
        assert "no journal" in capsys.readouterr().err

    def test_fig5_shard_requires_a_journal(self, capsys):
        assert main(["fig5", "fig5s", "--shard", "0/2"]) == 2
        assert "--shard needs --journal" in capsys.readouterr().err
