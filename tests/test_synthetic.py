"""Tests for the synthetic dataset generator (Section IV-B recipe)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import ClusterSpec, SyntheticDatasetSpec, generate_dataset
from repro.types import NOISE_LABEL


class TestClusterSpec:
    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="relevant axis"):
            ClusterSpec(size=10, relevant_axes=(), means=(), stds=())

    def test_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError, match="match"):
            ClusterSpec(size=10, relevant_axes=(0, 1), means=(0.5,), stds=(0.1, 0.1))

    def test_rejects_non_positive_std(self):
        with pytest.raises(ValueError, match="positive"):
            ClusterSpec(size=10, relevant_axes=(0,), means=(0.5,), stds=(0.0,))


class TestSpecValidation:
    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError, match="too few points"):
            SyntheticDatasetSpec(dimensionality=5, n_points=10, n_clusters=5)

    def test_rejects_bad_noise_fraction(self):
        with pytest.raises(ValueError, match="noise_fraction"):
            SyntheticDatasetSpec(noise_fraction=1.0)

    def test_effective_dims_respect_irrelevant_budget(self):
        spec = SyntheticDatasetSpec(
            dimensionality=14, min_irrelevant=1, max_irrelevant=5
        )
        lo, hi = spec.effective_cluster_dims
        assert hi == 13  # at least one irrelevant axis
        assert lo == 9  # at most five irrelevant axes

    def test_effective_dims_clamped_by_window(self):
        spec = SyntheticDatasetSpec(
            dimensionality=30,
            min_cluster_dim=5,
            max_cluster_dim=17,
            min_irrelevant=1,
            max_irrelevant=5,
        )
        lo, hi = spec.effective_cluster_dims
        assert hi == 17
        assert lo == 17  # the [5, 17] window pins both ends


class TestGenerateDataset:
    def test_shapes_and_ranges(self, medium_dataset):
        ds = medium_dataset
        assert ds.points.shape == (4000, 10)
        assert np.all(ds.points >= 0.0)
        assert np.all(ds.points < 1.0)

    def test_ground_truth_is_internally_consistent(self, medium_dataset):
        medium_dataset.validate()

    def test_noise_fraction_matches_spec(self, medium_dataset):
        assert medium_dataset.noise_fraction == pytest.approx(0.15, abs=0.01)

    def test_cluster_count_matches_spec(self, medium_dataset):
        assert medium_dataset.n_clusters == 5
        assert all(c.size > 0 for c in medium_dataset.clusters)

    def test_deterministic_for_fixed_seed(self):
        spec = SyntheticDatasetSpec(
            dimensionality=6, n_points=500, n_clusters=2, seed=3
        )
        a = generate_dataset(spec)
        b = generate_dataset(spec)
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        base = dict(dimensionality=6, n_points=500, n_clusters=2)
        a = generate_dataset(SyntheticDatasetSpec(seed=1, **base))
        b = generate_dataset(SyntheticDatasetSpec(seed=2, **base))
        assert not np.array_equal(a.points, b.points)

    def test_clusters_concentrated_on_relevant_axes(self, medium_dataset):
        """Per-axis spread: relevant axes of a cluster must be much
        tighter than the global spread; irrelevant axes must not."""
        ds = medium_dataset
        for cluster in ds.clusters:
            members = ds.points[sorted(cluster.indices)]
            stds = members.std(axis=0)
            relevant = sorted(cluster.relevant_axes)
            irrelevant = [j for j in range(ds.dimensionality) if j not in relevant]
            assert max(stds[relevant]) < 0.1
            if irrelevant:
                assert min(stds[irrelevant]) > 0.15

    def test_zero_clusters_yields_pure_noise(self):
        spec = SyntheticDatasetSpec(
            dimensionality=4, n_points=300, n_clusters=0, noise_fraction=0.0
        )
        ds = generate_dataset(spec)
        assert ds.n_clusters == 0
        assert np.all(ds.labels == NOISE_LABEL)

    @given(
        d=st.integers(3, 12),
        n=st.integers(300, 1200),
        k=st.integers(1, 5),
        noise=st.floats(0.0, 0.4),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_generator_invariants(self, d, n, k, noise, seed):
        ds = generate_dataset(
            SyntheticDatasetSpec(
                dimensionality=d,
                n_points=n,
                n_clusters=k,
                noise_fraction=noise,
                seed=seed,
            )
        )
        ds.validate()
        assert ds.n_points == n
        assert ds.n_clusters == k
        sizes = sum(c.size for c in ds.clusters)
        assert sizes == n - int(round(n * noise))
