"""Tests for the MDL relevance cut (Section III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mdl import (
    MODEL_BITS_PER_PARTITION,
    mdl_cut_position,
    mdl_cut_threshold,
    partition_cost,
)


class TestPartitionCost:
    def test_empty_partition_is_free(self):
        assert partition_cost(np.array([])) == 0.0

    def test_constant_partition_costs_only_its_summary(self):
        cost = partition_cost(np.array([5.0, 5.0, 5.0]))
        assert cost == pytest.approx(MODEL_BITS_PER_PARTITION)

    def test_homogeneous_array_is_not_split(self):
        """The per-partition model cost stops MDL from splitting arrays
        whose axes are all (nearly) equally relevant."""
        values = np.array([55.0, 58.0, 60.0, 62.0, 65.0])
        assert mdl_cut_position(values) == 1

    def test_spread_costs_more(self):
        tight = partition_cost(np.array([10.0, 11.0, 12.0]))
        loose = partition_cost(np.array([0.0, 50.0, 100.0]))
        assert loose > tight


class TestMdlCutPosition:
    def test_clear_two_group_split(self):
        values = np.array([15.0, 16.0, 17.0, 80.0, 82.0, 85.0])
        p = mdl_cut_position(values)
        assert p == 4  # right partition starts at the first 80

    def test_homogeneous_values_keep_everything(self):
        values = np.array([50.0, 50.0, 50.0])
        assert mdl_cut_position(values) == 1

    def test_rejects_unsorted_input(self):
        with pytest.raises(ValueError, match="sorted"):
            mdl_cut_position(np.array([3.0, 1.0]))

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="empty"):
            mdl_cut_position(np.array([]))

    def test_single_value(self):
        assert mdl_cut_position(np.array([42.0])) == 1

    # The low mode is kept tight (width 1 against a 59-unit gap) so the
    # between-modes cut always beats any within-mode cut under the MDL
    # cost; a wide low mode (e.g. 10..20) admits rare examples where
    # splitting the low mode itself is genuinely cheaper.
    @given(
        low=st.lists(st.floats(10.0, 11.0), min_size=1, max_size=8),
        high=st.lists(st.floats(70.0, 90.0), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_bimodal_arrays_cut_between_modes(self, low, high):
        values = np.sort(np.array(low + high))
        p = mdl_cut_position(values)
        threshold = values[p - 1]
        # The cut essentially separates the two modes: every high value
        # sits in the relevant partition and at most one straggler from
        # the low mode joins it (near-ties at the low mode's own edge
        # are acceptable); keeping everything (p == 1) is also valid
        # when a mode is a single point.
        assert all(v >= threshold for v in high)
        low_in_relevant = sum(1 for v in low if v >= threshold)
        assert low_in_relevant <= 1 or p == 1


class TestMdlCutThreshold:
    def test_threshold_separates_relevant_axes(self):
        relevances = np.array([16.0, 75.0, 17.0, 80.0, 15.0])
        threshold = mdl_cut_threshold(relevances)
        relevant = relevances >= threshold
        assert relevant.tolist() == [False, True, False, True, False]

    def test_threshold_is_one_of_the_values(self):
        relevances = np.array([30.0, 10.0, 90.0])
        assert mdl_cut_threshold(relevances) in relevances

    def test_all_equal_marks_everything_relevant(self):
        relevances = np.array([40.0, 40.0, 40.0])
        threshold = mdl_cut_threshold(relevances)
        assert np.all(relevances >= threshold)

    @given(
        st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=1, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_at_least_one_axis_always_relevant(self, values):
        relevances = np.array(values)
        threshold = mdl_cut_threshold(relevances)
        assert np.any(relevances >= threshold)
