"""Behavioural tests for the related-work extras: PROCLUS, CLIQUE, DOC,
STATPC-lite."""

import numpy as np
import pytest

from repro.baselines import CLIQUE, DOC, PROCLUS, StatPCLite
from repro.evaluation.quality import quality


class TestPROCLUS:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_clusters"):
            PROCLUS(n_clusters=0)
        with pytest.raises(ValueError, match="avg_dims"):
            PROCLUS(n_clusters=2, avg_dims=1)

    def test_recovers_planted_structure(self, easy_dataset):
        result = PROCLUS(n_clusters=3, avg_dims=3, random_state=0).fit(
            easy_dataset.points
        )
        assert result.n_clusters >= 2
        assert quality(result.clusters, easy_dataset.clusters) > 0.6

    def test_every_cluster_selects_at_least_two_dims(self, easy_dataset):
        result = PROCLUS(n_clusters=3, avg_dims=3, random_state=0).fit(
            easy_dataset.points
        )
        assert all(c.dimensionality >= 2 for c in result.clusters)

    def test_dimension_budget_respected(self, medium_dataset):
        k, avg = 5, 4
        result = PROCLUS(n_clusters=k, avg_dims=avg, random_state=0).fit(
            medium_dataset.points
        )
        total = sum(c.dimensionality for c in result.clusters)
        assert total <= k * avg + 2 * k  # budget plus the 2-per-medoid floor


class TestCLIQUE:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="xi"):
            CLIQUE(xi=1)
        with pytest.raises(ValueError, match="tau"):
            CLIQUE(tau=0.0)

    def test_finds_dense_subspace_cluster(self, single_cluster_points):
        points, labels = single_cluster_points
        result = CLIQUE(xi=8, tau=0.02, max_subspace_dim=3).fit(points)
        assert result.n_clusters >= 1
        best = max(result.clusters, key=lambda c: c.size)
        assert {1, 3} <= best.relevant_axes
        member_recall = len(
            best.indices & set(np.flatnonzero(labels == 0))
        ) / 600
        assert member_recall > 0.8

    def test_tau_controls_density_floor(self, single_cluster_points):
        points, _ = single_cluster_points
        lax = CLIQUE(xi=8, tau=0.005, max_subspace_dim=2).fit(points)
        strict = CLIQUE(xi=8, tau=0.2, max_subspace_dim=2).fit(points)
        assert lax.extras["n_dense_subspaces"] >= strict.extras["n_dense_subspaces"]

    def test_uniform_noise_yields_little(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(800, 4))
        result = CLIQUE(xi=8, tau=0.05, max_subspace_dim=3).fit(points)
        assert result.n_clusters <= 2


class TestDOC:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="w"):
            DOC(n_clusters=1, w=1.5)

    def test_recovers_planted_box(self, single_cluster_points):
        points, labels = single_cluster_points
        result = DOC(n_clusters=1, w=0.08, random_state=0).fit(points)
        assert result.n_clusters == 1
        assert {1, 3} <= result.clusters[0].relevant_axes

    def test_quality_model_prefers_bigger_boxes(self, easy_dataset):
        result = DOC(n_clusters=3, random_state=0).fit(easy_dataset.points)
        assert quality(result.clusters, easy_dataset.clusters) > 0.5

    def test_monte_carlo_is_seeded(self, easy_dataset):
        a = DOC(n_clusters=2, random_state=7).fit(easy_dataset.points)
        b = DOC(n_clusters=2, random_state=7).fit(easy_dataset.points)
        assert np.array_equal(a.labels, b.labels)


class TestStatPCLite:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha_stat"):
            StatPCLite(alpha_stat=0.0)

    def test_finds_significant_regions(self, single_cluster_points):
        points, _ = single_cluster_points
        result = StatPCLite(random_state=0).fit(points)
        assert result.n_clusters >= 1
        best = max(result.clusters, key=lambda c: c.size)
        assert {1, 3} & best.relevant_axes

    def test_candidate_budget_bounds_regions(self, easy_dataset):
        result = StatPCLite(n_candidates=5, random_state=0).fit(
            easy_dataset.points
        )
        assert result.extras["n_regions"] <= 5

    def test_uniform_noise_yields_no_regions(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 1, size=(1000, 5))
        result = StatPCLite(random_state=0).fit(points)
        assert result.n_clusters <= 1
