"""Behavioural tests for the CFPC baseline."""

import numpy as np
import pytest

from repro.baselines import CFPC
from repro.evaluation.quality import quality


class TestParameters:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="w must"):
            CFPC(n_clusters=2, w=0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            CFPC(n_clusters=2, alpha=0.0)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            CFPC(n_clusters=2, beta=1.5)


class TestMining:
    def test_best_itemset_on_planted_box(self):
        """Around a medoid of a planted cluster the mined itemset must
        pick exactly the cluster's tight axes."""
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(500, 6))
        points[:300, 1] = rng.normal(0.5, 0.01, 300)
        points[:300, 4] = rng.normal(0.5, 0.01, 300)
        cfpc = CFPC(n_clusters=1, w=0.05)
        best = cfpc._mine_best_itemset(points, points[0], min_support=25)
        assert best is not None
        _, axes, mask = best
        assert {1, 4} <= set(axes)
        assert mask.sum() >= 250

    def test_no_itemset_below_support(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(100, 4))
        cfpc = CFPC(n_clusters=1, w=0.01)
        assert cfpc._mine_best_itemset(points, points[0], min_support=90) is None


class TestClustering:
    def test_recovers_planted_structure(self, easy_dataset):
        result = CFPC(n_clusters=3, random_state=0).fit(easy_dataset.points)
        assert result.n_clusters >= 2
        assert quality(result.clusters, easy_dataset.clusters) > 0.6

    def test_mines_at_most_k_clusters(self, easy_dataset):
        result = CFPC(n_clusters=2, random_state=0).fit(easy_dataset.points)
        assert result.n_clusters <= 2

    def test_beta_trades_size_for_dimensionality(self, easy_dataset):
        narrow = CFPC(n_clusters=3, beta=0.16, random_state=0).fit(
            easy_dataset.points
        )
        wide = CFPC(n_clusters=3, beta=0.34, random_state=0).fit(
            easy_dataset.points
        )
        dims_narrow = np.mean([c.dimensionality for c in narrow.clusters] or [0])
        dims_wide = np.mean([c.dimensionality for c in wide.clusters] or [0])
        assert dims_narrow >= dims_wide

    def test_seed_controls_randomness(self, easy_dataset):
        a = CFPC(n_clusters=3, random_state=1).fit(easy_dataset.points)
        b = CFPC(n_clusters=3, random_state=1).fit(easy_dataset.points)
        assert np.array_equal(a.labels, b.labels)

    def test_trials_respect_maxout(self, easy_dataset):
        result = CFPC(n_clusters=3, maxout=3, random_state=0).fit(
            easy_dataset.points
        )
        assert result.extras["trials_used"] <= 3
