"""Integration tests for the paper's headline claims (Sections I, IV-F, V).

These run the real pipeline at a reduced scale and check the *shape* of
each claim; the benchmark modules re-check them at larger sizes.
"""

import numpy as np
import pytest

from repro.baselines import HARP, P3C
from repro.core.mrcc import MrCC
from repro.data.suites import base_14d, first_group
from repro.evaluation.quality import evaluate_clustering
from repro.obs import perf_clock

SCALE = 0.05


@pytest.fixture(scope="module")
def dataset_14d():
    return base_14d(scale=SCALE)


class TestHeadlineClaims:
    def test_high_quality_across_first_group(self):
        """Claim (d): accurate — Quality stays high over the whole
        first group."""
        qualities = []
        for dataset in first_group(scale=SCALE):
            result = MrCC(normalize=False).fit(dataset.points)
            qualities.append(evaluate_clustering(result, dataset).quality)
        assert np.median(qualities) > 0.8
        assert min(qualities) > 0.6

    def test_faster_than_quadratic_competitors(self, dataset_14d):
        """Claim: MrCC outperforms the related work in execution time;
        the slowest competitors are orders of magnitude behind."""
        start = perf_clock()
        MrCC(normalize=False).fit(dataset_14d.points)
        mrcc_seconds = perf_clock() - start

        start = perf_clock()
        HARP(
            n_clusters=dataset_14d.n_clusters,
            max_noise_percent=dataset_14d.noise_fraction,
        ).fit(dataset_14d.points)
        harp_seconds = perf_clock() - start

        start = perf_clock()
        P3C().fit(dataset_14d.points)
        p3c_seconds = perf_clock() - start

        assert harp_seconds > 5.0 * mrcc_seconds
        assert p3c_seconds > mrcc_seconds

    def test_linear_time_in_points(self):
        """Claim (b): linear running time in the number of points."""
        small = base_14d(scale=SCALE)
        big = base_14d(scale=4 * SCALE)

        def timed(dataset):
            start = perf_clock()
            MrCC(normalize=False).fit(dataset.points)
            return perf_clock() - start

        t_small = min(timed(small) for _ in range(2))
        t_big = min(timed(big) for _ in range(2))
        ratio = t_big / max(t_small, 1e-9)
        # 4x the points must cost clearly less than the quadratic 16x.
        assert ratio < 12.0

    def test_deterministic_without_cluster_count(self, dataset_14d):
        """Claim (d): deterministic; no number-of-clusters parameter."""
        a = MrCC(normalize=False).fit(dataset_14d.points)
        b = MrCC(normalize=False).fit(dataset_14d.points)
        assert np.array_equal(a.labels, b.labels)
        assert a.n_clusters >= dataset_14d.n_clusters - 3

    def test_beta_cluster_count_bounded(self, dataset_14d):
        """Section IV-F: at most 33 β-clusters were ever found for at
        most 25 real clusters — β_k tracks the real cluster count."""
        result = MrCC(normalize=False).fit(dataset_14d.points)
        assert result.extras["n_beta_clusters"] <= 2 * dataset_14d.n_clusters

    def test_memory_linear_in_resolutions(self, dataset_14d):
        """Claim: memory linear in H (Figure 4e)."""
        tree_sizes = []
        for h in (4, 6, 8):
            model = MrCC(normalize=False, n_resolutions=h)
            model.fit(dataset_14d.points)
            tree_sizes.append(model.tree_.total_cells())
        # Cell counts grow, but by far less than the 2^(dH) worst case
        # (each level stores at most eta cells).
        assert tree_sizes[0] < tree_sizes[1] < tree_sizes[2]
        assert tree_sizes[2] <= (8 - 1) * dataset_14d.n_points
