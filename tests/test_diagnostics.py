"""Tests for the diagnostics/introspection helpers."""

import numpy as np
import pytest

from repro.core.counting_tree import CountingTree
from repro.core.diagnostics import (
    cluster_diagnostics,
    membership_confidence,
    tree_profile,
)
from repro.core.mrcc import MrCC
from repro.types import NOISE_LABEL


class TestTreeProfile:
    def test_profile_covers_all_levels(self, medium_dataset):
        tree = CountingTree(medium_dataset.points, n_resolutions=5)
        profiles = tree_profile(tree)
        assert [p.h for p in profiles] == [1, 2, 3, 4]

    def test_occupancy_decreases_with_depth(self, medium_dataset):
        tree = CountingTree(medium_dataset.points, n_resolutions=5)
        occupancies = [p.occupancy for p in tree_profile(tree)]
        assert all(a >= b for a, b in zip(occupancies, occupancies[1:]))

    def test_counts_are_consistent(self, medium_dataset):
        tree = CountingTree(medium_dataset.points)
        for profile in tree_profile(tree):
            level = tree.level(profile.h)
            assert profile.n_cells == level.n_cells
            assert profile.max_count == int(level.n.max())
            assert profile.as_row()["cells"] == level.n_cells


class TestClusterDiagnostics:
    @pytest.fixture(scope="class")
    def fitted(self, medium_dataset):
        result = MrCC(normalize=False).fit(medium_dataset.points)
        return medium_dataset, result

    def test_one_report_per_cluster(self, fitted):
        dataset, result = fitted
        reports = cluster_diagnostics(result, dataset.points)
        assert len(reports) == result.n_clusters

    def test_correlation_clusters_are_compact(self, fitted):
        """Clusters are tighter along their relevant axes; merged
        clusters (whose axes are a union over β-clusters) may approach
        but not reach isotropy."""
        dataset, result = fitted
        reports = cluster_diagnostics(result, dataset.points)
        values = sorted(r.compactness for r in reports)
        assert values[len(values) // 2] < 0.5  # median
        assert all(v < 1.0 for v in values)

    def test_sizes_match_clusters(self, fitted):
        dataset, result = fitted
        reports = cluster_diagnostics(result, dataset.points)
        for report, cluster in zip(reports, result.clusters):
            assert report.size == cluster.size
            assert report.dimensionality == cluster.dimensionality


class TestMembershipConfidence:
    def test_noise_scores_zero(self, medium_dataset):
        result = MrCC(normalize=False).fit(medium_dataset.points)
        confidence = membership_confidence(result, medium_dataset.points)
        noise = result.labels == NOISE_LABEL
        assert np.all(confidence[noise] == 0.0)

    def test_confidence_in_unit_interval(self, medium_dataset):
        result = MrCC(normalize=False).fit(medium_dataset.points)
        confidence = membership_confidence(result, medium_dataset.points)
        assert np.all(confidence >= 0.0)
        assert np.all(confidence <= 1.0)

    def test_central_members_beat_border_members(self, medium_dataset):
        result = MrCC(normalize=False).fit(medium_dataset.points)
        confidence = membership_confidence(result, medium_dataset.points)
        cluster = max(result.clusters, key=lambda c: c.size)
        members = np.asarray(sorted(cluster.indices))
        axes = sorted(cluster.relevant_axes)
        sub = medium_dataset.points[np.ix_(members, axes)]
        distance = np.abs(sub - sub.mean(axis=0)).mean(axis=1)
        central = members[np.argsort(distance)[:10]]
        border = members[np.argsort(distance)[-10:]]
        assert confidence[central].mean() > confidence[border].mean()
