"""Tests for the resilience layer: faults, journal, supervisor, suite.

The end-to-end classes formalize the acceptance criteria of the
resilient runner: a suite run with injected ``raise``/``hang``/``kill``
faults completes, emits structured error rows for exactly the faulted
cells, leaves untouched pairs bit-identical to a fault-free run, and an
interrupted run resumed from its journal reproduces the full table —
under both ``n_jobs=1`` and ``n_jobs=2``.
"""

import json
import math

import pytest

from repro import obs
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.experiments.runner import _is_better, run_suite
from repro.resilience import (
    FaultSpec,
    InjectedFault,
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    RunJournal,
    SimulatedKill,
    Task,
    load_journal,
    parse_faults,
    plan_faults,
    run_supervised,
    validate_record,
)
from repro.resilience.faults import fire
from repro.resilience.supervisor import _backoff_delay, _journal_view


def _unit_worker(value, *, attempt, fault, in_worker):
    """Minimal supervised worker: fault hook plus a failure trigger."""
    if fault is not None:
        fire(fault, in_worker)
    if value == "boom":
        raise RuntimeError("configured to fail")
    return {"value": value, "_trace": {"volatile": True}}


def _tasks(*values):
    return [Task(key=f"cell|{value}", args=(value,)) for value in values]


class TestParseFaults:
    def test_blank_spec_parses_empty(self):
        assert parse_faults("") == ()
        assert parse_faults("   ") == ()

    def test_full_grammar(self):
        faults = parse_faults("raise:mrcc:0:1, hang:lac:1 ,kill:clique:2")
        assert faults == (
            FaultSpec(kind="raise", match="mrcc", cell=0, attempts=1),
            FaultSpec(kind="hang", match="lac", cell=1, attempts=None),
            FaultSpec(kind="kill", match="clique", cell=2, attempts=None),
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:mrcc:0",  # unknown kind
            "raise:mrcc",  # missing cell
            "raise::0",  # empty match
            "raise:mrcc:one",  # non-integer cell
            "raise:mrcc:-1",  # negative cell
            "raise:mrcc:0:0",  # attempts < 1
        ],
    )
    def test_bad_directives_raise(self, spec):
        with pytest.raises(ValueError, match="REPRO_FAULTS"):
            parse_faults(spec)

    def test_attempts_window(self):
        fault = parse_faults("raise:x:0:2")[0]
        assert fault.sabotages(0) and fault.sabotages(1)
        assert not fault.sabotages(2)
        always = parse_faults("raise:x:0")[0]
        assert always.sabotages(99)


class TestPlanFaults:
    KEYS = ["18d|MrCC|{}", "18d|LAC|{'h':1}", "18d|LAC|{'h':2}"]

    def test_cell_index_counts_matches_only(self):
        plan = plan_faults(self.KEYS, parse_faults("raise:lac:1"))
        assert plan == {2: FaultSpec(kind="raise", match="lac", cell=1)}

    def test_match_is_case_insensitive(self):
        plan = plan_faults(self.KEYS, parse_faults("kill:MRCC:0"))
        assert list(plan) == [0]

    def test_unmatched_directive_raises(self):
        with pytest.raises(ValueError, match="matches no cell"):
            plan_faults(self.KEYS, parse_faults("raise:lac:2"))
        with pytest.raises(ValueError, match="matches no cell"):
            plan_faults(self.KEYS, parse_faults("raise:clique:0"))

    def test_later_directive_wins_a_shared_cell(self):
        plan = plan_faults(self.KEYS, parse_faults("raise:mrcc:0,kill:mrcc:0"))
        assert plan[0].kind == "kill"


class TestFire:
    def test_raise_kind(self):
        with pytest.raises(InjectedFault):
            fire("raise", in_worker=False)

    def test_kill_is_simulated_on_the_serial_path(self):
        with pytest.raises(SimulatedKill):
            fire("kill", in_worker=False)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fire("explode", in_worker=False)


class TestBackoffDelay:
    def test_deterministic_across_calls(self):
        assert _backoff_delay(0.1, 2, "k") == _backoff_delay(0.1, 2, "k")

    def test_exponential_envelope_with_bounded_jitter(self):
        base = 0.5
        for attempt in (1, 2, 3):
            delay = _backoff_delay(base, attempt, "cell|x")
            floor = base * 2.0 ** (attempt - 1)
            assert floor <= delay < floor * 1.25

    def test_disabled_backoff(self):
        assert _backoff_delay(0.0, 3, "k") == 0.0
        assert _backoff_delay(0.5, 0, "k") == 0.0


class TestJournalFile:
    def test_fresh_file_writes_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, meta={"profile": "quick"}):
            pass
        record = json.loads(path.read_text().splitlines()[0])
        assert record == {
            "schema": JOURNAL_SCHEMA_VERSION,
            "kind": "header",
            "meta": {"profile": "quick"},
        }

    def test_cell_records_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        row = {"quality": 0.123456789012345, "params": {"alpha": 1e-10}}
        with RunJournal(path) as journal:
            journal.record_cell("a", "ok", 1, row, None)
            journal.record_cell("b", "failed", 2, None, {"type": "X", "message": "m"})
        index = load_journal(path)
        assert index["a"]["row"] == row
        assert index["b"] == {
            "schema": JOURNAL_SCHEMA_VERSION,
            "kind": "cell",
            "key": "b",
            "status": "failed",
            "attempts": 2,
            "row": None,
            "error": {"type": "X", "message": "m"},
        }

    def test_reopening_appends_and_last_record_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("a", "failed", 1, None, {"type": "X", "message": ""})
        with RunJournal(path) as journal:
            journal.record_cell("a", "ok", 1, {"quality": 1.0}, None)
        assert path.read_text().count('"kind": "header"') == 1
        assert load_journal(path)["a"]["status"] == "ok"

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.record_cell("a", "ok", 1, None, None)

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("a", "ok", 1, {"quality": 1.0}, None)
        path.write_text(path.read_text() + '{"schema": 1, "kind": "ce')
        assert set(load_journal(path)) == {"a"}

    def test_malformed_middle_line_names_the_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("a", "ok", 1, None, None)
            journal.record_cell("b", "ok", 1, None, None)
        # Corrupt the first cell record; the torn-line tolerance only
        # covers the final line, so this must fail loudly.
        path.write_text(path.read_text().replace('"kind": "cell"', "<garbage>", 1))
        with pytest.raises(
            JournalError, match=r"run\.jsonl:2: torn journal record at byte offset"
        ):
            load_journal(path)

    @pytest.mark.parametrize(
        "record",
        [
            [],  # not an object
            {"schema": 99, "kind": "cell"},  # wrong schema version
            {"schema": 1, "kind": "blob"},  # unknown kind
            {"schema": 1, "kind": "header"},  # missing meta
            {  # unknown status
                "schema": 1, "kind": "cell", "key": "a", "status": "maybe",
                "attempts": 1, "row": None, "error": None,
            },
            {  # non-positive attempts
                "schema": 1, "kind": "cell", "key": "a", "status": "ok",
                "attempts": 0, "row": None, "error": None,
            },
            {  # extra key
                "schema": 1, "kind": "cell", "key": "a", "status": "ok",
                "attempts": 1, "row": None, "error": None, "extra": 1,
            },
        ],
    )
    def test_validate_record_rejects_broken_shapes(self, record):
        with pytest.raises(JournalError):
            validate_record(record)

    def test_journal_view_strips_volatile_keys(self):
        assert _journal_view({"quality": 1.0, "_trace": {"spans": []}}) == {
            "quality": 1.0
        }
        assert _journal_view(None) is None


class TestRunSupervisedSerial:
    def test_outcomes_in_task_order(self):
        outcomes = run_supervised(_unit_worker, _tasks("a", "b", "c"), faults="")
        assert [o.key for o in outcomes] == ["cell|a", "cell|b", "cell|c"]
        assert all(o.status == "ok" and o.attempts == 1 for o in outcomes)
        assert outcomes[1].row["value"] == "b"

    def test_exception_costs_exactly_its_cell(self):
        outcomes = run_supervised(
            _unit_worker, _tasks("a", "boom", "c"), retries=0, faults=""
        )
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        failed = outcomes[1]
        assert failed.row is None
        assert failed.error == {"type": "RuntimeError", "message": "configured to fail"}

    def test_retry_recovers_a_transient_fault(self):
        with obs.capture() as tracer:
            outcomes = run_supervised(
                _unit_worker,
                _tasks("a", "b"),
                retries=1,
                backoff=0.0,
                faults="raise:cell|b:0:1",
            )
        assert [o.status for o in outcomes] == ["ok", "retried"]
        assert outcomes[1].attempts == 2
        assert outcomes[1].row["value"] == "b"
        assert tracer.counters["fabric.retries"] == 1
        assert tracer.counters["fabric.cells_recovered"] == 1

    def test_retry_exhaustion_is_terminal(self):
        with obs.capture() as tracer:
            outcomes = run_supervised(
                _unit_worker,
                _tasks("a"),
                retries=2,
                backoff=0.0,
                faults="raise:cell|a:0",
            )
        assert outcomes[0].status == "failed"
        assert outcomes[0].attempts == 3
        assert outcomes[0].error["type"] == "InjectedFault"
        assert tracer.counters["fabric.retries"] == 2
        assert tracer.counters["fabric.cells_failed"] == 1

    def test_hang_is_reaped_by_the_deadline(self):
        outcomes = run_supervised(
            _unit_worker,
            _tasks("a", "b"),
            retries=0,
            timeout=0.3,
            faults="hang:cell|a:0",
        )
        assert [o.status for o in outcomes] == ["timeout", "ok"]
        assert outcomes[0].error["type"] == "CellTimeout"

    def test_kill_is_classified_as_crashed(self):
        outcomes = run_supervised(
            _unit_worker, _tasks("a", "b"), retries=0, faults="kill:cell|b:0"
        )
        assert [o.status for o in outcomes] == ["ok", "crashed"]
        assert outcomes[1].error["type"] == "SimulatedKill"


class TestRunSupervisedParallel:
    def test_outcomes_in_task_order(self):
        outcomes = run_supervised(
            _unit_worker, _tasks("a", "b", "c", "d"), n_jobs=2, faults=""
        )
        assert [o.key for o in outcomes] == [
            "cell|a", "cell|b", "cell|c", "cell|d",
        ]
        assert all(o.status == "ok" for o in outcomes)

    def test_worker_death_costs_exactly_its_cell(self):
        outcomes = run_supervised(
            _unit_worker,
            _tasks("a", "b", "c", "d"),
            n_jobs=2,
            retries=0,
            faults="kill:cell|c:0",
        )
        assert [o.status for o in outcomes] == ["ok", "ok", "crashed", "ok"]
        assert outcomes[2].error["type"].startswith("Broken")

    def test_hung_worker_is_killed_at_the_deadline(self):
        outcomes = run_supervised(
            _unit_worker,
            _tasks("a", "b", "c"),
            n_jobs=2,
            retries=0,
            timeout=1.0,
            faults="hang:cell|b:0",
        )
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]
        assert outcomes[1].error["type"] == "CellTimeout"

    def test_retry_recovers_after_a_crash(self):
        outcomes = run_supervised(
            _unit_worker,
            _tasks("a", "b"),
            n_jobs=2,
            retries=1,
            backoff=0.0,
            faults="kill:cell|a:0:1",
        )
        assert [o.status for o in outcomes] == ["retried", "ok"]
        assert outcomes[0].attempts == 2


class TestSupervisorJournal:
    def test_terminal_outcomes_are_journaled_without_volatile_keys(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            run_supervised(
                _unit_worker,
                _tasks("a", "boom"),
                retries=0,
                faults="",
                journal=journal,
            )
        index = load_journal(path)
        assert index["cell|a"]["status"] == "ok"
        assert index["cell|a"]["row"] == {"value": "a"}  # _trace stripped
        assert index["cell|boom"]["status"] == "failed"

    def test_resume_replays_without_executing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("cell|boom", "ok", 1, {"value": "journaled"}, None)
        with obs.capture() as tracer:
            outcomes = run_supervised(
                _unit_worker,
                _tasks("boom", "b"),  # "boom" would fail if executed
                retries=0,
                faults="",
                resume=load_journal(path),
            )
        assert outcomes[0].resumed is True
        assert outcomes[0].status == "ok"
        assert outcomes[0].row == {"value": "journaled"}
        assert outcomes[1].resumed is False
        assert tracer.counters["fabric.cells_resumed"] == 1


class TestIsBetter:
    """Regression tests: NaN quality must never win the tuning grid."""

    def test_nan_candidate_never_displaces_a_number(self):
        assert not _is_better({"quality": math.nan}, {"quality": -1e9})

    def test_numeric_candidate_displaces_a_nan_incumbent(self):
        assert _is_better({"quality": -1e9}, {"quality": math.nan})

    def test_nan_vs_nan_keeps_the_earlier_entry(self):
        assert not _is_better({"quality": math.nan}, {"quality": math.nan})

    def test_tie_keeps_the_earlier_entry(self):
        assert not _is_better({"quality": 0.5}, {"quality": 0.5})

    def test_strictly_greater_wins(self):
        assert _is_better({"quality": 0.6}, {"quality": 0.5})
        assert not _is_better({"quality": 0.4}, {"quality": 0.5})


# -- end-to-end acceptance over the real experiment grid ----------------

SUITE_METHODS = ("MrCC", "LAC")
# Quick grids: MrCC contributes 1 cell, LAC 4 (inv_h 1, 4, 8, 11).
SUITE_CELLS = 5


@pytest.fixture(scope="module")
def suite_dataset():
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=4,
            n_points=400,
            n_clusters=2,
            noise_fraction=0.1,
            max_irrelevant=1,
            seed=7,
        )
    )


@pytest.fixture(scope="module")
def baseline_rows(suite_dataset):
    """Fault-free reference table (memory pass off: timings only vary)."""
    return run_suite(
        [suite_dataset], methods=SUITE_METHODS, profile="quick", track_memory=False
    )


def _stable(row):
    """Deterministic row fields (timings vary run to run by nature)."""
    return {k: v for k, v in row.items() if k not in ("seconds", "peak_kb")}


class TestSuiteFaultInjection:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_untouched_pairs_are_bit_identical(
        self, suite_dataset, baseline_rows, n_jobs
    ):
        rows = run_suite(
            [suite_dataset],
            methods=SUITE_METHODS,
            profile="quick",
            track_memory=False,
            n_jobs=n_jobs,
            retries=0,
            faults="raise:mrcc:0",
        )
        # MrCC's quick grid is a single cell, so faulting it degrades the
        # whole pair into exactly one structured error row.
        mrcc = [r for r in rows if r["method"] == "MrCC"]
        assert len(mrcc) == 1
        assert _stable(mrcc[0]) == {
            "method": "MrCC",
            "dataset": suite_dataset.name,
            "status": "failed",
            "attempts": 1,
            "error": {
                "type": "InjectedFault",
                "message": "injected fault: planned exception",
            },
            "params": {"alpha": 1e-10, "n_resolutions": 4},
        }
        # The untouched LAC pair reproduces the fault-free run exactly.
        lac = [r for r in rows if r["method"] == "LAC"]
        lac_baseline = [r for r in baseline_rows if r["method"] == "LAC"]
        assert [_stable(r) for r in lac] == [_stable(r) for r in lac_baseline]

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_every_failure_mode_lands_on_its_cell(self, suite_dataset, n_jobs):
        rows = run_suite(
            [suite_dataset],
            methods=SUITE_METHODS,
            profile="quick",
            track_memory=False,
            n_jobs=n_jobs,
            retries=0,
            timeout=30.0,
            faults="raise:mrcc:0,hang:lac:0,kill:lac:1",
        )
        errors = {
            (r["method"], json.dumps(r["params"], sort_keys=True)): r
            for r in rows
            if r["status"] not in ("ok", "retried")
        }
        assert {
            (key, row["status"]) for key, row in errors.items()
        } == {
            (("MrCC", '{"alpha": 1e-10, "n_resolutions": 4}'), "failed"),
            (("LAC", '{"inv_h": 1.0}'), "timeout"),
            (("LAC", '{"inv_h": 4.0}'), "crashed"),
        }
        assert all("quality" not in row for row in errors.values())
        # LAC still reports a best row from its two surviving cells.
        lac_ok = [r for r in rows if r["method"] == "LAC" and r["status"] == "ok"]
        assert len(lac_ok) == 1
        assert lac_ok[0]["params"]["inv_h"] in (8.0, 11.0)

    def test_retry_budget_recovers_the_full_table(
        self, suite_dataset, baseline_rows
    ):
        rows = run_suite(
            [suite_dataset],
            methods=SUITE_METHODS,
            profile="quick",
            track_memory=False,
            retries=1,
            backoff=0.0,
            faults="raise:mrcc:0:1",
        )
        mrcc = [r for r in rows if r["method"] == "MrCC"]
        assert [r["status"] for r in mrcc] == ["retried"]
        assert mrcc[0]["attempts"] == 2
        # Modulo the recovery bookkeeping the table matches fault-free.
        def scrub(row):
            return {
                k: v for k, v in _stable(row).items()
                if k not in ("status", "attempts")
            }
        assert [scrub(r) for r in rows] == [scrub(r) for r in baseline_rows]


class TestSuiteResume:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_interrupted_run_resumes_bit_identically(
        self, suite_dataset, baseline_rows, tmp_path, n_jobs
    ):
        journal = tmp_path / f"run{n_jobs}.jsonl"
        full = run_suite(
            [suite_dataset],
            methods=SUITE_METHODS,
            profile="quick",
            track_memory=False,
            n_jobs=n_jobs,
            journal=journal,
        )
        lines = journal.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        cell_lines = [
            number for number, record in enumerate(records)
            if record["kind"] == "cell"
        ]
        assert len(cell_lines) == SUITE_CELLS  # one commit per cell
        # Simulate an interrupt right after the third committed cell;
        # any lease journaled past that point is left dangling, exactly
        # as a real crash would leave it.
        journal.write_text("\n".join(lines[: cell_lines[2] + 1]) + "\n")
        with obs.capture() as tracer:
            resumed = run_suite(
                [suite_dataset],
                methods=SUITE_METHODS,
                profile="quick",
                track_memory=False,
                n_jobs=n_jobs,
                journal=journal,
                resume=True,
            )
        assert tracer.counters["fabric.cells_resumed"] == 3
        assert [_stable(r) for r in resumed] == [_stable(r) for r in full]
        assert [_stable(r) for r in resumed] == [
            _stable(r) for r in baseline_rows
        ]
        # The journal now covers the whole grid; resuming again recomputes
        # nothing and still reproduces the table.
        with obs.capture() as tracer:
            replayed = run_suite(
                [suite_dataset],
                methods=SUITE_METHODS,
                profile="quick",
                track_memory=False,
                journal=journal,
                resume=True,
            )
        assert tracer.counters["fabric.cells_resumed"] == SUITE_CELLS
        assert [_stable(r) for r in replayed] == [_stable(r) for r in full]

    def test_resume_true_requires_a_journal(self, suite_dataset):
        with pytest.raises(ValueError, match="resume=True needs a journal"):
            run_suite(
                [suite_dataset],
                methods=("MrCC",),
                profile="quick",
                track_memory=False,
                resume=True,
            )

    def test_missing_resume_journal_means_a_fresh_run(
        self, suite_dataset, baseline_rows, tmp_path
    ):
        rows = run_suite(
            [suite_dataset],
            methods=SUITE_METHODS,
            profile="quick",
            track_memory=False,
            journal=tmp_path / "fresh.jsonl",
            resume=True,
        )
        assert [_stable(r) for r in rows] == [_stable(r) for r in baseline_rows]
