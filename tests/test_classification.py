"""Tests for the class-label evaluation (real-data protocol)."""

import numpy as np
import pytest

from repro.evaluation.classification import (
    evaluate_against_classes,
    majority_class_labels,
)
from repro.types import ClusteringResult


def _result(labels, axes_per_cluster):
    return ClusteringResult.from_labels(labels, axes_per_cluster)


class TestMajorityLabels:
    def test_clusters_predict_their_majority_class(self):
        result = _result([0, 0, 0, 1, 1, -1], [[0], [0]])
        classes = np.array([1, 1, 0, 0, 0, 0])
        predictions = majority_class_labels(result, classes)
        assert predictions[:3].tolist() == [1, 1, 1]
        assert predictions[3:5].tolist() == [0, 0]

    def test_noise_predicts_global_majority(self):
        result = _result([-1, -1, 0, 0], [[0]])
        classes = np.array([1, 1, 0, 0])
        predictions = majority_class_labels(result, classes)
        # Global majority is a tie broken to the first class value.
        assert predictions[0] == predictions[1]


class TestEvaluateAgainstClasses:
    def test_perfect_detector(self):
        result = _result([0, 0, 1, 1], [[0], [1]])
        classes = np.array([0, 0, 1, 1])
        report = evaluate_against_classes(result, classes)
        assert report.purity == 1.0
        assert report.clustering_error == 0.0
        assert report.f1[0] == 1.0
        assert report.f1[1] == 1.0

    def test_mixed_cluster_loses_purity(self):
        result = _result([0, 0, 0, 0], [[0]])
        classes = np.array([0, 0, 0, 1])
        report = evaluate_against_classes(result, classes)
        assert report.purity == pytest.approx(0.75)
        assert report.recall[1] == 0.0

    def test_no_clusters_scores_zero_purity(self):
        result = _result([-1, -1], [])
        classes = np.array([0, 1])
        report = evaluate_against_classes(result, classes)
        assert report.purity == 0.0
        assert 0.0 <= report.clustering_error <= 1.0

    def test_as_row_flattens(self):
        result = _result([0, 0], [[0]])
        report = evaluate_against_classes(result, np.array([0, 0]))
        row = report.as_row()
        assert "purity" in row
        assert "f1_0" in row

    def test_detector_on_kddcup_sim(self):
        """End-to-end: MrCC's clusters induce a strong ROI classifier
        on the simulated screening data."""
        from repro.core.mrcc import MrCC
        from repro.data.kddcup2008 import KddCup2008Spec, kddcup2008_split

        dataset = kddcup2008_split("left", "MLO", KddCup2008Spec(scale=0.05))
        result = MrCC(normalize=False).fit(dataset.points)
        report = evaluate_against_classes(result, dataset.labels)
        assert report.purity > 0.9
        assert report.f1[1] > 0.7  # malignant class recovered
