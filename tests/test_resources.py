"""Tests for the time/memory measurement harness."""

import numpy as np

from repro.evaluation.resources import measure


class TestMeasure:
    def test_returns_callable_value(self):
        assert measure(lambda: 41 + 1).value == 42

    def test_seconds_positive_and_sane(self):
        measurement = measure(lambda: sum(range(10000)))
        assert 0.0 < measurement.seconds < 5.0

    def test_peak_kb_reflects_allocation(self):
        small = measure(lambda: np.zeros(10))
        big = measure(lambda: np.zeros(2_000_000))
        assert big.peak_kb > small.peak_kb
        assert big.peak_kb > 10_000  # ~15.6 MB of float64

    def test_track_memory_false_skips_probe(self):
        measurement = measure(lambda: np.zeros(1000), track_memory=False)
        assert measurement.peak_kb == 0.0
        assert measurement.seconds >= 0.0

    def test_exceptions_propagate_and_tracing_stops(self):
        import tracemalloc

        def boom():
            raise RuntimeError("x")

        try:
            measure(boom)
        except RuntimeError:
            pass
        assert not tracemalloc.is_tracing()

    def test_as_row(self):
        row = measure(lambda: None).as_row()
        assert set(row) == {"seconds", "peak_kb"}
