"""Tests for the random-plane rotations behind the ``*_r`` suites."""

import numpy as np
import pytest

from repro.data.rotation import compose_random_rotation, givens_rotation, rotate_dataset
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset


class TestGivensRotation:
    def test_is_orthonormal(self):
        rot = givens_rotation(5, 1, 3, 0.7)
        assert np.allclose(rot @ rot.T, np.eye(5))

    def test_rotates_only_the_selected_plane(self):
        rot = givens_rotation(4, 0, 2, np.pi / 2)
        vector = np.array([1.0, 5.0, 0.0, 7.0])
        rotated = rot @ vector
        assert rotated[1] == pytest.approx(5.0)
        assert rotated[3] == pytest.approx(7.0)
        assert rotated[0] == pytest.approx(0.0, abs=1e-12)

    def test_rejects_degenerate_plane(self):
        with pytest.raises(ValueError, match="distinct"):
            givens_rotation(4, 2, 2, 0.1)


class TestComposeRandomRotation:
    def test_composition_is_orthonormal(self):
        rng = np.random.default_rng(5)
        rot = compose_random_rotation(8, n_planes=4, rng=rng)
        assert np.allclose(rot @ rot.T, np.eye(8), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_deterministic_given_rng(self):
        a = compose_random_rotation(6, rng=np.random.default_rng(9))
        b = compose_random_rotation(6, rng=np.random.default_rng(9))
        assert np.array_equal(a, b)


class TestRotateDataset:
    @pytest.fixture(scope="class")
    def pair(self):
        dataset = generate_dataset(
            SyntheticDatasetSpec(
                dimensionality=6, n_points=800, n_clusters=2, seed=21
            )
        )
        return dataset, rotate_dataset(dataset, seed=3)

    def test_name_gets_suffix(self, pair):
        original, rotated = pair
        assert rotated.name == original.name + "_r"

    def test_membership_is_preserved(self, pair):
        original, rotated = pair
        assert np.array_equal(original.labels, rotated.labels)
        for a, b in zip(original.clusters, rotated.clusters):
            assert a.indices == b.indices

    def test_points_back_in_unit_cube(self, pair):
        _, rotated = pair
        assert np.all(rotated.points >= 0.0)
        assert np.all(rotated.points < 1.0)

    def test_clusters_no_longer_axis_aligned(self, pair):
        """After rotation a cluster should be tight along *combinations*
        of axes: its covariance must have significant off-diagonals
        relative to an axis-aligned cluster."""
        _, rotated = pair
        cluster = max(rotated.clusters, key=lambda c: c.size)
        members = rotated.points[sorted(cluster.indices)]
        cov = np.cov(members.T)
        off_diag = np.abs(cov - np.diag(np.diag(cov))).max()
        assert off_diag > 1e-4

    def test_loaded_axes_cover_originals(self, pair):
        original, rotated = pair
        for a, b in zip(original.clusters, rotated.clusters):
            assert b.relevant_axes  # never empty
            assert len(b.relevant_axes) >= 1

    def test_metadata_records_rotation(self, pair):
        _, rotated = pair
        assert rotated.metadata["rotated"] is True
        rotation = rotated.metadata["rotation"]
        assert np.allclose(rotation @ rotation.T, np.eye(6), atol=1e-12)
