"""Tests for the consolidated environment-knob parsing (repro.env)."""

import pytest

from repro.env import (
    KNOWN_BACKENDS,
    backend_from_env,
    backoff_from_env,
    cext_sanitize_from_env,
    contracts_from_env,
    faults_from_env,
    jobs_from_env,
    model_dir_from_env,
    profile_from_env,
    propagate_trace_env,
    retries_from_env,
    serve_batch_from_env,
    serve_cache_from_env,
    serve_delay_from_env,
    task_timeout_from_env,
    trace_from_env,
)


class TestPropagateTraceEnv:
    def test_default_advertises_on_without_export(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        propagate_trace_env()
        assert trace_from_env() == ""

    def test_export_path_round_trips(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        propagate_trace_env("/tmp/out.json")
        assert trace_from_env() == "/tmp/out.json"

    def test_overrides_a_disabled_setting(self, monkeypatch):
        """--trace must win over an ambient REPRO_TRACE=0."""
        monkeypatch.setenv("REPRO_TRACE", "0")
        propagate_trace_env()
        assert trace_from_env() == ""


class TestJobsFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert jobs_from_env() == 1
        assert jobs_from_env(default=3) == 3

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert jobs_from_env() == 1

    def test_positive_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert jobs_from_env() == 4

    def test_whitespace_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 2 ")
        assert jobs_from_env() == 2

    @pytest.mark.parametrize("raw", ["four", "2.5", "1e3", "0x4"])
    def test_non_integer_names_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.raises(ValueError, match="REPRO_JOBS") as excinfo:
            jobs_from_env()
        assert raw in str(excinfo.value)

    @pytest.mark.parametrize("raw", ["0", "-1"])
    def test_non_positive_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.raises(ValueError, match="positive integer"):
            jobs_from_env()

    def test_runner_reexport_is_the_same_function(self):
        from repro.experiments.runner import jobs_from_env as runner_jobs

        assert runner_jobs is jobs_from_env


class TestProfileFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_from_env() == "quick"
        assert profile_from_env(default="full") == "full"

    @pytest.mark.parametrize("profile", ["quick", "full"])
    def test_valid_profiles(self, monkeypatch, profile):
        monkeypatch.setenv("REPRO_PROFILE", profile)
        assert profile_from_env() == profile

    def test_bad_profile_names_the_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "exhaustive")
        with pytest.raises(ValueError, match="REPRO_PROFILE.*'exhaustive'"):
            profile_from_env()

    def test_config_reexport_is_the_same_function(self):
        from repro.experiments.config import profile_from_env as config_profile

        assert config_profile is profile_from_env


class TestBackendFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_from_env() == "auto"
        assert backend_from_env(default="numpy") == "numpy"

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "   ")
        assert backend_from_env() == "auto"

    @pytest.mark.parametrize("backend", KNOWN_BACKENDS)
    def test_known_backends_pass_through(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        assert backend_from_env() == backend

    def test_case_and_whitespace_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  NumPy ")
        assert backend_from_env() == "numpy"

    def test_unknown_backend_names_the_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(ValueError, match="REPRO_BACKEND.*'fortran'"):
            backend_from_env()


class TestContractsFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        assert contracts_from_env() is True
        assert contracts_from_env(default=False) is False

    @pytest.mark.parametrize("raw", ["1", "true", "ON", "yes"])
    def test_truthy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CONTRACTS", raw)
        assert contracts_from_env() is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no"])
    def test_falsy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CONTRACTS", raw)
        assert contracts_from_env() is False

    def test_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "maybe")
        with pytest.raises(ValueError, match="REPRO_CONTRACTS.*'maybe'"):
            contracts_from_env()


class TestCextSanitizeFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CEXT_SANITIZE", raising=False)
        assert cext_sanitize_from_env() is False
        assert cext_sanitize_from_env(default=True) is True

    @pytest.mark.parametrize("raw", ["1", "true", "ON", "yes"])
    def test_truthy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CEXT_SANITIZE", raw)
        assert cext_sanitize_from_env() is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no"])
    def test_falsy_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CEXT_SANITIZE", raw)
        assert cext_sanitize_from_env() is False

    def test_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CEXT_SANITIZE", "asan")
        with pytest.raises(ValueError, match="REPRO_CEXT_SANITIZE.*'asan'"):
            cext_sanitize_from_env()


class TestRetriesFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert retries_from_env() == 0
        assert retries_from_env(default=2) == 2

    def test_valid_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        assert retries_from_env() == 3
        monkeypatch.setenv("REPRO_RETRIES", "0")
        assert retries_from_env(default=5) == 0

    @pytest.mark.parametrize("raw", ["two", "1.5", "-1"])
    def test_bad_values_name_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_RETRIES", raw)
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            retries_from_env()


class TestTaskTimeoutFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert task_timeout_from_env() is None
        assert task_timeout_from_env(default=30.0) == 30.0

    def test_seconds_parse_as_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert task_timeout_from_env() == 2.5

    @pytest.mark.parametrize("raw", ["0", "off", "false", "no"])
    def test_disabled_values_return_default(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", raw)
        assert task_timeout_from_env() is None

    @pytest.mark.parametrize("raw", ["soon", "-5"])
    def test_bad_values_name_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", raw)
        with pytest.raises(ValueError, match="REPRO_TASK_TIMEOUT"):
            task_timeout_from_env()


class TestBackoffFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKOFF", raising=False)
        assert backoff_from_env() == 0.05
        assert backoff_from_env(default=1.0) == 1.0

    def test_zero_disables_backoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKOFF", "0")
        assert backoff_from_env() == 0.0

    @pytest.mark.parametrize("raw", ["later", "-0.1"])
    def test_bad_values_name_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BACKOFF", raw)
        with pytest.raises(ValueError, match="REPRO_BACKOFF"):
            backoff_from_env()


class TestFaultsFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults_from_env() == ""
        assert faults_from_env(default="raise:mrcc:0") == "raise:mrcc:0"

    def test_spec_passes_through_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "  raise:mrcc:0,kill:lac:1 ")
        assert faults_from_env() == "raise:mrcc:0,kill:lac:1"


class TestModelDirFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MODEL_DIR", raising=False)
        assert model_dir_from_env() == "."
        assert model_dir_from_env(default="/models") == "/models"

    def test_value_passes_through_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_DIR", "  /srv/models ")
        assert model_dir_from_env() == "/srv/models"

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_DIR", "   ")
        assert model_dir_from_env() == "."


class TestServeBatchFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_BATCH", raising=False)
        assert serve_batch_from_env() == 4096
        assert serve_batch_from_env(default=64) == 64

    def test_positive_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_BATCH", " 512 ")
        assert serve_batch_from_env() == 512

    @pytest.mark.parametrize("raw", ["many", "0", "-3", "2.5"])
    def test_bad_values_name_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVE_BATCH", raw)
        with pytest.raises(ValueError, match="REPRO_SERVE_BATCH"):
            serve_batch_from_env()


class TestServeDelayFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_DELAY", raising=False)
        assert serve_delay_from_env() == 0.002
        assert serve_delay_from_env(default=0.1) == 0.1

    def test_zero_means_no_coalescing_wait(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_DELAY", "0")
        assert serve_delay_from_env() == 0.0

    def test_seconds_parse_as_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_DELAY", "0.25")
        assert serve_delay_from_env() == 0.25

    @pytest.mark.parametrize("raw", ["soon", "-0.01"])
    def test_bad_values_name_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVE_DELAY", raw)
        with pytest.raises(ValueError, match="REPRO_SERVE_DELAY"):
            serve_delay_from_env()


class TestServeCacheFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_CACHE", raising=False)
        assert serve_cache_from_env() == 4
        assert serve_cache_from_env(default=1) == 1

    def test_positive_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CACHE", "16")
        assert serve_cache_from_env() == 16

    @pytest.mark.parametrize("raw", ["lots", "0", "-1"])
    def test_bad_values_name_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVE_CACHE", raw)
        with pytest.raises(ValueError, match="REPRO_SERVE_CACHE"):
            serve_cache_from_env()
