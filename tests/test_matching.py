"""Tests for most-dominant-cluster matching (Section IV-A)."""

import numpy as np

from repro.evaluation.matching import dominant_found, dominant_real, overlap_matrix
from repro.types import SubspaceCluster


def _cluster(indices):
    return SubspaceCluster.from_iterables(indices, [0])


class TestOverlapMatrix:
    def test_counts_shared_points(self):
        found = [_cluster([0, 1, 2]), _cluster([3, 4])]
        real = [_cluster([1, 2, 3]), _cluster([4])]
        matrix = overlap_matrix(found, real)
        assert matrix.tolist() == [[2, 0], [1, 1]]

    def test_empty_inputs(self):
        assert overlap_matrix([], []).shape == (0, 0)
        assert overlap_matrix([_cluster([0])], []).shape == (1, 0)


class TestDominantSelection:
    def test_dominant_real_picks_largest_overlap(self):
        matrix = np.array([[2, 5], [4, 1]])
        assert dominant_real(matrix).tolist() == [1, 0]

    def test_dominant_found_picks_largest_overlap(self):
        matrix = np.array([[2, 5], [4, 1]])
        assert dominant_found(matrix).tolist() == [1, 0]

    def test_ties_break_to_lower_index(self):
        matrix = np.array([[3, 3]])
        assert dominant_real(matrix).tolist() == [0]

    def test_round_trip_on_perfect_match(self):
        found = [_cluster([0, 1]), _cluster([2, 3])]
        matrix = overlap_matrix(found, found)
        assert dominant_real(matrix).tolist() == [0, 1]
        assert dominant_found(matrix).tolist() == [0, 1]
