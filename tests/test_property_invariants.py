"""Cross-cutting property-based tests (hypothesis) on the full pipeline.

These generate small random planted datasets and check invariants that
must hold for *any* input: the output is a partition, boxes live inside
the unit cube, the evaluation metrics are bounded and behave
monotonically, and the pipeline is deterministic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beta_cluster import find_beta_clusters
from repro.core.counting_tree import CountingTree
from repro.core.mrcc import MrCC
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.evaluation.quality import quality, subspaces_quality
from repro.types import NOISE_LABEL, SubspaceCluster

dataset_strategy = st.builds(
    SyntheticDatasetSpec,
    dimensionality=st.integers(3, 8),
    n_points=st.integers(400, 1500),
    n_clusters=st.integers(1, 4),
    noise_fraction=st.floats(0.0, 0.3),
    max_irrelevant=st.integers(1, 2),
    seed=st.integers(0, 500),
)


class TestPipelineInvariants:
    @given(spec=dataset_strategy)
    @settings(max_examples=15, deadline=None)
    def test_output_is_a_partition(self, spec):
        dataset = generate_dataset(spec)
        result = MrCC(normalize=False).fit(dataset.points)
        covered = sum(cluster.size for cluster in result.clusters)
        assert covered + result.n_noise == dataset.n_points
        seen: set[int] = set()
        for cluster in result.clusters:
            assert not (seen & cluster.indices)
            seen |= cluster.indices

    @given(spec=dataset_strategy)
    @settings(max_examples=10, deadline=None)
    def test_beta_boxes_inside_unit_cube(self, spec):
        dataset = generate_dataset(spec)
        tree = CountingTree(dataset.points)
        for beta in find_beta_clusters(tree, alpha=1e-10):
            assert np.all(beta.lower >= 0.0)
            assert np.all(beta.upper <= 1.0)
            assert np.all(beta.lower <= beta.upper)
            assert beta.relevant_axes  # at least one axis is relevant

    @given(spec=dataset_strategy)
    @settings(max_examples=8, deadline=None)
    def test_determinism(self, spec):
        dataset = generate_dataset(spec)
        a = MrCC(normalize=False).fit(dataset.points)
        b = MrCC(normalize=False).fit(dataset.points)
        assert np.array_equal(a.labels, b.labels)

    @given(spec=dataset_strategy)
    @settings(max_examples=10, deadline=None)
    def test_quality_metrics_bounded(self, spec):
        dataset = generate_dataset(spec)
        result = MrCC(normalize=False).fit(dataset.points)
        q = quality(result.clusters, dataset.clusters)
        sq = subspaces_quality(result.clusters, dataset.clusters)
        assert 0.0 <= q <= 1.0
        assert 0.0 <= sq <= 1.0


class TestMetricProperties:
    @given(
        members=st.sets(st.integers(0, 60), min_size=1, max_size=40),
        extra=st.sets(st.integers(61, 99), min_size=0, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_quality_of_self_plus_junk(self, members, extra):
        """Adding junk points to a perfect found cluster can only lower
        the quality."""
        real = [SubspaceCluster.from_iterables(members, [0])]
        perfect = quality(real, real)
        padded = [SubspaceCluster.from_iterables(members | extra, [0])]
        assert quality(padded, real) <= perfect + 1e-12

    @given(
        members=st.sets(st.integers(0, 60), min_size=4, max_size=40),
        keep=st.floats(0.3, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_quality_monotone_in_coverage(self, members, keep):
        """Covering more of the real cluster never hurts quality."""
        ordered = sorted(members)
        n_small = max(1, int(len(ordered) * keep * 0.5))
        n_big = max(n_small, int(len(ordered) * keep))
        real = [SubspaceCluster.from_iterables(members, [0])]
        small = [SubspaceCluster.from_iterables(ordered[:n_small], [0])]
        big = [SubspaceCluster.from_iterables(ordered[:n_big], [0])]
        assert quality(big, real) >= quality(small, real) - 1e-12


class TestNoiseHandling:
    @given(noise=st.floats(0.0, 0.5), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_noise_points_do_not_create_clusters_alone(self, noise, seed):
        """Pure uniform noise never yields clusters at alpha=1e-10."""
        rng = np.random.default_rng(seed)
        n = 300 + int(1000 * noise)
        points = rng.uniform(0, 1, size=(n, 4))
        result = MrCC(normalize=False).fit(points)
        assert result.n_clusters == 0
        assert np.all(result.labels == NOISE_LABEL)
