"""Property-based tests for the observability counters.

The counters are not free-form diagnostics — they encode the paper's
work accounting, so algebraic invariants must hold for *any* input:
every counted convolution evaluates every cell of its level, a pivot is
either accepted or rejected, each accepted pivot pays exactly one MDL
cut, and the counts cannot depend on how the experiment grid was fanned
out over processes (``REPRO_JOBS``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MrCC, obs
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.experiments.runner import run_suite

dataset_strategy = st.builds(
    SyntheticDatasetSpec,
    dimensionality=st.integers(3, 8),
    n_points=st.integers(400, 1500),
    n_clusters=st.integers(1, 4),
    noise_fraction=st.floats(0.0, 0.3),
    max_irrelevant=st.integers(1, 2),
    seed=st.integers(0, 500),
)


def fit_counters(points, n_resolutions: int = 4) -> dict[str, int]:
    with obs.capture() as tracer:
        MrCC(normalize=False, n_resolutions=n_resolutions).fit(points)
        return dict(tracer.counters)


def level_counter(counters: dict[str, int], stem: str, h: int) -> int:
    return counters.get(f"{stem.format(h=h)}", 0)


class TestCounterInvariants:
    @given(spec=dataset_strategy)
    @settings(max_examples=12, deadline=None)
    def test_cells_visited_at_least_cells_created(self, spec):
        """Every searched level is convolved whole at least once, so the
        visit count can never undercut the cells the tree created."""
        dataset = generate_dataset(spec)
        counters = fit_counters(dataset.points)
        searched = [
            h
            for h in range(2, 4)
            if level_counter(counters, "convolution.level{h}.responses", h)
        ]
        assert searched, "MrCC always convolves at least one level"
        for h in searched:
            created = level_counter(counters, "tree.level{h}.cells", h)
            visited = level_counter(counters, "search.level{h}.cells_visited", h)
            assert created > 0
            assert visited >= created

    @given(spec=dataset_strategy)
    @settings(max_examples=12, deadline=None)
    def test_convolution_count_equals_candidate_cell_evaluations(self, spec):
        """``convolution.cells`` is exactly Σ_h responses_h × cells_h —
        each counted application evaluates every candidate cell of its
        level once (the responses are cached and re-masked, not
        recomputed)."""
        dataset = generate_dataset(spec)
        counters = fit_counters(dataset.points)
        expected = sum(
            level_counter(counters, "convolution.level{h}.responses", h)
            * level_counter(counters, "tree.level{h}.cells", h)
            for h in range(2, 4)
        )
        assert counters.get("convolution.cells", 0) == expected
        assert counters.get("convolution.responses", 0) == sum(
            level_counter(counters, "convolution.level{h}.responses", h)
            for h in range(2, 4)
        )

    @given(spec=dataset_strategy)
    @settings(max_examples=12, deadline=None)
    def test_pivot_accounting(self, spec):
        """Every pivot is tested once and either accepted or rejected;
        each accepted pivot pays exactly one MDL cut, and each find
        triggers one more search pass (plus the final empty pass)."""
        dataset = generate_dataset(spec)
        counters = fit_counters(dataset.points)
        pivots = counters.get("search.pivots", 0)
        accepted = counters.get("search.beta_accepted", 0)
        rejected = counters.get("search.beta_rejected", 0)
        assert pivots == accepted + rejected
        assert counters.get("search.tests", 0) == pivots
        assert counters.get("search.mdl_cuts", 0) == accepted
        assert counters.get("search.passes", 0) == accepted + 1
        assert counters.get("assemble.beta_clusters", 0) == accepted

    @given(spec=dataset_strategy)
    @settings(max_examples=6, deadline=None)
    def test_counters_are_deterministic(self, spec):
        dataset = generate_dataset(spec)
        assert fit_counters(dataset.points) == fit_counters(dataset.points)


class TestParallelCounterEquality:
    @pytest.fixture(scope="class")
    def suite_datasets(self):
        return [
            generate_dataset(
                SyntheticDatasetSpec(
                    dimensionality=5,
                    n_points=600,
                    n_clusters=2,
                    noise_fraction=0.1,
                    max_irrelevant=2,
                    seed=seed,
                )
            )
            for seed in (11, 12)
        ]

    def _suite_counters(self, datasets, n_jobs: int) -> dict[str, int]:
        with obs.capture() as tracer:
            run_suite(
                datasets, methods=("MrCC",), profile="quick",
                track_memory=False, n_jobs=n_jobs,
            )
            return dict(tracer.counters)

    def test_counters_identical_across_jobs_1_and_4(
        self, suite_datasets, monkeypatch
    ):
        """The worker-delta merge reproduces the serial counter totals
        exactly — fan-out is an implementation detail, not work."""
        # Ensure spawn-style workers would also come up traced; fork
        # workers inherit the capture() tracer directly either way.
        monkeypatch.setenv("REPRO_TRACE", "1")
        serial = self._suite_counters(suite_datasets, n_jobs=1)
        parallel = self._suite_counters(suite_datasets, n_jobs=4)
        assert serial, "the traced suite must produce counters"
        assert serial == parallel

    def test_worker_spans_are_merged(self, suite_datasets, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with obs.capture() as tracer:
            run_suite(
                suite_datasets, methods=("MrCC",), profile="quick",
                track_memory=False, n_jobs=4,
            )
            snapshot = tracer.snapshot()
        obs.validate_trace(snapshot)
        names = [span["name"] for span in snapshot["spans"]]
        assert names[0] == "suite.run"
        # Worker fits were re-attached under the suite span.
        fit_spans = [
            span
            for span in snapshot["spans"]
            if span["name"] == "fit"
        ]
        assert len(fit_spans) >= len(suite_datasets)
        suite_index = names.index("suite.run")
        assert all(
            snapshot["spans"][span["parent"]]["name"] == "suite.run"
            or span["parent"] >= suite_index
            for span in fit_spans
        )

    def test_parallel_traced_suite_with_uninstrumented_baseline(
        self, suite_datasets, monkeypatch
    ):
        """Baseline methods open no spans, so their worker deltas carry
        an empty span slice; the merge must handle that.  Regression:
        the empty slice crashed delta re-basing and aborted every
        traced parallel run that included a baseline (all fig5 rows)."""
        monkeypatch.setenv("REPRO_TRACE", "1")
        with obs.capture() as tracer:
            rows = run_suite(
                suite_datasets[:1], methods=("MrCC", "LAC"), profile="quick",
                track_memory=False, n_jobs=2,
            )
            snapshot = tracer.snapshot()
        obs.validate_trace(snapshot)
        assert {row["method"] for row in rows} == {"MrCC", "LAC"}
        assert snapshot["counters"], "MrCC cells must still be counted"

    def test_labels_unaffected_by_tracing_in_fit(self, suite_datasets):
        points = suite_datasets[0].points
        plain = MrCC().fit(points).labels
        with obs.capture():
            traced = MrCC().fit(points).labels
        assert np.array_equal(plain, traced)
