"""Behavioural tests for the LAC baseline."""

import numpy as np
import pytest

from repro.baselines import LAC
from repro.evaluation.quality import quality
from repro.types import NOISE_LABEL


class TestParameters:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="n_clusters"):
            LAC(n_clusters=0)

    def test_rejects_bad_inv_h(self):
        with pytest.raises(ValueError, match="inv_h"):
            LAC(n_clusters=2, inv_h=0.0)


class TestClustering:
    def test_partitions_without_noise(self, easy_dataset):
        """LAC produces a full partition — no noise set (Section IV)."""
        result = LAC(n_clusters=3, random_state=0).fit(easy_dataset.points)
        assert result.n_noise == 0
        assert np.all(result.labels != NOISE_LABEL)

    def test_recovers_planted_structure(self, easy_dataset):
        result = LAC(n_clusters=3, random_state=0).fit(easy_dataset.points)
        assert quality(result.clusters, easy_dataset.clusters) > 0.6

    def test_weights_concentrate_on_relevant_axes(self, single_cluster_points):
        points, labels = single_cluster_points
        result = LAC(n_clusters=2, inv_h=8.0, random_state=0).fit(points)
        weights = result.extras["weights"]
        # The cluster-dominated centroid must upweight axes 1 and 3.
        best = weights.max(axis=0)
        assert best[1] > 1.0 / points.shape[1]
        assert best[3] > 1.0 / points.shape[1]

    def test_sharper_inv_h_sharpens_weights(self, easy_dataset):
        soft = LAC(n_clusters=3, inv_h=1.0, random_state=0).fit(easy_dataset.points)
        sharp = LAC(n_clusters=3, inv_h=11.0, random_state=0).fit(easy_dataset.points)
        assert (
            sharp.extras["weights"].max(axis=1).mean()
            >= soft.extras["weights"].max(axis=1).mean()
        )

    def test_k_larger_than_structure_drops_empty_clusters(self, easy_dataset):
        result = LAC(n_clusters=20, random_state=0).fit(easy_dataset.points)
        assert result.n_clusters <= 20
        assert all(c.size > 0 for c in result.clusters)

    def test_converges_and_reports_iterations(self, easy_dataset):
        result = LAC(n_clusters=3, random_state=0).fit(easy_dataset.points)
        assert 1 <= result.extras["n_iter"] <= 50
