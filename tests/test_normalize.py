"""Unit and property tests for normalisation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.normalize import clip_unit_cube, minmax_normalize


class TestMinmaxNormalize:
    def test_maps_extremes_into_half_open_interval(self):
        points = np.array([[0.0, -5.0], [10.0, 5.0]])
        out = minmax_normalize(points)
        assert out.min() == 0.0
        assert out.max() < 1.0
        assert out[1, 0] == pytest.approx(1.0, abs=1e-12)

    def test_constant_axis_maps_to_zero(self):
        points = np.array([[3.0, 1.0], [3.0, 2.0]])
        out = minmax_normalize(points)
        assert np.all(out[:, 0] == 0.0)

    def test_preserves_ordering_per_axis(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(50, 3))
        out = minmax_normalize(points)
        for j in range(3):
            assert np.array_equal(np.argsort(points[:, j]), np.argsort(out[:, j]))

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError, match="2-d"):
            minmax_normalize(np.zeros(5))

    def test_empty_input_passes_through(self):
        out = minmax_normalize(np.zeros((0, 4)))
        assert out.shape == (0, 4)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 30), st.integers(1, 6)),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_output_always_in_unit_cube(self, points):
        out = minmax_normalize(points)
        assert np.all(out >= 0.0)
        assert np.all(out < 1.0)


class TestClipUnitCube:
    def test_clips_tails(self):
        points = np.array([[-0.1, 0.5], [1.2, 0.9]])
        out = clip_unit_cube(points)
        assert out.min() == 0.0
        assert out.max() < 1.0

    def test_interior_unchanged(self):
        points = np.array([[0.25, 0.75]])
        assert np.array_equal(clip_unit_cube(points), points)
