"""Shared fixtures: small, fast datasets with known structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset


@pytest.fixture(scope="session")
def easy_dataset():
    """5 axes, 3 well-separated clusters, mild noise — every method
    should do reasonably here."""
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=5,
            n_points=1500,
            n_clusters=3,
            noise_fraction=0.1,
            min_cluster_dim=3,
            max_cluster_dim=4,
            min_irrelevant=1,
            max_irrelevant=2,
            seed=14,
        )
    )


@pytest.fixture(scope="session")
def medium_dataset():
    """10 axes, 5 clusters, 15 % noise — the MrCC happy path."""
    return generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=10,
            n_points=4000,
            n_clusters=5,
            noise_fraction=0.15,
            max_irrelevant=3,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def single_cluster_points():
    """One tight 2-axis cluster over 5 axes plus uniform noise."""
    rng = np.random.default_rng(0)
    cluster = rng.uniform(0.0, 1.0, size=(600, 5))
    cluster[:, 1] = rng.normal(0.35, 0.01, size=600)
    cluster[:, 3] = rng.normal(0.62, 0.01, size=600)
    noise = rng.uniform(0.0, 1.0, size=(200, 5))
    points = np.clip(np.vstack([cluster, noise]), 0.0, np.nextafter(1.0, 0.0))
    labels = np.concatenate([np.zeros(600, dtype=np.int64),
                             np.full(200, -1, dtype=np.int64)])
    return points, labels
