"""Behavioural tests for the P3C baseline."""

import numpy as np
import pytest

from repro.baselines import P3C
from repro.baselines.p3c import _Interval
from repro.evaluation.quality import quality


class TestParameters:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="poisson_threshold"):
            P3C(poisson_threshold=0.0)


class TestIntervals:
    def test_interval_matches_bins(self):
        interval = _Interval(attribute=1, lo_bin=2, hi_bin=4, width_fraction=0.3)
        bins = np.array([[0, 2], [0, 5], [0, 3]])
        assert interval.matches(bins).tolist() == [True, False, True]

    def test_relevant_intervals_found_on_peaked_attribute(self):
        rng = np.random.default_rng(0)
        p3c = P3C()
        column = np.concatenate(
            [rng.integers(0, 16, size=500), np.full(400, 7)]
        )
        intervals = p3c._relevant_intervals(column, 16, attribute=0)
        assert intervals
        assert any(iv.lo_bin <= 7 <= iv.hi_bin for iv in intervals)

    def test_uniform_attribute_yields_no_intervals(self):
        rng = np.random.default_rng(1)
        p3c = P3C()
        column = rng.integers(0, 16, size=2000)
        assert p3c._relevant_intervals(column, 16, attribute=0) == []


class TestClustering:
    def test_recovers_planted_structure(self, easy_dataset):
        result = P3C().fit(easy_dataset.points)
        assert result.n_clusters >= 2
        assert quality(result.clusters, easy_dataset.clusters) > 0.5

    def test_cores_use_multiple_attributes(self, easy_dataset):
        result = P3C().fit(easy_dataset.points)
        assert all(c.dimensionality >= 2 for c in result.clusters)

    def test_uniform_noise_yields_no_clusters(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(1500, 4))
        result = P3C().fit(points)
        assert result.n_clusters == 0

    def test_threshold_controls_core_growth(self, easy_dataset):
        lax = P3C(poisson_threshold=1e-1).fit(easy_dataset.points)
        strict = P3C(poisson_threshold=1e-15).fit(easy_dataset.points)
        assert lax.extras["n_cores"] >= strict.extras["n_cores"]

    def test_extras_schema(self, easy_dataset):
        extras = P3C().fit(easy_dataset.points).extras
        assert {"n_intervals", "n_cores", "n_bins"} <= set(extras)
