"""Tests for correlation-cluster assembly (Algorithm 3)."""

import numpy as np

from repro.core.beta_cluster import BetaCluster
from repro.core.correlation_cluster import (
    UnionFind,
    build_correlation_clusters,
    label_points,
    merge_beta_clusters,
)
from repro.types import NOISE_LABEL


def _beta(lower, upper, relevant, idx=0):
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    return BetaCluster(
        lower=lower,
        upper=upper,
        relevant=np.asarray(relevant, dtype=bool),
        level=2,
        center_row=idx,
        relevances=np.zeros(lower.shape[0]),
    )


class TestUnionFind:
    def test_singletons_initially(self):
        uf = UnionFind(3)
        assert len(uf.components()) == 3

    def test_union_and_find(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) == uf.find(3)
        assert uf.find(0) != uf.find(2)

    def test_transitive_closure(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        components = sorted(sorted(m) for m in uf.components().values())
        assert components == [[0, 1, 2], [3, 4]]

    def test_idempotent_union(self):
        uf = UnionFind(2)
        uf.union(0, 1)
        uf.union(0, 1)
        assert len(uf.components()) == 1


class TestMergeBetaClusters:
    def test_overlapping_boxes_merge(self):
        a = _beta([0.0, 0.0], [0.5, 1.0], [True, False])
        b = _beta([0.4, 0.0], [0.8, 1.0], [True, False])
        assert merge_beta_clusters([a, b]) == [[0, 1]]

    def test_disjoint_boxes_stay_apart(self):
        a = _beta([0.0, 0.0], [0.3, 1.0], [True, False])
        b = _beta([0.6, 0.0], [0.9, 1.0], [True, False])
        assert merge_beta_clusters([a, b]) == [[0], [1]]

    def test_chain_merging(self):
        a = _beta([0.0, 0.0], [0.4, 1.0], [True, False])
        b = _beta([0.3, 0.0], [0.6, 1.0], [True, False])
        c = _beta([0.5, 0.0], [0.9, 1.0], [True, False])
        assert merge_beta_clusters([a, b, c]) == [[0, 1, 2]]

    def test_group_order_is_stable(self):
        a = _beta([0.6, 0.0], [0.9, 1.0], [True, False])
        b = _beta([0.0, 0.0], [0.3, 1.0], [True, False])
        groups = merge_beta_clusters([a, b])
        assert groups == [[0], [1]]


class TestLabelPoints:
    def test_points_inside_boxes_get_group_labels(self):
        betas = [
            _beta([0.0, 0.0], [0.3, 1.0], [True, False]),
            _beta([0.6, 0.0], [0.9, 1.0], [True, False]),
        ]
        groups = [[0], [1]]
        points = np.array([[0.1, 0.5], [0.7, 0.5], [0.45, 0.5]])
        labels = label_points(points, betas, groups)
        assert labels.tolist() == [0, 1, NOISE_LABEL]

    def test_merged_group_shares_one_label(self):
        betas = [
            _beta([0.0, 0.0], [0.4, 1.0], [True, False]),
            _beta([0.3, 0.0], [0.7, 1.0], [True, False]),
        ]
        groups = [[0, 1]]
        points = np.array([[0.1, 0.2], [0.65, 0.8]])
        labels = label_points(points, betas, groups)
        assert labels.tolist() == [0, 0]


class TestBuildCorrelationClusters:
    def test_empty_betas_all_noise(self):
        points = np.random.default_rng(0).uniform(0, 1, (10, 3))
        result = build_correlation_clusters(points, [])
        assert result.n_clusters == 0
        assert result.n_noise == 10
        assert result.extras["n_beta_clusters"] == 0

    def test_relevant_axes_union(self):
        betas = [
            _beta([0.0, 0.0, 0.0], [0.4, 1.0, 1.0], [True, False, False]),
            _beta([0.3, 0.0, 0.0], [0.7, 1.0, 1.0], [False, True, False]),
        ]
        points = np.array([[0.2, 0.5, 0.5]])
        result = build_correlation_clusters(points, betas)
        assert result.n_clusters == 1
        assert result.clusters[0].relevant_axes == frozenset({0, 1})

    def test_labels_and_clusters_agree(self, single_cluster_points):
        from repro.core.beta_cluster import find_beta_clusters
        from repro.core.counting_tree import CountingTree

        points, _ = single_cluster_points
        tree = CountingTree(points, n_resolutions=4)
        betas = find_beta_clusters(tree, alpha=1e-10)
        result = build_correlation_clusters(points, betas)
        for k, cluster in enumerate(result.clusters):
            assert cluster.indices == frozenset(
                np.flatnonzero(result.labels == k).tolist()
            )

    def test_every_point_in_at_most_one_cluster(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 1, (500, 3))
        betas = [
            _beta([0.0, 0.0, 0.0], [0.5, 1.0, 1.0], [True, False, False]),
            _beta([0.6, 0.0, 0.0], [1.0, 1.0, 1.0], [True, False, False]),
        ]
        result = build_correlation_clusters(points, betas)
        sizes = sum(c.size for c in result.clusters)
        assert sizes + result.n_noise == 500
