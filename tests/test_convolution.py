"""Tests for the Laplacian face-mask convolution (Section III-B)."""

import numpy as np

from repro.core.convolution import (
    cell_bounds,
    convolve_level,
    level_responses,
    overlap_mask,
)
from repro.core.counting_tree import CountingTree


def _tree(points, H=4):
    return CountingTree(np.asarray(points, dtype=np.float64), n_resolutions=H)


class TestLevelResponses:
    def test_isolated_cell_scores_2d_times_count(self):
        # A single occupied cell has no face neighbours: response 2d*n.
        points = np.tile([[0.1, 0.1, 0.1]], (7, 1))
        tree = _tree(points)
        level = tree.level(2)
        responses = level_responses(level)
        assert responses[0] == 2 * 3 * 7

    def test_neighbour_counts_subtract(self):
        # Two adjacent level-1 cells along axis 0 with 3 and 5 points.
        points = np.vstack(
            [np.tile([[0.2, 0.2]], (3, 1)), np.tile([[0.7, 0.2]], (5, 1))]
        )
        tree = _tree(points, H=3)
        level = tree.level(1)
        responses = level_responses(level)
        row_a = level.row_of(np.array([0, 0]))
        row_b = level.row_of(np.array([1, 0]))
        assert responses[row_a] == 2 * 2 * 3 - 5
        assert responses[row_b] == 2 * 2 * 5 - 3

    def test_uniform_grid_scores_near_zero(self):
        # A filled 4x4 level-2 grid with equal counts: interior cells
        # have response (2d - #neighbours) * c = (4 - 4) * c = 0.
        cells = [
            (x / 4 + 0.125, y / 4 + 0.125) for x in range(4) for y in range(4)
        ]
        points = np.repeat(np.asarray(cells), 2, axis=0)
        tree = _tree(points)
        level = tree.level(2)
        responses = level_responses(level)
        interior = [
            i
            for i in range(level.n_cells)
            if np.all(level.coords[i] > 0) and np.all(level.coords[i] < 3)
        ]
        assert interior
        assert np.all(responses[interior] == 0)


class TestOverlapMask:
    def test_box_claims_touching_cells(self):
        points = np.array([[0.1, 0.1], [0.6, 0.1], [0.9, 0.9]])
        tree = _tree(points)
        level = tree.level(2)
        # Box covering x in [0.25, 0.5]: touches the first cell (upper
        # bound 0.25 == box lower bound) but not the one at 0.9.
        mask = overlap_mask(level, np.array([0.25, 0.0]), np.array([0.5, 1.0]))
        assert mask[level.row_of(np.array([0, 0]))]
        assert not mask[level.row_of(np.array([3, 3]))]

    def test_cell_bounds_cover_unit_cube(self):
        points = np.array([[0.99, 0.01]])
        tree = _tree(points)
        lower, upper = cell_bounds(tree.level(2))
        assert np.all(lower >= 0.0)
        assert np.all(upper <= 1.0)


class TestConvolveLevel:
    def test_picks_densest_cell(self):
        points = np.vstack(
            [np.tile([[0.1, 0.1]], (20, 1)), np.tile([[0.9, 0.9]], (3, 1))]
        )
        tree = _tree(points)
        level = tree.level(2)
        responses = level_responses(level)
        excluded = np.zeros(level.n_cells, dtype=bool)
        row = convolve_level(tree, 2, responses, excluded)
        assert np.array_equal(level.coords[row], [0, 0])

    def test_respects_used_flags(self):
        points = np.vstack(
            [np.tile([[0.1, 0.1]], (20, 1)), np.tile([[0.9, 0.9]], (3, 1))]
        )
        tree = _tree(points)
        level = tree.level(2)
        responses = level_responses(level)
        excluded = np.zeros(level.n_cells, dtype=bool)
        best = convolve_level(tree, 2, responses, excluded)
        level.used[best] = True
        second = convolve_level(tree, 2, responses, excluded)
        assert second != best
        assert np.array_equal(level.coords[second], [3, 3])

    def test_respects_exclusion_and_exhaustion(self):
        points = np.array([[0.2, 0.2]])
        tree = _tree(points)
        level = tree.level(2)
        responses = level_responses(level)
        excluded = np.ones(level.n_cells, dtype=bool)
        assert convolve_level(tree, 2, responses, excluded) == -1

    def test_deterministic_tie_break(self):
        points = np.vstack(
            [np.tile([[0.1, 0.1]], (5, 1)), np.tile([[0.9, 0.9]], (5, 1))]
        )
        tree = _tree(points)
        level = tree.level(2)
        responses = level_responses(level)
        excluded = np.zeros(level.n_cells, dtype=bool)
        rows = {convolve_level(tree, 2, responses, excluded) for _ in range(5)}
        assert len(rows) == 1
