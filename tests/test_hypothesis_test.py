"""Tests for the six-region binomial significance test (Section III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.counting_tree import CountingTree
from repro.core.hypothesis_test import (
    CENTER_PROBABILITY,
    critical_value,
    critical_values,
    neighborhood_counts,
    significant_axes,
)


class TestCriticalValue:
    def test_matches_definition(self):
        """θ is the smallest t with P(X > t) <= alpha."""
        for n, alpha in [(100, 0.01), (50, 1e-5), (500, 1e-10)]:
            theta = critical_value(n, alpha)
            assert stats.binom.sf(theta, n, CENTER_PROBABILITY) <= alpha
            if theta > 0:
                assert stats.binom.sf(theta - 1, n, CENTER_PROBABILITY) > alpha

    def test_zero_points(self):
        assert critical_value(0, 0.01) == 0

    def test_monotone_in_alpha(self):
        # Stricter alpha -> larger critical value.
        assert critical_value(100, 1e-10) >= critical_value(100, 1e-2)

    def test_monotone_in_n(self):
        assert critical_value(1000, 1e-5) >= critical_value(100, 1e-5)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError, match="alpha"):
            critical_value(10, 0.0)
        with pytest.raises(ValueError, match="non-negative"):
            critical_value(-1, 0.5)

    def test_tiny_neighbourhoods_cannot_reject(self):
        """With alpha = 1e-10 and few points, even a full central
        region cannot beat the critical value — the paper's
        minimum-points caveat (Section V)."""
        theta = critical_value(10, 1e-10)
        assert theta >= 10

    @given(n=st.integers(1, 2000), alpha=st.sampled_from([1e-3, 1e-6, 1e-10]))
    @settings(max_examples=40, deadline=None)
    def test_vectorised_agrees_with_scalar(self, n, alpha):
        assert critical_values(np.array([n]), alpha)[0] == critical_value(n, alpha)


class TestNeighborhoodCounts:
    def _cluster_tree(self):
        """600 points tight in both axes of cell (1,1) at level 2, plus
        background spread along axis 1."""
        rng = np.random.default_rng(0)
        cluster = np.column_stack(
            [rng.normal(0.4, 0.01, 600), rng.normal(0.4, 0.01, 600)]
        )
        background = np.column_stack(
            [rng.uniform(0, 1, 200), rng.uniform(0, 1, 200)]
        )
        points = np.clip(
            np.vstack([cluster, background]), 0, np.nextafter(1.0, 0)
        )
        return CountingTree(points, n_resolutions=4)

    def test_requires_level_two(self):
        tree = self._cluster_tree()
        with pytest.raises(ValueError, match="parent level"):
            neighborhood_counts(tree, 1, 0)

    def test_counts_are_consistent(self):
        tree = self._cluster_tree()
        level2 = tree.level(2)
        row = level2.row_of(np.array([1, 1]))
        counts = neighborhood_counts(tree, 2, row)
        assert counts.center.shape == (2,)
        assert np.all(counts.center <= counts.total)
        assert np.all(counts.center >= 0)
        # The cluster (600 points) dominates the central region.
        assert np.all(counts.center >= 600)

    def test_relevances_in_range(self):
        tree = self._cluster_tree()
        level2 = tree.level(2)
        row = level2.row_of(np.array([1, 1]))
        relevances = neighborhood_counts(tree, 2, row).relevances()
        assert np.all(relevances >= 0.0)
        assert np.all(relevances <= 100.0)

    def test_cluster_axes_are_significant(self):
        tree = self._cluster_tree()
        level2 = tree.level(2)
        row = level2.row_of(np.array([1, 1]))
        counts = neighborhood_counts(tree, 2, row)
        assert np.all(significant_axes(counts, alpha=1e-10))

    def test_uniform_data_is_not_significant(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 1, size=(2000, 2))
        tree = CountingTree(points, n_resolutions=4)
        level2 = tree.level(2)
        hits = 0
        for row in range(level2.n_cells):
            counts = neighborhood_counts(tree, 2, row)
            if np.any(significant_axes(counts, alpha=1e-10)):
                hits += 1
        assert hits == 0
