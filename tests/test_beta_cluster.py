"""Tests for the β-cluster search (Algorithm 2)."""

import numpy as np

from repro.core.beta_cluster import BetaCluster, find_beta_clusters
from repro.core.counting_tree import CountingTree


def _tree(points, H=4):
    return CountingTree(np.asarray(points, dtype=np.float64), n_resolutions=H)


def _planted(rng, n, d, axes, means, std=0.01):
    points = rng.uniform(0, 1, size=(n, d))
    for axis, mean in zip(axes, means):
        points[:, axis] = rng.normal(mean, std, size=n)
    return points


class TestBetaClusterRecord:
    def test_relevant_axes_from_mask(self):
        beta = BetaCluster(
            lower=np.zeros(3),
            upper=np.ones(3),
            relevant=np.array([True, False, True]),
            level=2,
            center_row=0,
            relevances=np.array([80.0, 15.0, 70.0]),
        )
        assert beta.relevant_axes == frozenset({0, 2})

    def test_shares_space_requires_positive_overlap(self):
        a = BetaCluster(
            np.array([0.0, 0.0]), np.array([0.5, 1.0]),
            np.array([True, False]), 2, 0, np.zeros(2),
        )
        touching = BetaCluster(
            np.array([0.5, 0.0]), np.array([0.75, 1.0]),
            np.array([True, False]), 2, 1, np.zeros(2),
        )
        overlapping = BetaCluster(
            np.array([0.4, 0.0]), np.array([0.75, 1.0]),
            np.array([True, False]), 2, 2, np.zeros(2),
        )
        assert not a.shares_space_with(touching)
        assert a.shares_space_with(overlapping)
        assert overlapping.shares_space_with(a)


class TestFindBetaClusters:
    def test_single_planted_cluster_found(self, single_cluster_points):
        points, _ = single_cluster_points
        tree = _tree(points)
        betas = find_beta_clusters(tree, alpha=1e-10)
        assert len(betas) >= 1
        # The strongest beta-cluster pins the two planted axes.
        assert {1, 3} <= betas[0].relevant_axes

    def test_bounds_cover_cluster_mass(self, single_cluster_points):
        points, labels = single_cluster_points
        tree = _tree(points)
        beta = find_beta_clusters(tree, alpha=1e-10)[0]
        members = points[labels == 0]
        inside = np.all(
            (members >= beta.lower) & (members <= beta.upper), axis=1
        )
        assert inside.mean() > 0.9

    def test_irrelevant_axes_span_unit_interval(self, single_cluster_points):
        points, _ = single_cluster_points
        beta = find_beta_clusters(_tree(points), alpha=1e-10)[0]
        for axis in range(points.shape[1]):
            if axis not in beta.relevant_axes:
                assert beta.lower[axis] == 0.0
                assert beta.upper[axis] == 1.0

    def test_uniform_noise_yields_nothing(self):
        rng = np.random.default_rng(123)
        points = rng.uniform(0, 1, size=(3000, 4))
        betas = find_beta_clusters(_tree(points), alpha=1e-10)
        assert betas == []

    def test_two_separated_clusters(self):
        rng = np.random.default_rng(5)
        a = _planted(rng, 500, 6, axes=(0, 1, 2), means=(0.2, 0.2, 0.2))
        b = _planted(rng, 500, 6, axes=(0, 1, 2), means=(0.8, 0.8, 0.8))
        noise = rng.uniform(0, 1, size=(200, 6))
        points = np.clip(np.vstack([a, b, noise]), 0, np.nextafter(1.0, 0))
        betas = find_beta_clusters(_tree(points), alpha=1e-10)
        assert len(betas) >= 2
        # The two strongest finds must not share space.
        assert not betas[0].shares_space_with(betas[1])

    def test_max_beta_clusters_cap(self):
        rng = np.random.default_rng(5)
        a = _planted(rng, 500, 6, axes=(0, 1, 2), means=(0.2, 0.2, 0.2))
        b = _planted(rng, 500, 6, axes=(0, 1, 2), means=(0.8, 0.8, 0.8))
        points = np.clip(np.vstack([a, b]), 0, np.nextafter(1.0, 0))
        betas = find_beta_clusters(_tree(points), alpha=1e-10, max_beta_clusters=1)
        assert len(betas) == 1

    def test_alpha_gates_discovery(self):
        """A weak density bump passes a lax test but not a strict one."""
        rng = np.random.default_rng(11)
        bump = _planted(rng, 40, 4, axes=(0,), means=(0.3,), std=0.02)
        noise = rng.uniform(0, 1, size=(400, 4))
        points = np.clip(np.vstack([bump, noise]), 0, np.nextafter(1.0, 0))
        lax = find_beta_clusters(_tree(points), alpha=1e-2)
        strict = find_beta_clusters(_tree(points), alpha=1e-40)
        assert len(lax) >= len(strict)

    def test_deterministic(self, single_cluster_points):
        points, _ = single_cluster_points
        a = find_beta_clusters(_tree(points), alpha=1e-10)
        b = find_beta_clusters(_tree(points), alpha=1e-10)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x.lower, y.lower)
            assert np.array_equal(x.upper, y.upper)
            assert np.array_equal(x.relevant, y.relevant)

    def test_relevances_recorded(self, single_cluster_points):
        points, _ = single_cluster_points
        beta = find_beta_clusters(_tree(points), alpha=1e-10)[0]
        assert beta.relevances.shape == (points.shape[1],)
        planted = sorted({1, 3} & beta.relevant_axes)
        others = [j for j in range(points.shape[1]) if j not in beta.relevant_axes]
        if planted and others:
            assert beta.relevances[planted].min() > beta.relevances[others].max()
