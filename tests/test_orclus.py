"""Behavioural tests for the ORCLUS extra baseline."""

import numpy as np
import pytest

from repro.baselines import ORCLUS
from repro.data.rotation import rotate_dataset
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.evaluation.quality import quality


@pytest.fixture(scope="module")
def oriented_pair():
    dataset = generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=8,
            n_points=2000,
            n_clusters=3,
            noise_fraction=0.1,
            max_irrelevant=2,
            seed=5,
        )
    )
    return dataset, rotate_dataset(dataset, seed=9)


class TestParameters:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_clusters"):
            ORCLUS(n_clusters=0)
        with pytest.raises(ValueError, match="subspace_dim"):
            ORCLUS(n_clusters=2, subspace_dim=0)
        with pytest.raises(ValueError, match="alpha"):
            ORCLUS(n_clusters=2, alpha=1.0)


class TestClustering:
    def test_handles_rotated_clusters(self, oriented_pair):
        """ORCLUS's eigenbasis subspaces follow arbitrary orientations —
        the property the MrCC paper highlights in related work."""
        _, rotated = oriented_pair
        result = ORCLUS(n_clusters=3, subspace_dim=5, random_state=0).fit(
            rotated.points
        )
        assert result.n_clusters == 3
        assert quality(result.clusters, rotated.clusters) > 0.7

    def test_reasonable_on_axis_aligned_data(self, oriented_pair):
        dataset, _ = oriented_pair
        result = ORCLUS(n_clusters=3, subspace_dim=5, random_state=0).fit(
            dataset.points
        )
        assert quality(result.clusters, dataset.clusters) > 0.5

    def test_bases_are_orthonormal(self, oriented_pair):
        _, rotated = oriented_pair
        result = ORCLUS(n_clusters=3, subspace_dim=4, random_state=0).fit(
            rotated.points
        )
        for basis in result.extras["bases"]:
            gram = basis @ basis.T
            assert np.allclose(gram, np.eye(basis.shape[0]), atol=1e-8)

    def test_deterministic_given_seed(self, oriented_pair):
        dataset, _ = oriented_pair
        a = ORCLUS(n_clusters=3, random_state=3).fit(dataset.points)
        b = ORCLUS(n_clusters=3, random_state=3).fit(dataset.points)
        assert np.array_equal(a.labels, b.labels)

    def test_relevant_axes_nonempty(self, oriented_pair):
        dataset, _ = oriented_pair
        result = ORCLUS(n_clusters=3, random_state=0).fit(dataset.points)
        assert all(c.relevant_axes for c in result.clusters)
