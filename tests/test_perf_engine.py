"""Equivalence tests for the performance engine.

The fast paths — aggregated Counting-tree construction, the
incremental β-cluster search, and the parallel experiment runner —
must be *bit-identical* to the straightforward implementations they
replaced; these tests pin that contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beta_cluster import BetaCluster, _grow_bounds, find_beta_clusters
from repro.core.convolution import (
    convolve_level,
    level_responses,
    overlap_mask,
    overlap_rows,
)
from repro.core.counting_tree import (
    CountingTree,
    aggregate_levels,
    bin_points,
    reference_levels,
    tree_from_levels,
)
from repro.core.hypothesis_test import neighborhood_counts, significant_axes
from repro.core.mdl import mdl_cut_threshold
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.experiments.runner import jobs_from_env, run_suite


def _clustered_points(rng, eta, d):
    """Clustered data so coarse levels genuinely aggregate fine cells."""
    centers = rng.uniform(0.2, 0.8, size=(3, d))
    points = rng.normal(centers[rng.integers(0, 3, size=eta)], 0.05)
    return np.clip(points, 0.0, np.nextafter(1.0, 0.0))


class TestAggregatedBuildEquivalence:
    @given(
        eta=st.integers(1, 400),
        d=st.integers(1, 12),
        n_resolutions=st.sampled_from([3, 4, 5]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_per_level_rescan(self, eta, d, n_resolutions, seed):
        rng = np.random.default_rng(seed)
        points = _clustered_points(rng, eta, d)
        base = bin_points(points, n_resolutions)
        aggregated = aggregate_levels(base, n_resolutions)
        rescanned = reference_levels(base, n_resolutions, d)
        assert set(aggregated) == set(rescanned)
        for h in aggregated:
            fast, slow = aggregated[h], rescanned[h]
            np.testing.assert_array_equal(fast.coords, slow.coords)
            np.testing.assert_array_equal(fast.n, slow.n)
            np.testing.assert_array_equal(fast.half_counts, slow.half_counts)

    def test_tree_matches_reference_assembly(self):
        rng = np.random.default_rng(7)
        points = _clustered_points(rng, 2000, 6)
        tree = CountingTree(points, n_resolutions=4)
        reference = tree_from_levels(
            reference_levels(bin_points(points, 4), 4, 6), 6, 2000, 4
        )
        for h in tree.levels:
            np.testing.assert_array_equal(
                tree.level(h).coords, reference.level(h).coords
            )
            np.testing.assert_array_equal(tree.level(h).n, reference.level(h).n)


def _seed_search(tree, alpha):
    """The pre-optimisation Algorithm 2 loop: full masked argmax per
    level per restart, full-level overlap masks per found box."""
    responses = {h: level_responses(tree.level(h)) for h in tree.levels if h >= 2}
    excluded = {
        h: np.zeros(tree.level(h).n_cells, dtype=bool)
        for h in tree.levels
        if h >= 2
    }
    found = []
    while True:
        new_cluster = None
        for h in tree.levels:
            if h < 2:
                continue
            level = tree.level(h)
            row = convolve_level(tree, h, responses[h], excluded[h])
            if row < 0:
                continue
            level.used[row] = True
            counts = neighborhood_counts(tree, h, row)
            if not np.any(significant_axes(counts, alpha)):
                continue
            relevances = counts.relevances()
            threshold = mdl_cut_threshold(relevances)
            relevant = relevances >= threshold
            lower, upper = _grow_bounds(tree, h, row, relevant)
            new_cluster = BetaCluster(
                lower=lower, upper=upper, relevant=relevant,
                level=h, center_row=row, relevances=relevances,
            )
            break
        if new_cluster is None:
            return found
        found.append(new_cluster)
        for h in excluded:
            excluded[h] |= overlap_mask(
                tree.level(h), new_cluster.lower, new_cluster.upper
            )


class TestIncrementalSearchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_seed_search(self, seed):
        dataset = generate_dataset(
            SyntheticDatasetSpec(
                dimensionality=8,
                n_points=3000,
                n_clusters=4,
                noise_fraction=0.15,
                max_irrelevant=3,
                seed=seed,
            )
        )
        # Two separately built (identical) trees: the search mutates
        # usedCell flags, so the arms must not share one.
        incremental_tree = CountingTree(dataset.points, n_resolutions=5)
        seed_tree = CountingTree(dataset.points, n_resolutions=5)
        fast = find_beta_clusters(incremental_tree, alpha=1e-10)
        slow = _seed_search(seed_tree, alpha=1e-10)
        assert len(fast) == len(slow)
        for a, b in zip(fast, slow):
            np.testing.assert_array_equal(a.lower, b.lower)
            np.testing.assert_array_equal(a.upper, b.upper)
            np.testing.assert_array_equal(a.relevant, b.relevant)
            assert (a.level, a.center_row) == (b.level, b.center_row)

    @pytest.mark.parametrize("seed", [3, 4, 5, 6])
    def test_overlap_rows_matches_overlap_mask(self, seed):
        rng = np.random.default_rng(seed)
        points = _clustered_points(rng, 1500, 6)
        tree = CountingTree(points, n_resolutions=4)
        for _ in range(20):
            lower = np.where(rng.random(6) < 0.5, 0.0, rng.uniform(0, 0.9, 6))
            upper = np.where(rng.random(6) < 0.5, 1.0, lower + rng.uniform(0, 0.4, 6))
            upper = np.minimum(np.maximum(upper, lower), 1.0)
            for h in tree.levels:
                level = tree.level(h)
                expected = np.flatnonzero(overlap_mask(level, lower, upper))
                actual = np.sort(overlap_rows(level, lower, upper))
                np.testing.assert_array_equal(actual, expected)


class TestParallelRunnerDeterminism:
    @pytest.fixture(scope="class")
    def suite_datasets(self):
        return [
            generate_dataset(
                SyntheticDatasetSpec(
                    dimensionality=5,
                    n_points=600,
                    n_clusters=2,
                    noise_fraction=0.1,
                    max_irrelevant=2,
                    seed=seed,
                )
            )
            for seed in (11, 12)
        ]

    @staticmethod
    def _stable(rows):
        """Row view without the machine-load-dependent measurements."""
        return [
            {k: v for k, v in row.items() if k not in ("seconds", "peak_kb")}
            for row in rows
        ]

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert jobs_from_env() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert jobs_from_env() == 4
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            jobs_from_env()

    def test_parallel_rows_match_serial(self, suite_datasets, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = run_suite(
            suite_datasets, methods=("MrCC",), profile="quick",
            track_memory=False,
        )
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = run_suite(
            suite_datasets, methods=("MrCC",), profile="quick",
            track_memory=False,
        )
        assert self._stable(parallel) == self._stable(serial)
