"""End-to-end tests for the MrCC estimator (Section III)."""

import numpy as np
import pytest

from repro.core.mrcc import MrCC
from repro.data.rotation import rotate_dataset
from repro.evaluation.quality import evaluate_clustering, quality
from repro.types import NOISE_LABEL


class TestValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            MrCC(alpha=2.0)

    def test_rejects_bad_resolutions(self):
        with pytest.raises(ValueError, match="n_resolutions"):
            MrCC(n_resolutions=2)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="2-d"):
            MrCC().fit(np.zeros(5))


class TestClustering:
    def test_finds_planted_clusters(self, medium_dataset):
        result = MrCC(normalize=False).fit(medium_dataset.points)
        report = evaluate_clustering(result, medium_dataset)
        # Close clusters can legitimately merge at coarse resolutions,
        # so allow one fewer than planted — but the Quality must stay in
        # the paper's band.
        assert result.n_clusters >= medium_dataset.n_clusters - 1
        assert report.quality > 0.8
        assert report.subspaces_quality > 0.8

    def test_labels_match_clusters(self, medium_dataset):
        result = MrCC(normalize=False).fit(medium_dataset.points)
        for k, cluster in enumerate(result.clusters):
            assert cluster.indices == frozenset(
                np.flatnonzero(result.labels == k).tolist()
            )

    def test_pure_noise_finds_nothing(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(0, 1, size=(2000, 5))
        result = MrCC(normalize=False).fit(points)
        assert result.n_clusters == 0
        assert result.n_noise == 2000

    def test_deterministic(self, medium_dataset):
        a = MrCC(normalize=False).fit(medium_dataset.points)
        b = MrCC(normalize=False).fit(medium_dataset.points)
        assert np.array_equal(a.labels, b.labels)

    def test_estimator_attributes_populated(self, medium_dataset):
        estimator = MrCC(normalize=False)
        result = estimator.fit(medium_dataset.points)
        assert np.array_equal(estimator.labels_, result.labels)
        assert estimator.clusters_ == result.clusters
        assert estimator.relevant_axes_ == [c.relevant_axes for c in result.clusters]
        assert estimator.tree_ is not None
        assert estimator.beta_clusters_ is not None

    def test_fit_predict_returns_labels(self, easy_dataset):
        labels = MrCC(normalize=False).fit_predict(easy_dataset.points)
        assert labels.shape == (easy_dataset.n_points,)

    def test_no_cluster_count_parameter_needed(self, easy_dataset):
        """MrCC's headline property: the number of clusters is not an
        input and is still recovered."""
        result = MrCC(normalize=False).fit(easy_dataset.points)
        assert result.n_clusters == easy_dataset.n_clusters


class TestNormalization:
    def test_normalize_handles_raw_feature_ranges(self, easy_dataset):
        scaled = easy_dataset.points * 250.0 - 60.0
        raw = MrCC(normalize=True).fit(scaled)
        unit = MrCC(normalize=False).fit(easy_dataset.points)
        # Min-max normalisation shifts the grid slightly (it maps the
        # observed extremes, not the original cube), so allow one
        # cluster of slack around the unit-cube run.
        assert abs(raw.n_clusters - unit.n_clusters) <= 1
        assert raw.n_clusters >= 1

    def test_unnormalised_data_raises_without_normalize(self, easy_dataset):
        with pytest.raises(ValueError):
            MrCC(normalize=False).fit(easy_dataset.points + 10.0)


class TestRobustness:
    def test_robust_to_noise_increase(self, easy_dataset):
        """Section IV: MrCC's quality moves little as noise grows."""
        from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset

        qualities = []
        for noise in (0.05, 0.25):
            ds = generate_dataset(
                SyntheticDatasetSpec(
                    dimensionality=8,
                    n_points=3000,
                    n_clusters=3,
                    noise_fraction=noise,
                    max_irrelevant=2,
                    seed=31,
                )
            )
            result = MrCC(normalize=False).fit(ds.points)
            qualities.append(quality(result.clusters, ds.clusters))
        assert min(qualities) > 0.6
        assert abs(qualities[0] - qualities[1]) < 0.3

    def test_survives_rotation(self, medium_dataset):
        """Section IV-F: MrCC is only marginally affected by rotations
        (clusters in linearly combined subspaces)."""
        rotated = rotate_dataset(medium_dataset, seed=8)
        result = MrCC(normalize=False).fit(rotated.points)
        report = evaluate_clustering(result, rotated)
        assert result.n_clusters >= 1
        assert report.quality > 0.5

    def test_beta_cluster_count_stays_near_cluster_count(self, medium_dataset):
        """Section IV-F: the number of beta-clusters closely follows the
        number of real clusters (<= 33 for 25 clusters in the paper)."""
        result = MrCC(normalize=False).fit(medium_dataset.points)
        assert result.extras["n_beta_clusters"] <= 2 * medium_dataset.n_clusters

    def test_noise_labelled_noise(self, medium_dataset):
        result = MrCC(normalize=False).fit(medium_dataset.points)
        true_noise = medium_dataset.labels == NOISE_LABEL
        found_noise = result.labels == NOISE_LABEL
        # Most of the injected uniform noise must stay outside clusters.
        assert found_noise[true_noise].mean() > 0.7
