"""Tests for the repro-lint static-analysis layer (tools/repro_lint).

Every rule gets a bad fixture (must fire) and a good fixture (must stay
silent); suppression comments, path scoping and the CLI are exercised,
and the final test runs the linter over the real tree and asserts the
repository is violation-free at HEAD.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from tools.repro_lint import RULES, lint_paths, lint_source
from tools.repro_lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

CORE_PATH = "src/repro/core/module.py"
EXPERIMENTS_PATH = "src/repro/experiments/module.py"
BASELINES_PATH = "src/repro/baselines/module.py"
DATA_PATH = "src/repro/data/module.py"
TEST_PATH = "tests/test_module.py"


def codes(source, path=DATA_PATH):
    return [finding.code for finding in lint_source(source, path)]


class TestR001Randomness:
    BAD_MODULE_CALL = "import numpy as np\nx = np.random.rand(10)\n"
    BAD_STDLIB = "import random\nx = random.random()\n"
    BAD_UNSEEDED_RNG = "import numpy as np\nrng = np.random.default_rng()\n"
    BAD_BARE_RNG = (
        "from numpy.random import default_rng\nrng = default_rng()\n"
    )
    GOOD_SEEDED = "import numpy as np\nrng = np.random.default_rng(42)\n"
    GOOD_KWARG = "import numpy as np\nrng = np.random.default_rng(seed=7)\n"

    def test_module_level_draw_fires(self):
        assert codes(self.BAD_MODULE_CALL) == ["R001"]

    def test_stdlib_random_fires(self):
        assert codes(self.BAD_STDLIB) == ["R001"]

    def test_unseeded_default_rng_fires(self):
        assert codes(self.BAD_UNSEEDED_RNG) == ["R001"]

    def test_bare_default_rng_fires(self):
        assert codes(self.BAD_BARE_RNG) == ["R001"]

    def test_seeded_rng_is_clean(self):
        assert codes(self.GOOD_SEEDED) == []
        assert codes(self.GOOD_KWARG) == []

    def test_tests_are_exempt(self):
        assert codes(self.BAD_MODULE_CALL, path=TEST_PATH) == []

    def test_generator_method_calls_are_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.random(3)\n"
        assert codes(source) == []


class TestR002FloatEquality:
    BAD_SCALAR = "def f(x: float) -> bool:\n    return x == 0.5\n"
    BAD_NOTEQ = "def f(x: float) -> bool:\n    return 1.5 != x\n"
    GOOD_INT = "def f(x: int) -> bool:\n    return x == 0\n"
    GOOD_ISCLOSE = (
        "import math\n\ndef f(x: float) -> bool:\n"
        "    return math.isclose(x, 0.5)\n"
    )

    def test_float_literal_eq_fires(self):
        assert codes(self.BAD_SCALAR) == ["R002"]
        assert codes(self.BAD_NOTEQ) == ["R002"]

    def test_integer_and_isclose_are_clean(self):
        assert codes(self.GOOD_INT) == []
        assert codes(self.GOOD_ISCLOSE) == []

    def test_tests_are_exempt(self):
        assert codes(self.BAD_SCALAR, path=TEST_PATH) == []


class TestR003Determinism:
    BAD_CLOCK = "import time\nstamp = time.time()\n"
    BAD_SET_FOR = "total = 0\nfor x in {3, 1, 2}:\n    total += x\n"
    BAD_SET_LIST = "items = list({3, 1, 2})\n"
    BAD_SET_CALL = "items = list(set((3, 1, 2)))\n"
    GOOD_SORTED = "items = sorted({3, 1, 2})\n"
    GOOD_PERF = "import time\nstart = time.perf_counter()\n"

    def test_wall_clock_fires_in_core(self):
        assert codes(self.BAD_CLOCK, path=CORE_PATH) == ["R003"]

    def test_set_iteration_fires_in_experiments(self):
        assert codes(self.BAD_SET_FOR, path=EXPERIMENTS_PATH) == ["R003"]
        assert codes(self.BAD_SET_LIST, path=EXPERIMENTS_PATH) == ["R003"]
        assert codes(self.BAD_SET_CALL, path=EXPERIMENTS_PATH) == ["R003"]

    def test_comprehension_over_set_fires(self):
        source = "doubled = [x * 2 for x in {3, 1, 2}]\n"
        assert codes(source, path=CORE_PATH) == ["R003"]

    def test_sorted_set_and_perf_counter_are_clean(self):
        assert codes(self.GOOD_SORTED, path=CORE_PATH) == []
        # perf_counter is not a *wall* clock, so R003 stays silent; in
        # core it now belongs to R008's timing funnel instead.
        assert "R003" not in codes(self.GOOD_PERF, path=CORE_PATH)
        assert codes(self.GOOD_PERF, path="benchmarks/bench_x.py") == []

    def test_rule_only_binds_in_core_and_experiments(self):
        assert codes(self.BAD_CLOCK, path=DATA_PATH) == []
        assert codes(self.BAD_SET_FOR, path=BASELINES_PATH) == []


class TestR004Annotations:
    BAD_PARAM = "def fit(points):\n    return points\n"
    BAD_RETURN = "def fit(points: int):\n    return points\n"
    GOOD = "def fit(points: int) -> int:\n    return points\n"
    GOOD_PRIVATE = "def _helper(points):\n    return points\n"
    GOOD_METHOD = (
        "class M:\n"
        "    def fit(self, points: int) -> int:\n"
        "        return points\n"
    )

    def test_missing_param_annotation_fires(self):
        found = codes(self.BAD_PARAM, path=CORE_PATH)
        assert found == ["R004", "R004"]  # parameter and return

    def test_missing_return_annotation_fires(self):
        assert codes(self.BAD_RETURN, path=BASELINES_PATH) == ["R004"]

    def test_annotated_function_is_clean(self):
        assert codes(self.GOOD, path=CORE_PATH) == []
        assert codes(self.GOOD_METHOD, path=CORE_PATH) == []

    def test_private_functions_are_exempt(self):
        assert codes(self.GOOD_PRIVATE, path=CORE_PATH) == []

    def test_rule_only_binds_in_core_and_baselines(self):
        assert codes(self.BAD_PARAM, path=DATA_PATH) == []

    def test_nested_functions_are_exempt(self):
        source = (
            "def outer(x: int) -> int:\n"
            "    def closure(y):\n"
            "        return y\n"
            "    return closure(x)\n"
        )
        assert codes(source, path=CORE_PATH) == []


class TestR005DtypePins:
    BAD_ZEROS = "import numpy as np\nbuf = np.zeros(10)\n"
    BAD_ARANGE = "import numpy as np\nidx = np.arange(5)\n"
    GOOD_KWARG = "import numpy as np\nbuf = np.zeros(10, dtype=np.int64)\n"
    GOOD_POSITIONAL = "import numpy as np\nbuf = np.zeros(10, np.int64)\n"

    def test_dtypeless_allocation_fires_in_core(self):
        assert codes(self.BAD_ZEROS, path=CORE_PATH) == ["R005"]
        assert codes(self.BAD_ARANGE, path=CORE_PATH) == ["R005"]

    def test_pinned_dtype_is_clean(self):
        assert codes(self.GOOD_KWARG, path=CORE_PATH) == []
        assert codes(self.GOOD_POSITIONAL, path=CORE_PATH) == []

    def test_rule_only_binds_in_core(self):
        assert codes(self.BAD_ZEROS, path=BASELINES_PATH) == []


class TestR006MutableDefaults:
    BAD_LIST = "def f(items=[]):\n    return items\n"
    BAD_DICT = "def f(*, table={}):\n    return table\n"
    BAD_CALL = "def f(seen=set()):\n    return seen\n"
    GOOD = "def f(items=None):\n    return items or []\n"

    def test_mutable_defaults_fire(self):
        assert codes(self.BAD_LIST) == ["R006"]
        assert codes(self.BAD_DICT) == ["R006"]
        assert codes(self.BAD_CALL) == ["R006"]

    def test_none_default_is_clean(self):
        assert codes(self.GOOD) == []


class TestR007EnvAccess:
    BAD_READ = "import os\njobs = os.environ.get('REPRO_JOBS', '1')\n"
    BAD_SUBSCRIPT = "import os\nos.environ['REPRO_JOBS'] = '4'\n"
    BAD_GETENV = "import os\nprofile = os.getenv('REPRO_PROFILE')\n"
    BAD_IMPORT = "from os import environ\nx = environ.get('REPRO_JOBS')\n"
    GOOD_HELPER = "from repro.env import jobs_from_env\njobs = jobs_from_env()\n"
    GOOD_OS_USE = "import os\nsep = os.sep\n"
    ENV_MODULE_PATH = "src/repro/env.py"

    def test_environ_read_fires_in_package(self):
        assert codes(self.BAD_READ, path=EXPERIMENTS_PATH) == ["R007"]
        assert codes(self.BAD_READ, path=CORE_PATH) == ["R007"]

    def test_environ_write_fires(self):
        assert codes(self.BAD_SUBSCRIPT, path=CORE_PATH) == ["R007"]

    def test_getenv_fires(self):
        assert codes(self.BAD_GETENV, path=DATA_PATH) == ["R007"]

    def test_importing_environ_from_os_fires(self):
        assert codes(self.BAD_IMPORT, path=CORE_PATH) == ["R007"]

    def test_env_module_itself_is_exempt(self):
        assert codes(self.BAD_READ, path=self.ENV_MODULE_PATH) == []

    def test_outside_package_is_exempt(self):
        assert codes(self.BAD_READ, path="benchmarks/conftest.py") == []
        assert codes(self.BAD_READ, path="scripts/perf_baseline.py") == []

    def test_tests_are_exempt(self):
        assert codes(self.BAD_READ, path=TEST_PATH) == []

    def test_helper_and_unrelated_os_use_are_clean(self):
        assert codes(self.GOOD_HELPER, path=CORE_PATH) == []
        assert codes(self.GOOD_OS_USE, path=CORE_PATH) == []

    def test_line_suppression_silences_r007(self):
        source = (
            "import os\n"
            "x = os.environ.get('HOME')  # repro-lint: disable=R007\n"
        )
        assert codes(source, path=CORE_PATH) == []


class TestR008TimingFunnel:
    BAD_PERF = "import time\nstart = time.perf_counter()\n"
    BAD_MONOTONIC = "import time\nstart = time.monotonic()\n"
    BAD_RUSAGE = (
        "import resource\n"
        "peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss\n"
    )
    BAD_IMPORT_PERF = "from time import perf_counter\nstart = perf_counter()\n"
    BAD_IMPORT_RUSAGE = "from resource import getrusage\n"
    GOOD_CLOCK = "from repro.obs import perf_clock\nstart = perf_clock()\n"
    GOOD_SLEEP = "import time\ntime.sleep(0.1)\n"
    OBS_PATH = "src/repro/obs/trace.py"
    BENCH_PATH = "benchmarks/bench_obs_overhead.py"
    SCRIPT_PATH = "scripts/perf_baseline.py"

    def test_perf_counter_fires_in_core(self):
        assert codes(self.BAD_PERF, path=CORE_PATH) == ["R008"]

    def test_monotonic_fires(self):
        assert codes(self.BAD_MONOTONIC, path=EXPERIMENTS_PATH) == ["R008"]

    def test_getrusage_fires(self):
        assert codes(self.BAD_RUSAGE, path=CORE_PATH) == ["R008"]

    def test_imported_perf_counter_fires(self):
        # The import itself is flagged, so bare calls cannot hide.
        assert codes(self.BAD_IMPORT_PERF, path=CORE_PATH) == ["R008"]

    def test_imported_getrusage_fires(self):
        assert codes(self.BAD_IMPORT_RUSAGE, path=DATA_PATH) == ["R008"]

    def test_binds_outside_the_package_too(self):
        assert codes(self.BAD_PERF, path=self.SCRIPT_PATH) == ["R008"]
        assert codes(self.BAD_PERF, path=TEST_PATH) == ["R008"]

    def test_obs_module_is_exempt(self):
        assert codes(self.BAD_PERF, path=self.OBS_PATH) == []
        assert codes(self.BAD_RUSAGE, path=self.OBS_PATH) == []

    def test_benchmarks_are_exempt(self):
        assert codes(self.BAD_PERF, path=self.BENCH_PATH) == []

    def test_perf_clock_and_sleep_are_clean(self):
        assert codes(self.GOOD_CLOCK, path=CORE_PATH) == []
        assert codes(self.GOOD_SLEEP, path=DATA_PATH) == []

    def test_line_suppression_silences_r008(self):
        source = (
            "import time\n"
            "start = time.perf_counter()  # repro-lint: disable=R008\n"
        )
        assert codes(source, path=CORE_PATH) == []


class TestR009ExceptionHandling:
    BAD_BARE = "try:\n    work()\nexcept:\n    recover()\n"
    BAD_SWALLOW = "try:\n    work()\nexcept ValueError:\n    pass\n"
    BAD_ELLIPSIS = "try:\n    work()\nexcept OSError:\n    ...\n"
    BAD_BOTH = "try:\n    work()\nexcept:\n    pass\n"
    GOOD_NAMED = (
        "try:\n"
        "    work()\n"
        "except ValueError as error:\n"
        "    raise RuntimeError('context') from error\n"
    )
    GOOD_HANDLED = "try:\n    work()\nexcept KeyError:\n    value = None\n"
    RESILIENCE_PATH = "src/repro/resilience/supervisor.py"

    def test_bare_except_fires(self):
        assert codes(self.BAD_BARE, path=CORE_PATH) == ["R009"]

    def test_swallowed_except_fires(self):
        assert codes(self.BAD_SWALLOW, path=EXPERIMENTS_PATH) == ["R009"]

    def test_ellipsis_body_fires(self):
        assert codes(self.BAD_ELLIPSIS, path=DATA_PATH) == ["R009"]

    def test_bare_and_swallowed_both_reported(self):
        assert codes(self.BAD_BOTH, path=CORE_PATH) == ["R009", "R009"]

    def test_named_reraise_is_clean(self):
        assert codes(self.GOOD_NAMED, path=CORE_PATH) == []

    def test_handled_fallback_is_clean(self):
        assert codes(self.GOOD_HANDLED, path=CORE_PATH) == []

    def test_resilience_package_is_exempt(self):
        assert codes(self.BAD_SWALLOW, path=self.RESILIENCE_PATH) == []

    def test_tests_are_exempt(self):
        assert codes(self.BAD_SWALLOW, path=TEST_PATH) == []

    def test_line_suppression_silences_r009(self):
        source = (
            "try:\n"
            "    work()\n"
            "except ValueError:  # repro-lint: disable=R009\n"
            "    pass\n"
        )
        assert codes(source, path=CORE_PATH) == []


class TestR010NumbaImports:
    BAD_IMPORT = "import numba\n"
    BAD_FROM = "from numba import njit\n"
    BAD_SUBMODULE = "import numba.core.types\n"
    BAD_FROM_SUBMODULE = "from numba.core import types\n"
    KERNELS_PATH = "src/repro/core/kernels/numba_backend.py"

    def test_plain_import_fires(self):
        assert codes(self.BAD_IMPORT, path=CORE_PATH) == ["R010"]

    def test_from_import_fires(self):
        assert codes(self.BAD_FROM, path=EXPERIMENTS_PATH) == ["R010"]

    def test_submodule_import_fires(self):
        assert codes(self.BAD_SUBMODULE, path=DATA_PATH) == ["R010"]

    def test_from_submodule_fires(self):
        assert codes(self.BAD_FROM_SUBMODULE, path=CORE_PATH) == ["R010"]

    def test_kernels_package_is_exempt(self):
        assert codes(self.BAD_FROM, path=self.KERNELS_PATH) == []

    def test_tests_are_exempt(self):
        assert codes(self.BAD_IMPORT, path=TEST_PATH) == []

    def test_similar_prefix_is_clean(self):
        assert codes("import numbats\n", path=CORE_PATH) == []

    def test_line_suppression_silences_r010(self):
        source = "import numba  # repro-lint: disable=R010\n"
        assert codes(source, path=CORE_PATH) == []


class TestR011CtypesImports:
    BAD_IMPORT = "import ctypes\n"
    BAD_FROM = "from ctypes import CDLL\n"
    BAD_SUBMODULE = "import ctypes.util\n"
    BAD_FROM_SUBMODULE = "from ctypes.util import find_library\n"
    CEXT_PATH = "src/repro/core/kernels/cext_backend.py"
    KERNELS_PATH = "src/repro/core/kernels/numba_backend.py"

    def test_plain_import_fires(self):
        assert codes(self.BAD_IMPORT, path=CORE_PATH) == ["R011"]

    def test_from_import_fires(self):
        assert codes(self.BAD_FROM, path=EXPERIMENTS_PATH) == ["R011"]

    def test_submodule_import_fires(self):
        assert codes(self.BAD_SUBMODULE, path=DATA_PATH) == ["R011"]

    def test_from_submodule_fires(self):
        assert codes(self.BAD_FROM_SUBMODULE, path=CORE_PATH) == ["R011"]

    def test_cext_backend_module_is_exempt(self):
        assert codes(self.BAD_IMPORT, path=self.CEXT_PATH) == []

    def test_rest_of_kernels_package_is_not_exempt(self):
        # Unlike R010's package-wide carve-out, only the one audited
        # binding module may touch ctypes.
        assert codes(self.BAD_IMPORT, path=self.KERNELS_PATH) == ["R011"]

    def test_tests_are_exempt(self):
        assert codes(self.BAD_IMPORT, path=TEST_PATH) == []

    def test_similar_prefix_is_clean(self):
        assert codes("import ctypeslib\n", path=CORE_PATH) == []

    def test_line_suppression_silences_r011(self):
        source = "import ctypes  # repro-lint: disable=R011\n"
        assert codes(source, path=CORE_PATH) == []


class TestR012ModelFileIO:
    BAD_MEMMAP = (
        "import numpy as np\n"
        "arrays = np.memmap('golden.model', dtype=np.uint8, mode='r')\n"
    )
    BAD_OPEN = "blob = open('golden.model', 'rb').read()\n"
    BAD_SAVE = "import numpy as np\nnp.save('arrays.npy', x)\n"
    BAD_LOAD = "import numpy as np\nx = np.load('arrays.npy')\n"
    STORE_PATH = "src/repro/serve/store.py"
    SERVE_PATH = "src/repro/serve/model.py"

    def test_memmap_fires_anywhere_in_package(self):
        assert codes(self.BAD_MEMMAP, path=CORE_PATH) == ["R012"]
        assert codes(self.BAD_MEMMAP, path=DATA_PATH) == ["R012"]
        assert codes(self.BAD_MEMMAP, path=self.SERVE_PATH) == ["R012"]

    def test_open_fires_only_in_serve_modules(self):
        assert codes(self.BAD_OPEN, path=self.SERVE_PATH) == ["R012"]
        # File I/O elsewhere in the package is not model I/O.
        assert codes(self.BAD_OPEN, path=DATA_PATH) == []

    def test_numpy_io_fires_in_serve_modules(self):
        assert codes(self.BAD_SAVE, path=self.SERVE_PATH) == ["R012"]
        assert codes(self.BAD_LOAD, path=self.SERVE_PATH) == ["R012"]

    def test_store_module_is_exempt(self):
        assert codes(self.BAD_MEMMAP, path=self.STORE_PATH) == []
        assert codes(self.BAD_OPEN, path=self.STORE_PATH) == []

    def test_tests_are_exempt(self):
        assert codes(self.BAD_MEMMAP, path=TEST_PATH) == []

    def test_outside_package_is_exempt(self):
        assert codes(self.BAD_MEMMAP, path="scripts/tool.py") == []

    def test_line_suppression_silences_r012(self):
        source = (
            "import numpy as np\n"
            "m = np.memmap('f', dtype=np.uint8)"
            "  # repro-lint: disable=R012\n"
        )
        assert codes(source, path=CORE_PATH) == []


class TestR013PoolConstruction:
    BAD_EXECUTOR = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "pool = ProcessPoolExecutor(max_workers=2)\n"
    )
    BAD_DOTTED = (
        "import concurrent.futures\n"
        "pool = concurrent.futures.ProcessPoolExecutor()\n"
    )
    BAD_MP = "import multiprocessing\npool = multiprocessing.Pool(4)\n"
    BAD_MP_ALIAS = "import multiprocessing as mp\npool = mp.Pool()\n"
    FABRIC_PATH = "src/repro/fabric/supervisor.py"
    RESILIENCE_PATH = "src/repro/resilience/supervisor.py"
    KERNELS_PATH = "src/repro/core/kernels/dispatch.py"

    def test_executor_construction_fires_in_package(self):
        assert codes(self.BAD_EXECUTOR, path=CORE_PATH) == ["R013"]
        assert codes(self.BAD_DOTTED, path=EXPERIMENTS_PATH) == ["R013"]

    def test_multiprocessing_pool_fires(self):
        assert codes(self.BAD_MP, path=DATA_PATH) == ["R013"]
        assert codes(self.BAD_MP_ALIAS, path=DATA_PATH) == ["R013"]

    def test_fabric_package_is_exempt(self):
        assert codes(self.BAD_EXECUTOR, path=self.FABRIC_PATH) == []

    def test_resilience_shims_and_kernels_are_exempt(self):
        assert codes(self.BAD_EXECUTOR, path=self.RESILIENCE_PATH) == []
        assert codes(self.BAD_EXECUTOR, path=self.KERNELS_PATH) == []

    def test_tests_and_scripts_are_exempt(self):
        assert codes(self.BAD_EXECUTOR, path=TEST_PATH) == []
        assert codes(self.BAD_EXECUTOR, path="scripts/tool.py") == []

    def test_message_points_at_the_fabric(self):
        finding = lint_source(self.BAD_EXECUTOR, CORE_PATH)[0]
        assert "repro.fabric" in finding.message

    def test_line_suppression_silences_r013(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "pool = ProcessPoolExecutor()  # repro-lint: disable=R013\n"
        )
        assert codes(source, path=CORE_PATH) == []


class TestSuppression:
    def test_line_suppression(self):
        source = "import numpy as np\nx = np.random.rand(3)  # repro-lint: disable=R001\n"
        assert codes(source) == []

    def test_line_suppression_is_code_specific(self):
        source = "import numpy as np\nx = np.random.rand(3)  # repro-lint: disable=R005\n"
        assert codes(source) == ["R001"]

    def test_multi_code_suppression(self):
        source = (
            "import numpy as np\n"
            "def f(x=[]):  # repro-lint: disable=R006, R001\n"
            "    return np.random.rand(3)\n"
        )
        assert codes(source) == ["R001"]

    def test_file_level_suppression(self):
        source = (
            "# repro-lint: disable-file=R001\n"
            "import numpy as np\n"
            "a = np.random.rand(3)\n"
            "b = np.random.rand(3)\n"
        )
        assert codes(source) == []

    def test_disable_all(self):
        source = "x = 1.0 == 2.0  # repro-lint: disable=all\n"
        assert codes(source) == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        found = lint_source("def broken(:\n", path=DATA_PATH)
        assert [f.code for f in found] == ["R000"]

    def test_findings_carry_location(self):
        (finding,) = lint_source(
            "import numpy as np\nx = np.random.rand(3)\n", path=DATA_PATH
        )
        assert finding.line == 2
        assert finding.code == "R001"
        assert finding.render().startswith(f"{DATA_PATH}:2:")

    def test_rule_table_has_six_rules(self):
        assert len([c for c in RULES if c != "R000"]) >= 6


class TestRealTree:
    def test_repository_is_violation_free(self):
        findings = lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "tests",
                REPO_ROOT / "scripts",
                REPO_ROOT / "benchmarks",
            ]
        )
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "dirty.py:2:" in out

    def test_exit_two_on_missing_path(self, tmp_path):
        assert main([str(tmp_path / "nowhere")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert code in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "R001" in proc.stdout


@pytest.mark.parametrize(
    "code",
    [
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R006",
        "R007",
        "R008",
        "R009",
        "R012",
    ],
)
def test_every_rule_fires_on_its_bad_fixture(code):
    """Acceptance: each of the rules demonstrably fires."""
    bad_by_code = {
        "R001": (TestR001Randomness.BAD_MODULE_CALL, DATA_PATH),
        "R002": (TestR002FloatEquality.BAD_SCALAR, DATA_PATH),
        "R003": (TestR003Determinism.BAD_CLOCK, CORE_PATH),
        "R004": (TestR004Annotations.BAD_RETURN, CORE_PATH),
        "R005": (TestR005DtypePins.BAD_ZEROS, CORE_PATH),
        "R006": (TestR006MutableDefaults.BAD_LIST, DATA_PATH),
        "R007": (TestR007EnvAccess.BAD_READ, CORE_PATH),
        "R008": (TestR008TimingFunnel.BAD_PERF, CORE_PATH),
        "R009": (TestR009ExceptionHandling.BAD_BARE, CORE_PATH),
        "R012": (TestR012ModelFileIO.BAD_MEMMAP, CORE_PATH),
    }
    source, path = bad_by_code[code]
    assert code in codes(source, path=path)
