#!/usr/bin/env python
"""Time the MrCC hot paths on pinned workloads; write ``BENCH_core.json``.

Three hot paths are measured against the seed (pre-optimisation)
reference implementations that the core keeps for exactly this purpose:

* **tree build** — :func:`repro.core.counting_tree.aggregate_levels`
  (bin once, aggregate coarser levels from finer cells) versus
  :func:`repro.core.counting_tree.reference_levels` (one full rescan of
  the η points per level);
* **β-cluster search** — the incremental cursor/exclusion search of
  :func:`repro.core.beta_cluster.find_beta_clusters` versus the seed's
  full masked argmax + full-level overlap masks per restart;
* **end-to-end ``MrCC.fit``** — whose labels must not change versus the
  all-reference pipeline.

Results are written as a machine-readable JSON trajectory at the repo
root (``BENCH_core.json``), keyed by workload, so future PRs can extend
or compare against it.  Exit status is non-zero when a regression gate
fails (aggregated build must beat the rescan; on the full profile by
the ≥ 2× acceptance bar at H=5, d=15, η=100k).

Usage::

    PYTHONPATH=src python scripts/perf_baseline.py           # full profile
    PYTHONPATH=src python scripts/perf_baseline.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.core import kernels
from repro.core.beta_cluster import (
    BetaCluster,
    _grow_bounds,
    find_beta_clusters,
)
from repro.core.convolution import convolve_level, level_responses, overlap_mask
from repro.core.correlation_cluster import build_correlation_clusters
from repro.core.counting_tree import (
    CountingTree,
    aggregate_levels,
    bin_points,
    reference_levels,
    tree_from_levels,
)
from repro.core.hypothesis_test import neighborhood_counts, significant_axes
from repro.core.mdl import mdl_cut_threshold
from repro.core.mrcc import MrCC
from repro.obs import perf_clock

REPO_ROOT = Path(__file__).resolve().parents[1]
SCHEMA_VERSION = 2
TREE_SPEEDUP_FLOOR_FULL = 2.0
BETA_COMPILED_SPEEDUP_FLOOR = 5.0


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[kernels.Backend]:
    """Pin ``REPRO_BACKEND`` to ``name`` for the duration of one arm.

    ``kernels.active_backend`` re-resolves whenever the requested value
    changes, so flipping the variable is the complete switch.
    """
    previous = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = name
    try:
        yield kernels.active_backend()
    finally:
        if previous is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = previous


def collect_backends() -> dict[str, dict]:
    """Metadata plus measured JIT warm-up time per loadable backend.

    Warm-up (numba compilation or the one-off C build) runs here, once,
    before any timed arm, so the timed runs never include it; the cost
    is recorded instead of hidden.
    """
    rows: dict[str, dict] = {}
    for name in kernels.available_backends():
        backend = kernels.get_backend(name)
        start = perf_clock()
        kernels.warm_up(backend)
        rows[name] = {
            "compiled": backend.compiled,
            "version": backend.version,
            "warmup_seconds": perf_clock() - start,
        }
    return rows


def clustered_points(
    eta: int, d: int, n_clusters: int, noise_fraction: float, seed: int
) -> np.ndarray:
    """Pinned synthetic workload: Gaussian clusters plus uniform noise."""
    rng = np.random.default_rng(seed)
    n_noise = int(eta * noise_fraction)
    per_cluster = (eta - n_noise) // n_clusters
    parts = []
    for _ in range(n_clusters):
        center = rng.uniform(0.15, 0.85, size=d)
        parts.append(rng.normal(center, 0.02, size=(per_cluster, d)))
    parts.append(rng.uniform(0, 1, size=(eta - n_clusters * per_cluster, d)))
    return np.clip(np.vstack(parts), 0.0, np.nextafter(1.0, 0.0))


def best_of(repeats: int, fn):
    """Minimum wall-clock over ``repeats`` calls, plus the last result."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_clock()
        value = fn()
        best = min(best, perf_clock() - start)
    return best, value


def bench_obs_overhead(eta: int) -> dict:
    """Observability overhead on the fit workload (see the benchmark).

    Reuses :func:`bench_obs_overhead.measure_obs_overhead` so the perf
    trajectory and the pytest guard report the same numbers.
    """
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_obs_overhead import measure_obs_overhead
    finally:
        sys.path.pop(0)
    return measure_obs_overhead(eta)


def reference_find_beta_clusters(tree: CountingTree, alpha: float) -> list:
    """The seed β-cluster search: full masked argmax per level per
    restart, full-level overlap masks per found box.

    Kept verbatim (module functions it uses are still exported) as the
    timing/equivalence reference for the incremental search.
    """
    responses = {h: level_responses(tree.level(h)) for h in tree.levels if h >= 2}
    excluded = {
        h: np.zeros(tree.level(h).n_cells, dtype=bool)
        for h in tree.levels
        if h >= 2
    }
    found: list[BetaCluster] = []
    while True:
        new_cluster = None
        for h in tree.levels:
            if h < 2:
                continue
            level = tree.level(h)
            row = convolve_level(tree, h, responses[h], excluded[h])
            if row < 0:
                continue
            level.used[row] = True
            counts = neighborhood_counts(tree, h, row)
            if not np.any(significant_axes(counts, alpha)):
                continue
            relevances = counts.relevances()
            threshold = mdl_cut_threshold(relevances)
            relevant = relevances >= threshold
            lower, upper = _grow_bounds(tree, h, row, relevant)
            new_cluster = BetaCluster(
                lower=lower, upper=upper, relevant=relevant,
                level=h, center_row=row, relevances=relevances,
            )
            break
        if new_cluster is None:
            return found
        found.append(new_cluster)
        for h in excluded:
            excluded[h] |= overlap_mask(
                tree.level(h), new_cluster.lower, new_cluster.upper
            )


def bench_tree_build(eta: int, d: int, h: int, repeats: int, seed: int) -> dict:
    points = clustered_points(eta, d, n_clusters=10, noise_fraction=0.15, seed=seed)
    base = bin_points(points, h)
    aggregated_s, aggregated = best_of(repeats, lambda: aggregate_levels(base, h))
    reference_s, reference = best_of(repeats, lambda: reference_levels(base, h, d))
    for level in aggregated:
        a, b = aggregated[level], reference[level]
        if not (
            np.array_equal(a.coords, b.coords)
            and np.array_equal(a.n, b.n)
            and np.array_equal(a.half_counts, b.half_counts)
        ):
            raise AssertionError(f"aggregated level {level} differs from rescan")
    return {
        "params": {"eta": eta, "d": d, "H": h},
        "aggregated_seconds": aggregated_s,
        "reference_seconds": reference_s,
        "speedup": reference_s / aggregated_s,
    }


def _same_betas(left: list, right: list) -> bool:
    return len(left) == len(right) and all(
        np.array_equal(a.lower, b.lower)
        and np.array_equal(a.upper, b.upper)
        and np.array_equal(a.relevant, b.relevant)
        for a, b in zip(left, right)
    )


def bench_beta_search(
    eta: int,
    d: int,
    h: int,
    repeats: int,
    seed: int,
    backends: dict[str, dict],
    n_clusters: int = 40,
) -> dict:
    # Many clusters make the search restart-heavy, which is where the
    # incremental cursor/exclusion machinery earns its keep.
    points = clustered_points(
        eta, d, n_clusters=n_clusters, noise_fraction=0.10, seed=seed
    )
    alpha = 1e-10
    # All arms search the same pre-built tree (trees are identical by
    # the build equivalence), so only the search itself is timed; the
    # usedCell flags are reset between repeats.
    tree = CountingTree(points, n_resolutions=h)
    reference_tree = tree_from_levels(
        reference_levels(bin_points(points, h), h, d), d, eta, h
    )

    def reset_used(target: CountingTree) -> None:
        for level_number in target.levels:
            target.level(level_number).used[:] = False

    def incremental():
        reset_used(tree)
        return find_beta_clusters(tree, alpha)

    def reference():
        reset_used(reference_tree)
        return reference_find_beta_clusters(reference_tree, alpha)

    # The seed search arm is a numpy-era yardstick; pin it to the
    # oracle backend so the reference number means the same everywhere.
    with use_backend("numpy"):
        reference_s, reference_betas = best_of(repeats, reference)

    row = {
        "params": {"eta": eta, "d": d, "H": h, "alpha": alpha},
        "reference_seconds": reference_s,
        "n_beta_clusters": len(reference_betas),
        "backends": {},
    }
    for name in backends:
        with use_backend(name):
            incremental_s, betas = best_of(repeats, incremental)
        if not _same_betas(betas, reference_betas):
            raise AssertionError(
                f"{name} search differs from the seed search"
            )
        row["backends"][name] = {
            "incremental_seconds": incremental_s,
            "speedup": reference_s / incremental_s,
        }
    numpy_s = row["backends"]["numpy"]["incremental_seconds"]
    for name, arm in row["backends"].items():
        arm["speedup_vs_numpy_incremental"] = numpy_s / arm["incremental_seconds"]
    return row


def bench_fit(
    eta: int,
    d: int,
    h: int,
    repeats: int,
    seed: int,
    backends: dict[str, dict],
    reference_repeats: int | None = None,
    n_clusters: int = 8,
) -> dict:
    points = clustered_points(
        eta, d, n_clusters=n_clusters, noise_fraction=0.15, seed=seed
    )
    alpha = 1e-10

    def optimised():
        return MrCC(alpha=alpha, n_resolutions=h, normalize=False).fit(points)

    def reference():
        tree = tree_from_levels(
            reference_levels(bin_points(points, h), h, d), d, eta, h
        )
        betas = reference_find_beta_clusters(tree, alpha)
        return build_correlation_clusters(points, betas)

    with use_backend("numpy"):
        reference_s, reference_result = best_of(
            reference_repeats or repeats, reference
        )

    row = {
        "params": {"eta": eta, "d": d, "H": h, "alpha": alpha},
        "reference_seconds": reference_s,
        "n_clusters": reference_result.n_clusters,
        "backends": {},
    }
    for name in backends:
        with use_backend(name):
            fit_s, result = best_of(repeats, optimised)
        labels_match = bool(
            np.array_equal(result.labels, reference_result.labels)
        )
        if not labels_match:
            raise AssertionError(
                f"MrCC.fit labels changed versus the reference pipeline "
                f"under the {name} backend"
            )
        row["backends"][name] = {
            "seconds": fit_s,
            "speedup": reference_s / fit_s,
            "labels_match_reference": labels_match,
        }
    return row


def bench_serve(
    eta: int,
    d: int,
    h: int,
    repeats: int,
    seed: int,
    backends: dict[str, dict],
    n_clusters: int = 8,
    n_requests: int = 32,
) -> dict:
    """The serving arm: model save/load cost plus batched label latency.

    One model is fitted and persisted, then for each backend the async
    front end labels the full workload split into ``n_requests``
    concurrent requests; the served labels must equal the fit's.
    """
    import asyncio
    import tempfile

    from repro.serve import (
        BatchLabeller,
        ModelCache,
        latency_quantiles,
        load_model,
        save_model,
    )

    points = clustered_points(
        eta, d, n_clusters=n_clusters, noise_fraction=0.15, seed=seed
    )
    alpha = 1e-10
    with use_backend("numpy"):
        estimator = MrCC(alpha=alpha, n_resolutions=h, normalize=False)
        reference_result = estimator.fit(points)

    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "bench.model"
        save_s, _ = best_of(repeats, lambda: save_model(estimator, model_path))
        load_mmap_s, _ = best_of(repeats, lambda: load_model(model_path))
        load_copy_s, _ = best_of(
            repeats, lambda: load_model(model_path, mmap=False)
        )
        row = {
            "params": {
                "eta": eta, "d": d, "H": h, "alpha": alpha,
                "n_requests": n_requests,
            },
            "model_bytes": model_path.stat().st_size,
            "save_seconds": save_s,
            "load_mmap_seconds": load_mmap_s,
            "load_copy_seconds": load_copy_s,
            "backends": {},
        }
        chunks = [
            chunk
            for chunk in np.array_split(points, n_requests)
            if chunk.shape[0]
        ]

        def serve_once() -> tuple[np.ndarray, list[float]]:
            cache = ModelCache(root=tmp, capacity=2)

            async def run():
                async with BatchLabeller(
                    cache, batch_points=max(eta // 4, 1), delay=0.001
                ) as labeller:
                    parts = await asyncio.gather(
                        *[
                            labeller.label("bench.model", chunk)
                            for chunk in chunks
                        ]
                    )
                    return np.concatenate(parts), list(labeller.latencies)

            return asyncio.run(run())

        for name in backends:
            with use_backend(name):
                wall_s, (labels, latencies) = best_of(repeats, serve_once)
            if not np.array_equal(labels, reference_result.labels):
                raise AssertionError(
                    f"served labels differ from MrCC.fit labels under the "
                    f"{name} backend"
                )
            row["backends"][name] = {
                "wall_seconds": wall_s,
                "points_per_second": eta / wall_s,
                "latency_s": latency_quantiles(latencies),
                "labels_match_fit": True,
            }
    return row


def merge_serve_workloads(output: Path, serve_rows: dict[str, dict]) -> dict:
    """Update only the ``serve/`` workload keys of an existing trajectory.

    The committed ``BENCH_core.json`` holds full-profile numbers for
    every arm; a serve-only rerun must not clobber them with nothing or
    with quick-profile values.  Missing file falls back to a minimal
    payload that carries just the serve rows.
    """
    if output.exists():
        payload = json.loads(output.read_text())
    else:
        payload = {
            "schema": SCHEMA_VERSION,
            "profile": "full",
            "generated_by": "scripts/perf_baseline.py",
            "backends": {},
            "workloads": {},
        }
    stale = [
        key for key in payload["workloads"] if key.startswith("serve/")
    ]
    for key in stale:
        del payload["workloads"][key]
    payload["workloads"].update(serve_rows)
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workloads for CI smoke runs (no 2x gate)",
    )
    parser.add_argument(
        "--only", choices=("serve",), default=None,
        help="run a single arm and merge its workload keys into the "
        "existing trajectory instead of rewriting the whole file",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_core.json",
        help="where to write the JSON trajectory (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        profile = "quick"
        repeats = 1
        tree_args = dict(eta=20_000, d=10, h=4, seed=7)
        search_args = dict(eta=8_000, d=8, h=4, seed=11, n_clusters=10)
        fit_workloads = [dict(eta=8_000, d=8, h=4, seed=13)]
        serve_args = dict(eta=8_000, d=8, h=4, seed=13)
        speedup_floor = 1.0
        beta_floor = None
    else:
        profile = "full"
        repeats = 3
        # The acceptance workloads: H=5, d=15, eta=100k (plus the
        # production-scale 1M-point fit, timed once per backend).
        tree_args = dict(eta=100_000, d=15, h=5, seed=7)
        search_args = dict(eta=100_000, d=15, h=5, seed=11, n_clusters=40)
        fit_workloads = [
            dict(eta=50_000, d=10, h=4, seed=13),
            dict(
                eta=1_000_000, d=15, h=5, seed=17, n_clusters=20,
                repeats=1, reference_repeats=1,
            ),
        ]
        serve_args = dict(eta=50_000, d=10, h=4, seed=13)
        speedup_floor = TREE_SPEEDUP_FLOOR_FULL
        beta_floor = BETA_COMPILED_SPEEDUP_FLOOR

    backends = collect_backends()
    print("backends:", flush=True)
    for backend_name, info in backends.items():
        print(
            f"  {backend_name:<6} version {info['version']}"
            f"  warm-up {info['warmup_seconds']:.3f}s"
        )
    compiled = [n for n, info in backends.items() if info["compiled"]]

    def run_serve_arm() -> tuple[str, dict]:
        arm_name = "serve/h{h}_d{d}_eta{eta}".format(**serve_args)
        print(f"[{arm_name}] ...", flush=True)
        serve_row = bench_serve(repeats=repeats, backends=backends, **serve_args)
        print(
            f"  save {serve_row['save_seconds']:.3f}s"
            f"  load(mmap) {serve_row['load_mmap_seconds'] * 1e3:.1f}ms"
            f"  load(copy) {serve_row['load_copy_seconds'] * 1e3:.1f}ms"
            f"  ({serve_row['model_bytes']} bytes)"
        )
        for arm_backend, arm in serve_row["backends"].items():
            quantiles = arm["latency_s"]
            print(
                f"  {arm_backend:<6} {arm['points_per_second']:,.0f} pts/s"
                f"  p50 {quantiles['p50'] * 1e3:.2f}ms"
                f"  p99 {quantiles['p99'] * 1e3:.2f}ms"
            )
        return arm_name, serve_row

    if args.only == "serve":
        name, row = run_serve_arm()
        payload = merge_serve_workloads(args.output, {name: row})
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"merged {name} into {args.output}")
        return 0

    workloads = {}
    name = "tree_build/h{h}_d{d}_eta{eta}".format(**tree_args)
    print(f"[{name}] ...", flush=True)
    workloads[name] = row = bench_tree_build(repeats=repeats, **tree_args)
    print(
        f"  aggregated {row['aggregated_seconds']:.3f}s"
        f"  rescan {row['reference_seconds']:.3f}s"
        f"  speedup {row['speedup']:.2f}x"
    )
    tree_speedup = row["speedup"]

    name = "beta_search/h{h}_d{d}_eta{eta}".format(**search_args)
    print(f"[{name}] ...", flush=True)
    workloads[name] = row = bench_beta_search(
        repeats=repeats, backends=backends, **search_args
    )
    print(f"  seed search {row['reference_seconds']:.3f}s")
    for backend_name, arm in row["backends"].items():
        print(
            f"  {backend_name:<6} incremental {arm['incremental_seconds']:.3f}s"
            f"  speedup {arm['speedup']:.2f}x"
            f"  vs numpy incremental"
            f" {arm['speedup_vs_numpy_incremental']:.2f}x"
        )
    beta_row = row

    for fit_args in fit_workloads:
        fit_args = dict(fit_args)
        fit_repeats = fit_args.pop("repeats", repeats)
        name = "fit/h{h}_d{d}_eta{eta}".format(**fit_args)
        print(f"[{name}] ...", flush=True)
        workloads[name] = row = bench_fit(
            repeats=fit_repeats, backends=backends, **fit_args
        )
        print(f"  reference {row['reference_seconds']:.3f}s")
        for backend_name, arm in row["backends"].items():
            print(
                f"  {backend_name:<6} fit {arm['seconds']:.3f}s"
                f"  speedup {arm['speedup']:.2f}x"
                f"  labels match: {arm['labels_match_reference']}"
            )

    name, row = run_serve_arm()
    workloads[name] = row

    obs_eta = 10_000 if args.quick else 100_000
    name = f"obs_overhead/eta{obs_eta}"
    print(f"[{name}] ...", flush=True)
    workloads[name] = row = bench_obs_overhead(obs_eta)
    print(
        f"  disabled {row['fit_disabled_seconds']:.3f}s"
        f"  enabled {row['fit_enabled_seconds']:.3f}s"
        f"  ({row['enabled_relative']:+.2%})"
        f"  disabled-hook estimate {row['disabled_estimate_relative']:+.4%}"
    )

    payload = {
        "schema": SCHEMA_VERSION,
        "profile": profile,
        "generated_by": "scripts/perf_baseline.py",
        "backends": backends,
        "workloads": workloads,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    if tree_speedup < speedup_floor:
        print(
            f"REGRESSION: tree build speedup {tree_speedup:.2f}x is below the"
            f" {speedup_floor:.1f}x floor",
            file=sys.stderr,
        )
        failed = True
    if beta_floor is not None and compiled:
        best = max(
            beta_row["backends"][n]["speedup_vs_numpy_incremental"]
            for n in compiled
        )
        if best < beta_floor:
            print(
                f"REGRESSION: compiled beta-search speedup {best:.2f}x over"
                f" the numpy incremental path is below the"
                f" {beta_floor:.1f}x floor",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
