#!/usr/bin/env python
"""Regenerate the golden serialized-model fixtures under ``tests/fixtures/``.

Each fixture is a serving model (:mod:`repro.serve`) fitted on one of
the pinned fixed-seed suites — the same suites the golden traces use —
written as the schema-versioned binary artifact, plus a JSON sidecar
recording the SHA-256 of the file bytes, the SHA-256 of the label
vector the fit produced, and the model's scalar metadata.

``tests/test_serve.py`` asserts (a) that loading the committed binary
and labelling the regenerated suite points reproduces the pinned label
SHA bit-for-bit, and (b) that re-serializing today's fit reproduces the
pinned *file* SHA — the byte-stability guarantee golden fixtures rely
on.  Rerun this script (and commit the diff) only when an intentional
format or algorithm change shifts the bytes::

    PYTHONPATH=src python scripts/regen_golden_models.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro import MrCC, SyntheticDatasetSpec, generate_dataset
from repro.serve import MODEL_SCHEMA_VERSION, save_model

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES_DIR = REPO_ROOT / "tests" / "fixtures"

#: The pinned suites; keep in sync with tests/test_serve.py (and the
#: golden-trace suites, which share the generator specs).
GOLDEN_MODELS: dict[str, dict] = {
    "golden_model_d8": {
        "spec": SyntheticDatasetSpec(
            dimensionality=8, n_points=2000, n_clusters=3, seed=123
        ),
        "n_resolutions": 4,
    },
    "golden_model_d12": {
        "spec": SyntheticDatasetSpec(
            dimensionality=12, n_points=3000, n_clusters=5, seed=77
        ),
        "n_resolutions": 5,
    },
}


def regen_one(name: str) -> dict:
    """Write one model binary and return its sidecar payload."""
    suite = GOLDEN_MODELS[name]
    spec = suite["spec"]
    dataset = generate_dataset(spec)
    estimator = MrCC(n_resolutions=suite["n_resolutions"])
    result = estimator.fit(dataset.points)

    model_path = FIXTURES_DIR / f"{name}.bin"
    save_model(estimator, model_path)
    return {
        "schema": MODEL_SCHEMA_VERSION,
        "suite": {
            "dimensionality": spec.dimensionality,
            "n_points": spec.n_points,
            "n_clusters": spec.n_clusters,
            "seed": spec.seed,
            "n_resolutions": suite["n_resolutions"],
        },
        "n_clusters_found": result.n_clusters,
        "n_beta_clusters": result.extras["n_beta_clusters"],
        "file_sha256": hashlib.sha256(model_path.read_bytes()).hexdigest(),
        "labels_sha256": hashlib.sha256(result.labels.tobytes()).hexdigest(),
        "file_bytes": model_path.stat().st_size,
    }


def main() -> int:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for name in GOLDEN_MODELS:
        payload = regen_one(name)
        sidecar = FIXTURES_DIR / f"{name}.json"
        sidecar.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"wrote {FIXTURES_DIR / name}.bin "
            f"({payload['file_bytes']} bytes, "
            f"{payload['n_clusters_found']} clusters) + sidecar"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
