#!/usr/bin/env python
"""Regenerate the golden-trace fixtures under ``tests/fixtures/``.

Each fixture pins the *deterministic* half of an ``MrCC.fit`` trace on
a fixed-seed synthetic suite: the full counter map (cells per level,
convolutions, hypothesis tests, MDL cuts, β-cluster accept/reject), the
cluster count, and a SHA-256 over the label vector bytes.  Timings and
RSS are machine-dependent and deliberately absent.

``tests/test_golden_trace.py`` asserts exact equality against these
files; rerun this script (and commit the diff) only when an intentional
algorithm change shifts the work counts::

    PYTHONPATH=src python scripts/regen_golden_traces.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro import MrCC, SyntheticDatasetSpec, generate_dataset, obs

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES_DIR = REPO_ROOT / "tests" / "fixtures"

#: The two pinned suites; keep in sync with tests/test_golden_trace.py.
GOLDEN_SUITES: dict[str, dict] = {
    "golden_trace_d8": {
        "spec": SyntheticDatasetSpec(
            dimensionality=8, n_points=2000, n_clusters=3, seed=123
        ),
        "n_resolutions": 4,
    },
    "golden_trace_d12": {
        "spec": SyntheticDatasetSpec(
            dimensionality=12, n_points=3000, n_clusters=5, seed=77
        ),
        "n_resolutions": 5,
    },
}


def golden_payload(name: str) -> dict:
    """Deterministic trace snapshot for one pinned suite."""
    suite = GOLDEN_SUITES[name]
    spec = suite["spec"]
    dataset = generate_dataset(spec)
    with obs.capture() as tracer:
        result = MrCC(n_resolutions=suite["n_resolutions"]).fit(dataset.points)
        counters = dict(tracer.counters)
    return {
        "suite": {
            "dimensionality": spec.dimensionality,
            "n_points": spec.n_points,
            "n_clusters": spec.n_clusters,
            "seed": spec.seed,
            "n_resolutions": suite["n_resolutions"],
        },
        "n_clusters_found": result.n_clusters,
        "labels_sha256": hashlib.sha256(
            result.labels.tobytes()
        ).hexdigest(),
        "counters": {k: counters[k] for k in sorted(counters)},
    }


def main() -> int:
    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    for name in GOLDEN_SUITES:
        payload = golden_payload(name)
        path = FIXTURES_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"wrote {path} ({len(payload['counters'])} counters, "
            f"{payload['n_clusters_found']} clusters)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
