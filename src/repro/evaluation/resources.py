"""Wall-clock and peak-memory measurement (the paper's seconds/KB axes).

The paper reports, per method and dataset, the run time in seconds and
the memory consumption in KB.  :func:`measure` wraps a callable with
the observability layer's :func:`repro.obs.perf_clock` and a
``tracemalloc`` peak-allocation probe so every experiment driver
reports the same two series.

``tracemalloc`` tracks Python-level allocations (including numpy buffer
allocations routed through the CPython allocator), which is the right
proxy for the paper's working-set comparison: all methods run in the
same interpreter, so relative magnitudes are meaningful even though
absolute KB differ from the authors' C/Java binaries.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import perf_clock


@dataclass(frozen=True)
class Measurement:
    """Outcome of a measured call."""

    value: Any
    seconds: float
    peak_kb: float

    def as_row(self) -> dict:
        """Flatten into a dict suitable for tabular reporting."""
        return {"seconds": self.seconds, "peak_kb": self.peak_kb}


def measure(fn: Callable[[], Any], track_memory: bool = True) -> Measurement:
    """Run ``fn`` once, returning its value plus seconds and peak KB.

    When ``track_memory`` is false the tracemalloc probe is skipped
    (tracing slows allocation-heavy code down noticeably, so timing
    benchmarks disable it and measure memory in a separate pass).
    """
    if not track_memory:
        start = perf_clock()
        value = fn()
        return Measurement(value=value, seconds=perf_clock() - start, peak_kb=0.0)

    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    start = perf_clock()
    try:
        value = fn()
        seconds = perf_clock() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return Measurement(value=value, seconds=seconds, peak_kb=peak / 1024.0)
