"""Evaluation substrate: cluster matching, Quality metrics, resources.

Implements Section IV-A of the paper — most-dominant-cluster matching,
per-pair precision/recall (Eqs. 1 and 2), the point-set ``Quality`` and
axis-set ``Subspaces Quality`` harmonic means — plus the wall-clock /
peak-memory measurement harness that backs the paper's time and KB
series.
"""

from repro.evaluation.matching import dominant_found, dominant_real, overlap_matrix
from repro.evaluation.quality import (
    EvaluationReport,
    evaluate_clustering,
    precision,
    quality,
    recall,
    subspaces_quality,
)
from repro.evaluation.resources import Measurement, measure

__all__ = [
    "overlap_matrix",
    "dominant_real",
    "dominant_found",
    "precision",
    "recall",
    "quality",
    "subspaces_quality",
    "evaluate_clustering",
    "EvaluationReport",
    "Measurement",
    "measure",
]
