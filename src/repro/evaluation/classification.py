"""Class-label evaluation of a clustering (the paper's real-data view).

Section IV-G scores clusterings on the KDD Cup 2008 data "based on the
ground truth class label of each ROI".  Beyond the Quality metric this
module provides the standard detector-style scores a practitioner would
also want: per-class precision/recall/F1 of the induced classifier that
labels every cluster with its majority class, plus the purity and the
clustering error (CE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import NOISE_LABEL, ClusteringResult


@dataclass(frozen=True)
class ClassReport:
    """Per-class detector scores induced by a clustering."""

    precision: dict
    recall: dict
    f1: dict
    purity: float
    clustering_error: float

    def as_row(self) -> dict:
        """Flatten into a dict suitable for tabular reporting."""
        return {
            "purity": self.purity,
            "clustering_error": self.clustering_error,
            **{f"f1_{k}": v for k, v in sorted(self.f1.items())},
        }


def majority_class_labels(
    result: ClusteringResult, class_labels: np.ndarray
) -> np.ndarray:
    """Predict a class per point: its cluster's majority class.

    Noise points predict the overall majority class (the conservative
    detector default).
    """
    class_labels = np.asarray(class_labels)
    classes, counts = np.unique(class_labels, return_counts=True)
    fallback = classes[np.argmax(counts)]
    predictions = np.full(class_labels.shape, fallback, dtype=class_labels.dtype)
    for cluster in result.clusters:
        members = np.asarray(sorted(cluster.indices))
        if members.size == 0:
            continue
        values, value_counts = np.unique(class_labels[members], return_counts=True)
        predictions[members] = values[np.argmax(value_counts)]
    return predictions


def evaluate_against_classes(
    result: ClusteringResult, class_labels: np.ndarray
) -> ClassReport:
    """Score a clustering against per-point class labels."""
    class_labels = np.asarray(class_labels)
    predictions = majority_class_labels(result, class_labels)
    classes = np.unique(class_labels)

    precision: dict = {}
    recall: dict = {}
    f1: dict = {}
    for cls in classes:
        predicted = predictions == cls
        actual = class_labels == cls
        true_positive = int(np.count_nonzero(predicted & actual))
        p = true_positive / max(int(predicted.sum()), 1)
        r = true_positive / max(int(actual.sum()), 1)
        precision[cls.item()] = p
        recall[cls.item()] = r
        f1[cls.item()] = 0.0 if p + r == 0 else 2 * p * r / (p + r)

    clustered = result.labels != NOISE_LABEL
    if np.any(clustered):
        pure = 0
        for cluster in result.clusters:
            members = np.asarray(sorted(cluster.indices))
            _, counts = np.unique(class_labels[members], return_counts=True)
            pure += int(counts.max())
        purity = pure / int(clustered.sum())
    else:
        purity = 0.0

    clustering_error = float(np.count_nonzero(predictions != class_labels)) / max(
        class_labels.shape[0], 1
    )
    return ClassReport(
        precision=precision,
        recall=recall,
        f1=f1,
        purity=purity,
        clustering_error=clustering_error,
    )
