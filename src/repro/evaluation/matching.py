"""Most-dominant-cluster matching (Section IV-A).

For each *found* cluster the paper selects the *real* cluster with the
largest point overlap (its "most dominant real cluster") and vice
versa.  Ties are broken towards the lower cluster index, which keeps
the procedure deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.types import SubspaceCluster


def overlap_matrix(
    found: list[SubspaceCluster], real: list[SubspaceCluster]
) -> np.ndarray:
    """Return the ``len(found) x len(real)`` matrix of point-overlap sizes."""
    matrix = np.zeros((len(found), len(real)), dtype=np.int64)
    for i, f in enumerate(found):
        for j, r in enumerate(real):
            matrix[i, j] = len(f.indices & r.indices)
    return matrix


def dominant_real(overlaps: np.ndarray) -> np.ndarray:
    """Index of the most dominant real cluster for each found cluster.

    ``overlaps`` is the matrix from :func:`overlap_matrix`.  Rows with
    no real clusters produce an empty result.
    """
    if overlaps.size == 0:
        return np.zeros(overlaps.shape[0], dtype=np.int64)
    return np.argmax(overlaps, axis=1)


def dominant_found(overlaps: np.ndarray) -> np.ndarray:
    """Index of the most dominant found cluster for each real cluster."""
    if overlaps.size == 0:
        return np.zeros(overlaps.shape[1], dtype=np.int64)
    return np.argmax(overlaps, axis=0)
