"""Quality and Subspaces Quality metrics (Section IV-A, Eqs. 1-2).

The paper scores a clustering against the ground truth by

1. matching every found cluster to its *most dominant* real cluster and
   every real cluster to its most dominant found cluster;
2. averaging ``precision(found, dominant real)`` over found clusters
   and ``recall(dominant found, real)`` over real clusters;
3. reporting the harmonic mean of the two averages — the **Quality**.

The **Subspaces Quality** repeats the computation with the clusters'
relevant-axis sets in place of their point sets.  When a method finds
no clusters, both qualities are zero by definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.matching import dominant_found, dominant_real, overlap_matrix
from repro.types import ClusteringResult, Dataset, SubspaceCluster


def precision(found: frozenset, real: frozenset) -> float:
    """Eq. 1: fraction of the found set that belongs to the real set."""
    if not found:
        return 0.0
    return len(found & real) / len(found)


def recall(found: frozenset, real: frozenset) -> float:
    """Eq. 2: fraction of the real set that the found set covers."""
    if not real:
        return 0.0
    return len(found & real) / len(real)


def _harmonic_mean(a: float, b: float) -> float:
    if a <= 0.0 or b <= 0.0:
        return 0.0
    return 2.0 * a * b / (a + b)


def _set_quality(
    found_sets: list[frozenset],
    real_sets: list[frozenset],
    found_clusters: list[SubspaceCluster],
    real_clusters: list[SubspaceCluster],
) -> float:
    """Shared machinery for Quality (point sets) and Subspaces Quality.

    Matching is always done on *point* overlap (the paper's dominant
    ratio), while precision/recall are evaluated on whichever sets the
    caller passes (points or axes).
    """
    if not found_clusters or not real_clusters:
        return 0.0
    overlaps = overlap_matrix(found_clusters, real_clusters)
    real_for_found = dominant_real(overlaps)
    found_for_real = dominant_found(overlaps)
    avg_precision = float(
        np.mean(
            [
                precision(found_sets[i], real_sets[real_for_found[i]])
                for i in range(len(found_sets))
            ]
        )
    )
    avg_recall = float(
        np.mean(
            [
                recall(found_sets[found_for_real[j]], real_sets[j])
                for j in range(len(real_sets))
            ]
        )
    )
    return _harmonic_mean(avg_precision, avg_recall)


def quality(found: list[SubspaceCluster], real: list[SubspaceCluster]) -> float:
    """Point-set Quality: harmonic mean of averaged precision and recall."""
    return _set_quality(
        [c.indices for c in found], [c.indices for c in real], found, real
    )


def subspaces_quality(
    found: list[SubspaceCluster], real: list[SubspaceCluster]
) -> float:
    """Axis-set Quality: the same harmonic mean over relevant-axis sets."""
    return _set_quality(
        [c.relevant_axes for c in found],
        [c.relevant_axes for c in real],
        found,
        real,
    )


@dataclass(frozen=True)
class EvaluationReport:
    """All Section IV-A scores for one clustering of one dataset."""

    quality: float
    subspaces_quality: float
    n_found: int
    n_real: int
    n_noise_found: int
    n_noise_real: int

    def as_row(self) -> dict:
        """Flatten into a dict suitable for tabular reporting."""
        return {
            "quality": self.quality,
            "subspaces_quality": self.subspaces_quality,
            "n_found": self.n_found,
            "n_real": self.n_real,
        }


def evaluate_clustering(result: ClusteringResult, dataset: Dataset) -> EvaluationReport:
    """Score a clustering result against a dataset's ground truth."""
    return EvaluationReport(
        quality=quality(result.clusters, dataset.clusters),
        subspaces_quality=subspaces_quality(result.clusters, dataset.clusters),
        n_found=result.n_clusters,
        n_real=dataset.n_clusters,
        n_noise_found=result.n_noise,
        n_noise_real=int(np.count_nonzero(dataset.labels == -1)),
    )
