"""Single home for the reproduction's environment knobs.

Several environment variables steer the package without changing any
result row: ``REPRO_JOBS`` (worker count for the experiment fan-out and
the sharded Counting-tree build), ``REPRO_BACKEND`` (compute backend
for the hot-path kernels — see :mod:`repro.core.kernels`),
``REPRO_CEXT_SANITIZE`` (rebuild the C backend under ASan/UBSan),
``REPRO_PROFILE`` (``quick``/``full`` tuning grids), ``REPRO_CONTRACTS``
(toggle for the O(n) data-scan half of the runtime contracts),
``REPRO_TRACE`` (the observability layer: off, on, or on plus a JSON
export path), the resilience knobs ``REPRO_RETRIES`` /
``REPRO_TASK_TIMEOUT`` / ``REPRO_BACKOFF`` / ``REPRO_FAULTS`` (per-cell
retry budget, per-attempt deadline in seconds, exponential-backoff base
and the deterministic fault-injection spec consumed by
``repro.resilience``) and the serving knobs ``REPRO_MODEL_DIR`` /
``REPRO_SERVE_BATCH`` / ``REPRO_SERVE_DELAY`` / ``REPRO_SERVE_CACHE``
(model lookup directory, micro-batch point budget, batching delay
window and per-process model LRU capacity for ``repro.serve``).  Every read goes through this module so that bad
values produce one friendly, named error instead of a raw ``int()``
traceback, and so the static layer can enforce the funnel:
``repro_lint`` rule R007 flags ``os.environ`` access anywhere else in
the package, and the ``repro_analyze`` purity pass treats these helpers
as the only sanctioned ambient reads.
"""

from __future__ import annotations

import os

__all__ = [
    "KNOWN_BACKENDS",
    "backend_from_env",
    "backoff_from_env",
    "cext_sanitize_from_env",
    "contracts_from_env",
    "faults_from_env",
    "heartbeat_from_env",
    "jobs_from_env",
    "model_dir_from_env",
    "profile_from_env",
    "propagate_trace_env",
    "retries_from_env",
    "serve_batch_from_env",
    "serve_cache_from_env",
    "serve_delay_from_env",
    "task_timeout_from_env",
    "trace_from_env",
]

_TRUE_VALUES = frozenset({"1", "true", "on", "yes"})
_FALSE_VALUES = frozenset({"0", "false", "off", "no"})


def jobs_from_env(default: int = 1) -> int:
    """Worker count for the experiment fan-out (``REPRO_JOBS``).

    Unset or blank means ``default`` (serial).  Anything that is not a
    positive integer raises a ``ValueError`` naming the variable and
    the offending value.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer worker count "
            f"(e.g. REPRO_JOBS=4), got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer worker count "
            f"(e.g. REPRO_JOBS=4), got {raw!r}"
        )
    return jobs


def profile_from_env(default: str = "quick") -> str:
    """Active tuning profile (``REPRO_PROFILE``): ``quick`` or ``full``."""
    profile = os.environ.get("REPRO_PROFILE", "").strip() or default
    if profile not in ("quick", "full"):
        raise ValueError(
            f"REPRO_PROFILE must be 'quick' or 'full', got {profile!r}"
        )
    return profile


KNOWN_BACKENDS = ("auto", "numpy", "numba", "cext")
"""Values ``REPRO_BACKEND`` accepts; everything else is a named error."""


def backend_from_env(default: str = "auto") -> str:
    """Requested compute backend for the hot-path kernels (``REPRO_BACKEND``).

    ``auto`` (the default) lets :mod:`repro.core.kernels` pick the
    fastest backend that is importable on this machine (numba, then the
    gcc-compiled C extension, then numpy); ``numpy`` forces the
    bit-identity oracle; ``numba``/``cext`` demand that specific
    compiled backend and fail loudly at selection time when it is
    unavailable.  Values are case-insensitive and whitespace-tolerant;
    unset or blank means ``default``.
    """
    raw = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not raw:
        return default
    if raw not in KNOWN_BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {'/'.join(KNOWN_BACKENDS)} "
            f"(e.g. REPRO_BACKEND=numba), got {raw!r}"
        )
    return raw


def contracts_from_env(default: bool = True) -> bool:
    """Whether the O(n) data-scan contracts are on (``REPRO_CONTRACTS``).

    Accepts ``1/true/on/yes`` and ``0/false/off/no`` (case-insensitive);
    unset or blank means ``default``.
    """
    raw = os.environ.get("REPRO_CONTRACTS", "").strip().lower()
    if not raw:
        return default
    if raw in _TRUE_VALUES:
        return True
    if raw in _FALSE_VALUES:
        return False
    raise ValueError(
        f"REPRO_CONTRACTS must be one of 1/0, true/false, on/off, yes/no; "
        f"got {raw!r}"
    )


def cext_sanitize_from_env(default: bool = False) -> bool:
    """Whether the C backend builds under ASan/UBSan (``REPRO_CEXT_SANITIZE``).

    A true value rebuilds the shared object with
    ``-fsanitize=address,undefined -fno-omit-frame-pointer`` so the
    kernel and streaming suites can run the transliterated loops under
    the sanitizers; the flags participate in the content-address, so
    sanitized and plain builds never collide in the cache.  Accepts
    ``1/true/on/yes`` and ``0/false/off/no`` (case-insensitive); unset
    or blank means ``default``.
    """
    raw = os.environ.get("REPRO_CEXT_SANITIZE", "").strip().lower()
    if not raw:
        return default
    if raw in _TRUE_VALUES:
        return True
    if raw in _FALSE_VALUES:
        return False
    raise ValueError(
        f"REPRO_CEXT_SANITIZE must be one of 1/0, true/false, on/off, "
        f"yes/no; got {raw!r}"
    )


def trace_from_env(default: str | None = None) -> str | None:
    """Observability toggle/export target (``REPRO_TRACE``).

    Three shapes, mirroring the knob's documentation:

    * unset, blank or a false value (``0/false/off/no``) — tracing off,
      returns ``default`` (``None``);
    * a true value (``1/true/on/yes``) — tracing on with no automatic
      export; returns ``""``;
    * anything else is an export path — tracing on, and the CLI writes
      the JSON trace there on exit; returns the path unchanged.
    """
    raw = os.environ.get("REPRO_TRACE", "").strip()
    if not raw:
        return default
    lowered = raw.lower()
    if lowered in _FALSE_VALUES:
        return None
    if lowered in _TRUE_VALUES:
        return ""
    return raw


def retries_from_env(default: int = 0) -> int:
    """Retry budget per experiment cell (``REPRO_RETRIES``).

    A cell is attempted ``1 + retries`` times before its failure becomes
    a structured error row.  Unset or blank means ``default`` (no
    retries); anything that is not a non-negative integer raises a
    ``ValueError`` naming the variable and the offending value.
    """
    raw = os.environ.get("REPRO_RETRIES", "").strip()
    if not raw:
        return default
    try:
        retries = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_RETRIES must be a non-negative integer retry count "
            f"(e.g. REPRO_RETRIES=2), got {raw!r}"
        ) from None
    if retries < 0:
        raise ValueError(
            f"REPRO_RETRIES must be a non-negative integer retry count "
            f"(e.g. REPRO_RETRIES=2), got {raw!r}"
        )
    return retries


def task_timeout_from_env(default: float | None = None) -> float | None:
    """Per-attempt deadline in seconds (``REPRO_TASK_TIMEOUT``).

    Unset, blank, ``0`` or a false value (``off``/``no``/``false``)
    means ``default`` (no deadline).  Anything else must be a positive
    number of seconds (fractions allowed).
    """
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
    if not raw or raw.lower() in _FALSE_VALUES:
        return default
    try:
        seconds = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TASK_TIMEOUT must be a positive number of seconds "
            f"(e.g. REPRO_TASK_TIMEOUT=300), got {raw!r}"
        ) from None
    if seconds <= 0:
        raise ValueError(
            f"REPRO_TASK_TIMEOUT must be a positive number of seconds "
            f"(e.g. REPRO_TASK_TIMEOUT=300), got {raw!r}"
        )
    return seconds


def backoff_from_env(default: float = 0.05) -> float:
    """Exponential-backoff base in seconds (``REPRO_BACKOFF``).

    Retry ``k`` of a cell sleeps ``backoff * 2**(k-1)`` seconds (plus a
    small deterministic jitter derived from the cell key).  Unset or
    blank means ``default``; the value must be a non-negative number.
    """
    raw = os.environ.get("REPRO_BACKOFF", "").strip()
    if not raw:
        return default
    try:
        base = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BACKOFF must be a non-negative number of seconds "
            f"(e.g. REPRO_BACKOFF=0.5), got {raw!r}"
        ) from None
    if base < 0:
        raise ValueError(
            f"REPRO_BACKOFF must be a non-negative number of seconds "
            f"(e.g. REPRO_BACKOFF=0.5), got {raw!r}"
        )
    return base


def faults_from_env(default: str = "") -> str:
    """Raw deterministic fault-injection spec (``REPRO_FAULTS``).

    The grammar (``kind:match:cell[:attempts]``, comma-separated) is
    owned by :mod:`repro.fabric.faults`; this helper only funnels
    the ambient read so R007 keeps every ``os.environ`` access here.
    """
    return os.environ.get("REPRO_FAULTS", "").strip() or default


def heartbeat_from_env(default: float = 5.0) -> float:
    """Fabric heartbeat interval in seconds (``REPRO_HEARTBEAT``).

    A journaled run appends a liveness heartbeat (progress counts for
    ``fabric status``) every this-many seconds.  Unset or blank means
    ``default``; ``0`` or any false value disables heartbeats; the
    value must otherwise be a non-negative number.
    """
    raw = os.environ.get("REPRO_HEARTBEAT", "").strip()
    if not raw:
        return default
    if raw.lower() in _FALSE_VALUES:
        return 0.0
    try:
        seconds = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_HEARTBEAT must be a non-negative number of seconds "
            f"or a false value (e.g. REPRO_HEARTBEAT=10), got {raw!r}"
        ) from None
    if seconds < 0:
        raise ValueError(
            f"REPRO_HEARTBEAT must be a non-negative number of seconds "
            f"or a false value (e.g. REPRO_HEARTBEAT=10), got {raw!r}"
        )
    return seconds


def model_dir_from_env(default: str = ".") -> str:
    """Directory that resolves relative model names (``REPRO_MODEL_DIR``).

    The serving layer and the ``save-model``/``serve`` CLI subcommands
    look up bare model names here, so deployments can point every
    worker at one read-only model volume.  Unset or blank means
    ``default`` (the current directory); the value is returned verbatim
    — existence is checked at open time by the model store, which turns
    a vanished directory into a typed :class:`ModelFormatError`.
    """
    return os.environ.get("REPRO_MODEL_DIR", "").strip() or default


def serve_batch_from_env(default: int = 4096) -> int:
    """Micro-batch point budget for the batch labeller (``REPRO_SERVE_BATCH``).

    The asyncio front end coalesces queued label requests until their
    combined point count reaches this budget (or the delay window
    closes).  Unset or blank means ``default``; anything that is not a
    positive integer raises a ``ValueError`` naming the variable.
    """
    raw = os.environ.get("REPRO_SERVE_BATCH", "").strip()
    if not raw:
        return default
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SERVE_BATCH must be a positive integer point budget "
            f"(e.g. REPRO_SERVE_BATCH=4096), got {raw!r}"
        ) from None
    if budget < 1:
        raise ValueError(
            f"REPRO_SERVE_BATCH must be a positive integer point budget "
            f"(e.g. REPRO_SERVE_BATCH=4096), got {raw!r}"
        )
    return budget


def serve_delay_from_env(default: float = 0.002) -> float:
    """Micro-batch delay window in seconds (``REPRO_SERVE_DELAY``).

    How long the batch labeller waits for more requests after the first
    one arrives before closing the batch; ``0`` serves every request
    the moment it is dequeued.  Unset or blank means ``default``; the
    value must be a non-negative number of seconds.
    """
    raw = os.environ.get("REPRO_SERVE_DELAY", "").strip()
    if not raw:
        return default
    try:
        seconds = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SERVE_DELAY must be a non-negative number of seconds "
            f"(e.g. REPRO_SERVE_DELAY=0.005), got {raw!r}"
        ) from None
    if seconds < 0:
        raise ValueError(
            f"REPRO_SERVE_DELAY must be a non-negative number of seconds "
            f"(e.g. REPRO_SERVE_DELAY=0.005), got {raw!r}"
        )
    return seconds


def serve_cache_from_env(default: int = 4) -> int:
    """Per-process model LRU capacity (``REPRO_SERVE_CACHE``).

    How many loaded models the serving cache keeps resident before
    evicting the least recently used one.  Unset or blank means
    ``default``; anything that is not a positive integer raises a
    ``ValueError`` naming the variable.
    """
    raw = os.environ.get("REPRO_SERVE_CACHE", "").strip()
    if not raw:
        return default
    try:
        capacity = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SERVE_CACHE must be a positive integer model count "
            f"(e.g. REPRO_SERVE_CACHE=4), got {raw!r}"
        ) from None
    if capacity < 1:
        raise ValueError(
            f"REPRO_SERVE_CACHE must be a positive integer model count "
            f"(e.g. REPRO_SERVE_CACHE=4), got {raw!r}"
        )
    return capacity


def propagate_trace_env(target: str = "") -> None:
    """Mirror an in-process tracing enable into ``REPRO_TRACE``.

    ``obs.set_enabled(True)`` (e.g. from the CLI ``--trace`` flag) only
    installs a tracer in the *current* process.  ``REPRO_JOBS`` workers
    started with the ``spawn``/``forkserver`` methods re-import the
    package and decide whether to trace from the environment alone, so
    the enable must be mirrored there or worker counters and spans are
    silently dropped.  ``target`` is the export path to advertise; the
    empty string means "on, no automatic export" and is stored as
    ``1``.
    """
    os.environ["REPRO_TRACE"] = target or "1"
