"""Single home for the reproduction's environment knobs.

Four environment variables steer the package without changing any
result row: ``REPRO_JOBS`` (worker count for the experiment fan-out),
``REPRO_PROFILE`` (``quick``/``full`` tuning grids), ``REPRO_CONTRACTS``
(toggle for the O(n) data-scan half of the runtime contracts) and
``REPRO_TRACE`` (the observability layer: off, on, or on plus a JSON
export path).  Every read goes through this module so that bad values
produce one friendly, named error instead of a raw ``int()`` traceback,
and so the static layer can enforce the funnel: ``repro_lint`` rule
R007 flags ``os.environ`` access anywhere else in the package, and the
``repro_analyze`` purity pass treats these helpers as the only
sanctioned ambient reads.
"""

from __future__ import annotations

import os

__all__ = [
    "contracts_from_env",
    "jobs_from_env",
    "profile_from_env",
    "propagate_trace_env",
    "trace_from_env",
]

_TRUE_VALUES = frozenset({"1", "true", "on", "yes"})
_FALSE_VALUES = frozenset({"0", "false", "off", "no"})


def jobs_from_env(default: int = 1) -> int:
    """Worker count for the experiment fan-out (``REPRO_JOBS``).

    Unset or blank means ``default`` (serial).  Anything that is not a
    positive integer raises a ``ValueError`` naming the variable and
    the offending value.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer worker count "
            f"(e.g. REPRO_JOBS=4), got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer worker count "
            f"(e.g. REPRO_JOBS=4), got {raw!r}"
        )
    return jobs


def profile_from_env(default: str = "quick") -> str:
    """Active tuning profile (``REPRO_PROFILE``): ``quick`` or ``full``."""
    profile = os.environ.get("REPRO_PROFILE", "").strip() or default
    if profile not in ("quick", "full"):
        raise ValueError(
            f"REPRO_PROFILE must be 'quick' or 'full', got {profile!r}"
        )
    return profile


def contracts_from_env(default: bool = True) -> bool:
    """Whether the O(n) data-scan contracts are on (``REPRO_CONTRACTS``).

    Accepts ``1/true/on/yes`` and ``0/false/off/no`` (case-insensitive);
    unset or blank means ``default``.
    """
    raw = os.environ.get("REPRO_CONTRACTS", "").strip().lower()
    if not raw:
        return default
    if raw in _TRUE_VALUES:
        return True
    if raw in _FALSE_VALUES:
        return False
    raise ValueError(
        f"REPRO_CONTRACTS must be one of 1/0, true/false, on/off, yes/no; "
        f"got {raw!r}"
    )


def trace_from_env(default: str | None = None) -> str | None:
    """Observability toggle/export target (``REPRO_TRACE``).

    Three shapes, mirroring the knob's documentation:

    * unset, blank or a false value (``0/false/off/no``) — tracing off,
      returns ``default`` (``None``);
    * a true value (``1/true/on/yes``) — tracing on with no automatic
      export; returns ``""``;
    * anything else is an export path — tracing on, and the CLI writes
      the JSON trace there on exit; returns the path unchanged.
    """
    raw = os.environ.get("REPRO_TRACE", "").strip()
    if not raw:
        return default
    lowered = raw.lower()
    if lowered in _FALSE_VALUES:
        return None
    if lowered in _TRUE_VALUES:
        return ""
    return raw


def propagate_trace_env(target: str = "") -> None:
    """Mirror an in-process tracing enable into ``REPRO_TRACE``.

    ``obs.set_enabled(True)`` (e.g. from the CLI ``--trace`` flag) only
    installs a tracer in the *current* process.  ``REPRO_JOBS`` workers
    started with the ``spawn``/``forkserver`` methods re-import the
    package and decide whether to trace from the environment alone, so
    the enable must be mirrored there or worker counters and spans are
    silently dropped.  ``target`` is the export path to advertise; the
    empty string means "on, no automatic export" and is stored as
    ``1``.
    """
    os.environ["REPRO_TRACE"] = target or "1"
