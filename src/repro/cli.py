"""Command-line entry point: ``mrcc-repro`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show the reproducible exhibits and available methods.
``fig4``
    MrCC sensibility sweeps (alpha and H) over the first dataset group.
``fig5 <row>``
    One synthetic comparison row (``fig5a-c`` .. ``fig5p-r``), or
    ``fig5s`` (Subspaces Quality) or ``fig5t`` (real-data table).
    ``--journal``/``--resume`` checkpoint finished grid cells and pick
    an interrupted sweep back up where it stopped; ``--shard i/n``
    runs only this host's deterministic slice of the grid.
``fabric merge <shard.jsonl>... -o <merged.jsonl>``
    Combine per-shard journals into one journal that resumes exactly
    like an unsharded run's (``fig5 ... --journal merged --resume``).
``fabric status <journal>``
    Live progress view of a (possibly still running) journaled run:
    committed cells by status, in-flight leases, last heartbeat.
``demo``
    Tiny end-to-end demonstration on a generated dataset.
``save-model <model> --input <points>``
    Fit MrCC on a dataset (``.npy`` or CSV) and persist the fitted
    model as a serving artifact (:mod:`repro.serve`).
``serve <model> --input <points>``
    Label query points against a saved model through the async
    micro-batching front end, reporting p50/p99 request latency.

Every experiment accepts ``--scale`` (fraction of the paper's point
counts; default keeps runs laptop-sized) and honours the
``REPRO_PROFILE`` environment variable (``quick``/``full`` tuning
grids).
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.data.suites import first_group
from repro.env import propagate_trace_env, trace_from_env
from repro.experiments.real_data import run_real_data_table
from repro.experiments.report import format_series, format_table
from repro.experiments.sensibility import alpha_sweep, resolution_sweep
from repro.experiments.synthetic_suite import (
    FIGURE_ROWS,
    PANEL_METRICS,
    run_figure_row,
    run_subspaces_quality,
)


def _cmd_list(args: argparse.Namespace) -> int:
    print("Exhibits:")
    print("  fig4          MrCC sensibility (alpha, H)")
    for name, row in sorted(FIGURE_ROWS.items()):
        print(f"  {name:13s} {row.description}")
    print("  fig5s         Subspaces Quality (first group, LAC excluded)")
    print("  fig5t         real data table (simulated KDD Cup 2008)")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    datasets = list(first_group(scale=args.scale))
    print("# Figure 4a-c: alpha sweep")
    rows = alpha_sweep(datasets)
    for metric in ("quality", "peak_kb", "seconds"):
        print(format_series(rows, metric, line_key="dataset", column_key="alpha"))
        print()
    print("# Figure 4d-f: H sweep")
    rows = resolution_sweep(datasets)
    for metric in ("quality", "peak_kb", "seconds"):
        print(format_series(rows, metric, line_key="dataset", column_key="H"))
        print()
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    journal, resume, shard = args.journal, args.resume, args.shard
    if resume and not journal:
        print("--resume needs --journal <path> to resume from", file=sys.stderr)
        return 2
    if shard and not journal:
        print(
            "--shard needs --journal <path>: the shard's results exist "
            "only as journal records until `fabric merge`",
            file=sys.stderr,
        )
        return 2
    if args.row == "fig5s":
        rows = run_subspaces_quality(
            scale=args.scale, journal=journal, resume=resume, shard=shard
        )
        print(format_series(rows, "subspaces_quality"))
    elif args.row == "fig5t":
        rows = run_real_data_table(
            scale=args.scale, journal=journal, resume=resume, shard=shard
        )
        print(format_table(rows, ["method", "quality", "peak_kb", "seconds"]))
    else:
        rows = run_figure_row(
            args.row, scale=args.scale, journal=journal, resume=resume,
            shard=shard,
        )
        for metric in PANEL_METRICS:
            print(format_series(rows, metric))
            print()
    if shard:
        print(
            f"warning: shard {shard} ran only its slice of the grid; "
            f"the table above is partial — merge the shard journals "
            f"(`mrcc-repro fabric merge`) and re-run with --resume for "
            f"the full exhibit",
            file=sys.stderr,
        )
    _report_failed_cells(rows)
    if args.save:
        from repro.experiments.summary import save_rows_json

        save_rows_json(rows, args.save)
        print(f"rows saved to {args.save}")
    return 0


def _report_failed_cells(rows: list[dict]) -> None:
    """Surface degraded cells under a partial table (stderr, not the
    exhibit itself, so saved/piped tables stay clean)."""
    failed = [r for r in rows if r.get("status") not in (None, "ok", "retried")]
    for row in failed:
        error = row.get("error") or {}
        print(
            f"warning: cell {row['dataset']}/{row['method']} "
            f"{row['status']} after {row['attempts']} attempt(s)"
            + (f": {error.get('type')}: {error.get('message')}" if error else ""),
            file=sys.stderr,
        )
    if failed:
        print(
            f"warning: {len(failed)} cell(s) degraded to error rows; "
            f"the tables above are partial",
            file=sys.stderr,
        )


def _cmd_fabric_merge(args: argparse.Namespace) -> int:
    from repro.fabric import JournalError, merge_journals

    try:
        summary = merge_journals(args.shards, args.output)
    except JournalError as error:
        print(f"fabric merge: {error}", file=sys.stderr)
        return 2
    print(
        f"merged {summary['shards']} shard(s), {summary['cells']} "
        f"cell(s) -> {summary['path']}"
    )
    return 0


def _cmd_fabric_status(args: argparse.Namespace) -> int:
    import time

    from repro.fabric import JournalError, format_status, journal_status

    while True:
        try:
            status = journal_status(args.journal)
        except FileNotFoundError:
            print(f"fabric status: no journal at {args.journal}", file=sys.stderr)
            return 2
        except JournalError as error:
            print(f"fabric status: {error}", file=sys.stderr)
            return 2
        print(format_status(status))
        total = status["total"]
        done = total is not None and status["committed"] >= total
        if args.watch is None or done:
            return 0
        time.sleep(max(0.1, args.watch))
        print()


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.experiments.summary import (
        load_rows_json,
        memory_table,
        quality_table,
        speedup_table,
    )

    rows: list[dict] = []
    for path in args.rows:
        rows.extend(load_rows_json(path))
    print("mean Quality per method:")
    for method, value in quality_table(rows).items():
        print(f"  {method:8s} {value:.3f}")
    print("\ngeometric-mean time ratio vs MrCC (x slower):")
    for method, value in speedup_table(rows).items():
        print(f"  {method:8s} {value:8.1f}x")
    try:
        memory = memory_table(rows)
    except ValueError:
        memory = {}
    if memory:
        print("\ngeometric-mean memory ratio vs MrCC:")
        for method, value in memory.items():
            print(f"  {method:8s} {value:8.2f}x")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import MrCC, SyntheticDatasetSpec, evaluate_clustering, generate_dataset

    dataset = generate_dataset(
        SyntheticDatasetSpec(
            dimensionality=10, n_points=6000, n_clusters=5, seed=42
        )
    )
    result = MrCC().fit(dataset.points)
    report = evaluate_clustering(result, dataset)
    print(f"dataset: {dataset.n_points} points, {dataset.dimensionality} axes, "
          f"{dataset.n_clusters} hidden clusters")
    print(f"MrCC found {result.n_clusters} clusters "
          f"({result.extras['n_beta_clusters']} beta-clusters)")
    print(f"Quality={report.quality:.3f}  Subspaces Quality="
          f"{report.subspaces_quality:.3f}")
    for k, cluster in enumerate(result.clusters):
        axes = ",".join(str(a) for a in sorted(cluster.relevant_axes))
        print(f"  cluster {k}: {cluster.size} points, relevant axes [{axes}]")
    return 0


def _load_points(path: str) -> "np.ndarray":
    import numpy as np

    if path.endswith(".npy"):
        points = np.load(path)
    else:
        points = np.loadtxt(path, delimiter=",", ndmin=2)
    return np.asarray(points, dtype=np.float64)


def _cmd_save_model(args: argparse.Namespace) -> int:
    from repro.core.mrcc import MrCC

    points = _load_points(args.input)
    estimator = MrCC(
        alpha=args.alpha,
        n_resolutions=args.resolutions,
        normalize=not args.no_normalize,
    )
    result = estimator.fit(points)
    estimator.save(args.model)
    print(
        f"fitted {points.shape[0]} points x {points.shape[1]} axes: "
        f"{result.n_clusters} cluster(s), "
        f"{result.extras['n_beta_clusters']} beta-cluster(s)"
    )
    print(f"model saved to {args.model}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    import numpy as np

    from repro.serve import BatchLabeller, ModelCache

    points = _load_points(args.input)
    model_path = Path(args.model)
    cache = ModelCache(
        root=model_path.parent if str(model_path.parent) else ".",
        mmap=not args.no_mmap,
    )
    chunks = [
        chunk
        for chunk in np.array_split(points, max(1, args.requests))
        if chunk.shape[0]
    ]

    async def run() -> tuple[np.ndarray, dict]:
        async with BatchLabeller(
            cache, batch_points=args.batch, delay=args.delay
        ) as labeller:
            parts = await asyncio.gather(
                *[labeller.label(model_path.name, chunk) for chunk in chunks]
            )
            stats = labeller.stats()
        labels = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        return labels, stats

    labels, stats = asyncio.run(run())
    n_noise = int(np.sum(labels == -1))
    n_clusters = int(labels.max()) + 1 if labels.size and labels.max() >= 0 else 0
    print(
        f"labelled {labels.shape[0]} points across {len(chunks)} "
        f"request(s): {n_clusters} cluster(s), {n_noise} noise point(s)"
    )
    latency = stats["latency_s"]
    if latency:
        print(
            f"batches={stats['batches']}  "
            f"p50={latency['p50'] * 1e3:.2f}ms  "
            f"p99={latency['p99'] * 1e3:.2f}ms"
        )
    if args.output:
        np.save(args.output, labels)
        print(f"labels saved to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``mrcc-repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="mrcc-repro",
        description="Reproduce the MrCC paper's experiments (ICDE 2010).",
    )
    parser.add_argument(
        "--trace", default=None, metavar="JSON",
        help="enable the observability layer and write the JSON trace "
        "here on exit (equivalent to REPRO_TRACE=<path>)",
    )
    # Accept --trace on either side of the subcommand; SUPPRESS keeps
    # the subparser from clobbering a value parsed at the top level.
    trace_opt = argparse.ArgumentParser(add_help=False)
    trace_opt.add_argument(
        "--trace", default=argparse.SUPPRESS, metavar="JSON",
        help=argparse.SUPPRESS,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list reproducible exhibits", parents=[trace_opt]
    ).set_defaults(func=_cmd_list)

    fig4 = sub.add_parser(
        "fig4", help="MrCC sensibility sweeps", parents=[trace_opt]
    )
    fig4.add_argument("--scale", type=float, default=0.05)
    fig4.set_defaults(func=_cmd_fig4)

    fig5 = sub.add_parser(
        "fig5", help="one Figure 5 exhibit", parents=[trace_opt]
    )
    fig5.add_argument(
        "row", choices=sorted(FIGURE_ROWS) + ["fig5s", "fig5t"]
    )
    fig5.add_argument("--scale", type=float, default=0.05)
    fig5.add_argument(
        "--save", default=None, metavar="JSON",
        help="also write the raw rows to this JSON file",
    )
    fig5.add_argument(
        "--journal", default=None, metavar="JSONL",
        help="append one journal record per finished grid cell, "
        "enabling --resume after an interrupt",
    )
    fig5.add_argument(
        "--resume", action="store_true",
        help="skip cells already recorded in --journal and recompute "
        "only the remainder (bit-identical to an uninterrupted run)",
    )
    fig5.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only this deterministic slice of the grid (cell c "
        "belongs to shard i of n iff c %% n == i); requires --journal, "
        "combine with `fabric merge`",
    )
    fig5.set_defaults(func=_cmd_fig5)

    fabric = sub.add_parser(
        "fabric", help="journal tooling for sharded runs",
        parents=[trace_opt],
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)
    merge = fabric_sub.add_parser(
        "merge", help="merge per-shard journals into one resumable journal"
    )
    merge.add_argument("shards", nargs="+", metavar="JSONL")
    merge.add_argument(
        "-o", "--output", required=True, metavar="JSONL",
        help="merged journal path",
    )
    merge.set_defaults(func=_cmd_fabric_merge)
    status = fabric_sub.add_parser(
        "status", help="progress view of a journaled run"
    )
    status.add_argument("journal", metavar="JSONL")
    status.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh every SECONDS until every cell is committed",
    )
    status.set_defaults(func=_cmd_fabric_status)

    summary = sub.add_parser(
        "summary", help="aggregate saved rows into Section IV-F averages",
        parents=[trace_opt],
    )
    summary.add_argument("rows", nargs="+", metavar="JSON")
    summary.set_defaults(func=_cmd_summary)

    demo = sub.add_parser(
        "demo", help="small end-to-end demo", parents=[trace_opt]
    )
    demo.set_defaults(func=_cmd_demo)

    save_model = sub.add_parser(
        "save-model",
        help="fit MrCC on a dataset and persist the serving model",
        parents=[trace_opt],
    )
    save_model.add_argument("model", metavar="MODEL", help="output model file")
    save_model.add_argument(
        "--input", required=True, metavar="POINTS",
        help="dataset to fit (.npy array or CSV of rows)",
    )
    save_model.add_argument("--alpha", type=float, default=1e-10)
    save_model.add_argument(
        "--resolutions", type=int, default=4, metavar="H",
        help="number of multi-resolution levels (default 4)",
    )
    save_model.add_argument(
        "--no-normalize", action="store_true",
        help="skip min-max normalisation (data already in [0, 1))",
    )
    save_model.set_defaults(func=_cmd_save_model)

    serve = sub.add_parser(
        "serve",
        help="label query points against a saved model (async batching)",
        parents=[trace_opt],
    )
    serve.add_argument("model", metavar="MODEL", help="saved model file")
    serve.add_argument(
        "--input", required=True, metavar="POINTS",
        help="query points to label (.npy array or CSV of rows)",
    )
    serve.add_argument(
        "--output", default=None, metavar="NPY",
        help="also write the label vector to this .npy file",
    )
    serve.add_argument(
        "--requests", type=int, default=8,
        help="split the input into this many concurrent requests "
        "(default 8; labels are batching-invariant)",
    )
    serve.add_argument(
        "--batch", type=int, default=None, metavar="POINTS",
        help="micro-batch point budget (default REPRO_SERVE_BATCH)",
    )
    serve.add_argument(
        "--delay", type=float, default=None, metavar="SECONDS",
        help="micro-batch delay window (default REPRO_SERVE_DELAY)",
    )
    serve.add_argument(
        "--no-mmap", action="store_true",
        help="load the model into private memory instead of mmap",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    # --trace takes precedence over REPRO_TRACE for the export target;
    # REPRO_TRACE alone already enabled tracing at import.
    target = args.trace if args.trace is not None else trace_from_env()
    if args.trace is not None:
        if not obs.enabled():
            obs.set_enabled(True)
        # Mirror the flag into the environment so spawn/forkserver
        # REPRO_JOBS workers (which re-import and read only the env)
        # come up traced too, not just fork workers.
        propagate_trace_env(args.trace)
    status = int(args.func(args))
    if obs.enabled() and target:
        payload = obs.export_trace(target, meta={"command": args.command})
        print(
            f"trace written to {target} "
            f"({len(payload['counters'])} counters, "
            f"{len(payload['spans'])} spans)"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
