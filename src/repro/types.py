"""Shared value types used across the MrCC reproduction.

Every subsystem (data generation, the MrCC core, the competitor
baselines and the evaluation code) exchanges data through the small
set of immutable-ish records defined here, which keeps the package
free of circular imports.

Conventions
-----------
* Points live in the unit hyper-cube ``[0, 1)^d`` (Definition 1 of the
  paper); generators normalise before returning.
* Cluster membership is expressed both as a label vector (``-1`` means
  noise) and as explicit index sets, because the paper's Quality metric
  (Section IV-A) works on point sets.
* Relevant axes are ``frozenset`` of 0-based axis indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, SupportsInt, Union

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]
"""2-d point matrices, bounds, relevances — everything measured."""

IntArray = NDArray[np.int64]
"""Cell coordinates, counts, label vectors — everything counted."""

BoolArray = NDArray[np.bool_]
"""Masks: ``usedCell`` flags, relevance vectors, exclusion masks."""

AnyArray = NDArray[Any]
"""An array whose dtype is checked at runtime rather than statically."""

DTypeLike = Union[type, np.dtype[Any], str]
"""Anything ``np.dtype`` accepts; used by the runtime contracts."""

NOISE_LABEL = -1
"""Label assigned to points that belong to no cluster."""


@dataclass(frozen=True)
class SubspaceCluster:
    """A correlation cluster: a set of points plus its relevant axes.

    This matches Definition 2 of the paper: ``(E_k, S_k)`` where
    ``E_k`` is the set of axes relevant to the cluster and ``S_k`` the
    set of member points.  The same record describes ground-truth
    ("real") clusters and algorithm output ("found") clusters.
    """

    indices: frozenset[int]
    relevant_axes: frozenset[int]

    @property
    def size(self) -> int:
        """Number of member points."""
        return len(self.indices)

    @property
    def dimensionality(self) -> int:
        """Number of relevant axes (the cluster's ``delta``)."""
        return len(self.relevant_axes)

    @staticmethod
    def from_iterables(
        indices: Iterable[SupportsInt], relevant_axes: Iterable[SupportsInt]
    ) -> "SubspaceCluster":
        """Build a cluster from arbitrary iterables of ints."""
        return SubspaceCluster(
            indices=frozenset(int(i) for i in indices),
            relevant_axes=frozenset(int(a) for a in relevant_axes),
        )


@dataclass
class ClusteringResult:
    """The output of any subspace-clustering algorithm in this package.

    Attributes
    ----------
    labels:
        Array of shape ``(n_points,)``; cluster id per point, with
        :data:`NOISE_LABEL` for noise.
    clusters:
        One :class:`SubspaceCluster` per distinct non-noise label, in
        label order (``clusters[k]`` has label ``k``).
    extras:
        Free-form algorithm-specific diagnostics (iteration counts,
        number of beta-clusters, tuned thresholds, ...).
    """

    labels: IntArray
    clusters: list[SubspaceCluster]
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        """Number of clusters found."""
        return len(self.clusters)

    @property
    def n_noise(self) -> int:
        """Number of points labelled as noise."""
        return int(np.count_nonzero(self.labels == NOISE_LABEL))

    @staticmethod
    def from_labels(
        labels: Iterable[SupportsInt] | AnyArray,
        relevant_axes_per_cluster: Iterable[Iterable[SupportsInt]],
    ) -> "ClusteringResult":
        """Build a result from a label vector and per-cluster axis sets.

        Parameters
        ----------
        labels:
            Integer labels; noise must already be :data:`NOISE_LABEL`.
            Non-noise labels must be ``0..k-1``.
        relevant_axes_per_cluster:
            Sequence of axis iterables, one per cluster id.
        """
        labels = np.asarray(labels, dtype=np.int64)
        clusters: list[SubspaceCluster] = []
        for k, axes in enumerate(relevant_axes_per_cluster):
            members = np.flatnonzero(labels == k)
            clusters.append(SubspaceCluster.from_iterables(members, axes))
        return ClusteringResult(labels=labels, clusters=clusters)


@dataclass
class Dataset:
    """A dataset together with its ground truth.

    Attributes
    ----------
    points:
        Array of shape ``(n_points, d)`` with values in ``[0, 1)``.
    labels:
        Ground-truth label per point (:data:`NOISE_LABEL` for noise).
    clusters:
        Ground-truth ("real") clusters as :class:`SubspaceCluster`.
    name:
        Identifier following the paper's naming (``14d``, ``20c``,
        ``100k``, ``10o``, ``25d_s``, ``12d_r`` ...).
    metadata:
        Generation parameters for reporting.
    """

    points: FloatArray
    labels: IntArray
    clusters: list[SubspaceCluster]
    name: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        """Number of points (the paper's eta)."""
        return int(self.points.shape[0])

    @property
    def dimensionality(self) -> int:
        """Embedding dimensionality (the paper's d)."""
        return int(self.points.shape[1])

    @property
    def n_clusters(self) -> int:
        """Number of ground-truth clusters."""
        return len(self.clusters)

    @property
    def noise_fraction(self) -> float:
        """Fraction of points labelled as noise in the ground truth."""
        if self.n_points == 0:
            return 0.0
        return float(np.count_nonzero(self.labels == NOISE_LABEL)) / self.n_points

    def validate(self) -> None:
        """Check internal consistency; raise ``ValueError`` on problems."""
        if self.points.ndim != 2:
            raise ValueError("points must be a 2-d array")
        if self.labels.shape != (self.n_points,):
            raise ValueError("labels must have one entry per point")
        if np.any(self.points < 0.0) or np.any(self.points >= 1.0 + 1e-12):
            raise ValueError("points must lie in [0, 1)")
        for k, cluster in enumerate(self.clusters):
            members = frozenset(np.flatnonzero(self.labels == k).tolist())
            if members != cluster.indices:
                raise ValueError(f"cluster {k} indices disagree with labels")
            if cluster.relevant_axes and max(cluster.relevant_axes) >= self.dimensionality:
                raise ValueError(f"cluster {k} has an out-of-range relevant axis")
