"""The serving front end: model cache plus async batch labeller.

Two pieces turn persisted models into a clustering *service*:

:class:`ModelCache`
    A per-process LRU over :func:`repro.serve.load_model`.  Capacity
    and model directory default to the ``REPRO_SERVE_CACHE`` /
    ``REPRO_MODEL_DIR`` knobs (via :mod:`repro.env`); hits, misses and
    evictions are counted both on the cache object and in the
    :mod:`repro.obs` counter registry, so the cache algebra is
    testable (``hits + misses == lookups``).

:class:`BatchLabeller`
    An asyncio front end that micro-batches concurrent label requests:
    requests queue up, and a worker coalesces them until either a
    point budget (``REPRO_SERVE_BATCH``) is reached or a delay window
    (``REPRO_SERVE_DELAY``) closes, then labels each model's share in
    **one** kernel call and splits the label vector back per request.
    Because :func:`~repro.core.correlation_cluster.label_points` is
    row-wise pure, the labels are bit-identical no matter how requests
    were coalesced — the batch-invariance property suite asserts it.

Failure semantics follow the resilience layer: a fault injected via
``REPRO_FAULTS`` (request keys look like ``serve|<model>|request<i>``)
or a model that fails to load poisons only the affected requests —
their futures carry the exception — while the worker loop and every
other in-flight request survive.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.correlation_cluster import label_points
from repro.data.normalize import apply_minmax
from repro.env import (
    faults_from_env,
    model_dir_from_env,
    serve_batch_from_env,
    serve_cache_from_env,
    serve_delay_from_env,
)
from repro.fabric.faults import FaultSpec, fire, parse_faults
from repro.serve.model import FittedModel, load_model
from repro.types import FloatArray, IntArray

__all__ = [
    "BatchLabeller",
    "LabellerStopped",
    "ModelCache",
    "latency_quantiles",
]


class LabellerStopped(RuntimeError):
    """A label request arrived at a stopping or stopped labeller.

    Raised synchronously by :meth:`BatchLabeller.label` — the request
    is *rejected*, never silently enqueued behind the stop sentinel
    where its future would dangle forever.
    """


class ModelCache:
    """LRU cache of loaded serving models, keyed by file name.

    Parameters
    ----------
    root:
        Directory holding the model files; defaults to the
        ``REPRO_MODEL_DIR`` knob.
    capacity:
        Maximum resident models; defaults to ``REPRO_SERVE_CACHE``.
        The least-recently-used model is dropped when a load would
        exceed it.
    mmap:
        Load models as read-only memmap views (the serving default) or
        as private in-memory copies.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        capacity: int | None = None,
        mmap: bool = True,
    ) -> None:
        self.root = Path(root if root is not None else model_dir_from_env())
        self.capacity = (
            int(capacity) if capacity is not None else serve_cache_from_env()
        )
        if self.capacity < 1:
            raise ValueError("model cache capacity must be >= 1")
        self.mmap = bool(mmap)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._models: OrderedDict[str, FittedModel] = OrderedDict()

    def path_of(self, name: str) -> Path:
        """Resolve a model name to its file inside the cache root.

        Names are plain file names — path separators and parent
        references are rejected so a request can never escape the
        model directory.
        """
        if (
            not name
            or name != Path(name).name
            or name in (".", "..")
        ):
            raise ValueError(f"model name must be a bare file name: {name!r}")
        return self.root / name

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def get(self, name: str) -> FittedModel:
        """The model for ``name``, loading (and possibly evicting) on miss.

        Load failures (missing file, corrupt format) propagate to the
        caller and leave the cache unchanged — a model that cannot be
        loaded is never cached, so a later retry sees the repaired
        file.
        """
        cached = self._models.get(name)
        if cached is not None:
            self._models.move_to_end(name)
            self.hits += 1
            obs.incr("serve.cache.hit")
            return cached
        self.misses += 1
        obs.incr("serve.cache.miss")
        model = load_model(self.path_of(name), mmap=self.mmap)
        self._models[name] = model
        while len(self._models) > self.capacity:
            self._models.popitem(last=False)
            self.evictions += 1
            obs.incr("serve.cache.evict")
        return model

    def invalidate(self, name: str | None = None) -> None:
        """Drop one cached model (or all of them when ``name`` is None)."""
        if name is None:
            self._models.clear()
        else:
            self._models.pop(name, None)


def latency_quantiles(
    latencies: Sequence[float], quantiles: Sequence[float] = (50.0, 99.0)
) -> dict[str, float]:
    """Percentiles (in seconds) of a latency sample, keyed ``p50``-style.

    Empty samples yield an empty dict rather than NaNs so callers can
    serialise the result directly.
    """
    if not latencies:
        return {}
    sample = np.asarray(latencies, dtype=np.float64)
    return {
        f"p{q:g}": float(np.percentile(sample, q)) for q in quantiles
    }


@dataclass
class _Request:
    """One in-flight label request."""

    model: str
    points: FloatArray
    future: asyncio.Future
    key: str
    submitted: float


_STOP = object()


@dataclass
class _FaultState:
    """Streaming re-implementation of :func:`plan_faults` matching.

    The supervisor plans faults against a known key list; the labeller
    sees request keys one at a time, so each directive keeps a count of
    the matching keys seen so far and fires on the ``cell``-th one.
    """

    spec: FaultSpec
    seen: int = 0
    fired: int = 0

    def should_fire(self, key: str) -> bool:
        if self.spec.match.lower() not in key.lower():
            return False
        index = self.seen
        self.seen += 1
        if index != self.spec.cell:
            return False
        if not self.spec.sabotages(self.fired):
            return False
        self.fired += 1
        return True


class BatchLabeller:
    """Asyncio micro-batching front end over a :class:`ModelCache`.

    Use as an async context manager::

        cache = ModelCache(root=model_dir)
        async with BatchLabeller(cache) as labeller:
            labels = await labeller.label("golden_d8.model", points)

    ``label`` coroutines may run concurrently from many tasks; the
    internal worker coalesces whatever is queued (up to the point
    budget, waiting at most the delay window for stragglers) and
    labels each model's share in one kernel call.
    """

    def __init__(
        self,
        cache: ModelCache,
        batch_points: int | None = None,
        delay: float | None = None,
    ) -> None:
        self._cache = cache
        self._batch_points = (
            int(batch_points)
            if batch_points is not None
            else serve_batch_from_env()
        )
        if self._batch_points < 1:
            raise ValueError("batch point budget must be >= 1")
        self._delay = (
            float(delay) if delay is not None else serve_delay_from_env()
        )
        if self._delay < 0.0:
            raise ValueError("batch delay must be >= 0")
        self._faults = [
            _FaultState(spec) for spec in parse_faults(faults_from_env())
        ]
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._closing = False
        self._sequence = 0
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.latencies: list[float] = []

    async def __aenter__(self) -> "BatchLabeller":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    def start(self) -> None:
        """Spawn the batching worker on the running event loop."""
        if self._worker is not None:
            raise RuntimeError("labeller already started")
        self._closing = False
        self._queue = asyncio.Queue()
        self._worker = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain and retire the worker, flushing in-flight batches.

        The closing flag flips *synchronously*, so every later
        :meth:`label` call fails fast with :class:`LabellerStopped`
        instead of parking a request behind the stop sentinel.
        Requests that were already queued — including any that slipped
        in between the flag and the sentinel at an await boundary —
        are labelled and resolved before ``stop`` returns: shutdown
        flushes work, it never drops it.
        """
        if self._worker is None or self._queue is None:
            return
        self._closing = True
        queue, worker = self._queue, self._worker
        await queue.put(_STOP)
        await worker
        stragglers: list[_Request] = []
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                stragglers.append(item)
        if stragglers:
            self._process(stragglers)
        self._worker = None
        self._queue = None

    async def label(self, model: str, points: FloatArray) -> IntArray:
        """Label one batch of raw query points against ``model``.

        Returns the per-point label vector (noise = ``-1``), identical
        to :meth:`repro.serve.FittedModel.label` on the same points —
        micro-batching never changes a label.  Raises whatever the
        model load or an injected fault raised for this request, and
        :class:`LabellerStopped` once :meth:`stop` has begun.
        """
        if self._closing:
            raise LabellerStopped(
                "labeller is stopped: the request was rejected, not "
                "silently dropped"
            )
        if self._queue is None:
            raise RuntimeError("labeller is not started")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("query points must be a 2-d array")
        key = f"serve|{model}|request{self._sequence}"
        self._sequence += 1
        self.requests += 1
        obs.incr("serve.requests")
        obs.incr("serve.points", int(points.shape[0]))
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        await self._queue.put(
            _Request(
                model=model,
                points=points,
                future=future,
                key=key,
                submitted=obs.perf_clock(),
            )
        )
        return await future

    def stats(self) -> dict[str, object]:
        """Service-side counters plus latency quantiles (seconds)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "errors": self.errors,
            "cache": {
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
            },
            "latency_s": latency_quantiles(self.latencies),
        }

    async def _run(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            head = await self._queue.get()
            if head is _STOP:
                break
            batch = [head]
            total = int(head.points.shape[0])
            deadline = loop.time() + self._delay
            while total < self._batch_points:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window closed: take whatever is already queued,
                    # but never block past the deadline.
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                    except asyncio.TimeoutError:
                        break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
                total += int(item.points.shape[0])
            self._process(batch)

    def _process(self, batch: list[_Request]) -> None:
        self.batches += 1
        obs.incr("serve.batches")
        with obs.span("serve.batch"):
            healthy: dict[str, list[_Request]] = {}
            for request in batch:
                fault = self._pick_fault(request.key)
                if fault is None:
                    healthy.setdefault(request.model, []).append(request)
                    continue
                try:
                    fire(fault.spec.kind, in_worker=False)
                except Exception as exc:  # InjectedFault / SimulatedKill
                    self._fail(request, exc)
            for model_name, requests in healthy.items():
                self._label_group(model_name, requests)

    def _pick_fault(self, key: str) -> _FaultState | None:
        for state in self._faults:
            if state.should_fire(key):
                return state
        return None

    def _label_group(self, model_name: str, requests: list[_Request]) -> None:
        try:
            model = self._cache.get(model_name)
            points = np.concatenate(
                [request.points for request in requests], axis=0
            )
            if points.shape[1] != model.dimensionality:
                raise ValueError(
                    f"query points have {points.shape[1]} axes, model "
                    f"{model_name!r} was fitted on {model.dimensionality}"
                )
            if model.normalizer is not None:
                points = apply_minmax(points, *model.normalizer)
            labels = label_points(points, model.betas, model.groups)
        except Exception as exc:
            for request in requests:
                self._fail(request, exc)
            return
        offset = 0
        now = obs.perf_clock()
        for request in requests:
            m = int(request.points.shape[0])
            request.future.set_result(labels[offset : offset + m])
            offset += m
            self.latencies.append(now - request.submitted)

    def _fail(self, request: _Request, exc: Exception) -> None:
        self.errors += 1
        obs.incr("serve.errors")
        request.future.set_exception(exc)
