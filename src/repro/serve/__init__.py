"""Clustering-as-a-service: persisted models and a serving front end.

The fit-once/label-many split of MrCC makes the fitted state — the
β-cluster boxes, their merged grouping, the normalisation map, the
Counting-tree — a natural *model artifact*.  This package persists
that artifact (:mod:`repro.serve.store`, :mod:`repro.serve.model`) in
a schema-versioned binary format whose level arrays can be memory-
mapped read-only, so N serving workers share one page-cache copy of
the tree, and serves it (:mod:`repro.serve.service`) behind an
asyncio micro-batching front end with a per-process model LRU.

Labels served from a loaded model are bit-identical to the labels the
in-memory ``MrCC.fit`` produced — across backends, across the
mmap/in-memory loading modes, and regardless of how requests were
micro-batched.  The serving test harness proves all three.
"""

from repro.serve.model import (
    FittedModel,
    load_model,
    model_from_estimator,
    save_model,
)
from repro.serve.service import (
    BatchLabeller,
    LabellerStopped,
    ModelCache,
    latency_quantiles,
)
from repro.serve.store import (
    MODEL_MAGIC,
    MODEL_SCHEMA_VERSION,
    ModelFormatError,
    read_model,
    write_model,
)

__all__ = [
    "MODEL_MAGIC",
    "MODEL_SCHEMA_VERSION",
    "BatchLabeller",
    "FittedModel",
    "LabellerStopped",
    "ModelCache",
    "ModelFormatError",
    "latency_quantiles",
    "load_model",
    "model_from_estimator",
    "read_model",
    "save_model",
    "write_model",
]
