"""Persisted MrCC models: save, load, and label against them.

A :class:`FittedModel` is the read path of the fit-once/label-many
estimator: everything phase 3 needs to label unseen points (β-cluster
boxes, their merged correlation-cluster grouping, the fitted
normalisation map) plus the phase-one Counting-tree levels, persisted
so the tree remains a reusable statistical index — diagnostics, refits
and future online updates read the same artifact the labellers serve
from.

:func:`save_model` writes the schema-versioned file described in
:mod:`repro.serve.store`; :func:`load_model` reconstitutes the model
either as process-private copies (``mmap=False``) or as read-only
``np.memmap`` views (the serving default), in which case any number of
worker processes share one page-cache copy of the level arrays.
Labels computed by a loaded model are bit-identical to the labels the
in-memory ``MrCC.fit`` produced — the serialization carries exact
float64/int64 bytes and the label path is the same
:func:`~repro.core.correlation_cluster.label_points` kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro import obs
from repro.core.beta_cluster import BetaCluster
from repro.core.contracts import check_array, check_labels
from repro.core.correlation_cluster import label_points, merge_beta_clusters
from repro.core.counting_tree import CountingTree, Level, tree_from_levels
from repro.core.mrcc import MrCC
from repro.core.streaming import assemble_result
from repro.data.normalize import apply_minmax
from repro.serve.store import ModelFormatError, read_model, write_model
from repro.types import ClusteringResult, FloatArray, IntArray

__all__ = [
    "FittedModel",
    "load_model",
    "model_from_estimator",
    "save_model",
]


@dataclass
class FittedModel:
    """One loaded (or about-to-be-saved) serving model.

    Attributes
    ----------
    meta:
        Scalar fit metadata (``alpha``, ``n_resolutions``, ``d``,
        ``n_points``, ``normalize``, producer version).
    betas:
        The β-cluster records, exactly as the fit produced them.
    groups:
        Merged correlation-cluster grouping (derived deterministically
        from ``betas`` at load, so it is never trusted from disk).
    levels:
        Counting-tree levels ``1 .. H-1``; possibly memmap-backed.
    normalizer:
        Fitted per-axis min-max ``(lo, span)``, or ``None`` when the
        model was fitted on data already in the unit cube.
    source:
        The file the model was loaded from, or ``None`` for in-memory
        models built straight from an estimator.
    """

    meta: dict[str, Any]
    betas: list[BetaCluster]
    groups: list[list[int]]
    levels: dict[int, Level]
    normalizer: tuple[FloatArray, FloatArray] | None
    source: Path | None = None

    @property
    def dimensionality(self) -> int:
        """Embedding dimensionality ``d``."""
        return int(self.meta["d"])

    @property
    def n_resolutions(self) -> int:
        """The paper's ``H``."""
        return int(self.meta["n_resolutions"])

    def tree(self) -> CountingTree:
        """The persisted phase-one Counting-tree (shares this model's
        level arrays — zero-copy over a memmap-backed model)."""
        return tree_from_levels(
            self.levels,
            self.dimensionality,
            int(self.meta["n_points"]),
            self.n_resolutions,
        )

    def label(self, points: FloatArray) -> IntArray:
        """Label one batch of raw query points (phase 3 only).

        Applies the model's fitted normalisation map (when present) and
        assigns each point to the correlation cluster whose member box
        contains it, :data:`~repro.types.NOISE_LABEL` otherwise —
        bit-identical to what ``MrCC.fit`` labelled for the training
        points.  Row-wise pure: labels never depend on how queries are
        batched.
        """
        points = np.asarray(points, dtype=np.float64)
        check_array("points", points, dtype=np.float64, ndim=2, finite=True)
        if points.shape[1] != self.dimensionality:
            raise ValueError(
                f"query points have {points.shape[1]} axes, the model "
                f"was fitted on {self.dimensionality}"
            )
        if self.normalizer is not None:
            points = apply_minmax(points, *self.normalizer)
        labels = label_points(points, self.betas, self.groups)
        return check_labels("labels", labels, n_points=points.shape[0])

    def label_result(self, points: FloatArray) -> ClusteringResult:
        """Like :meth:`label` but wrapped as a full
        :class:`~repro.types.ClusteringResult` with cluster records."""
        return assemble_result(self.label(points), self.betas, self.groups)

    def label_stream(self, chunks: Iterable[FloatArray]) -> ClusteringResult:
        """Label a stream of chunks against the persisted grouping.

        Thin wrapper over :func:`repro.core.streaming.label_stream`
        with this model's precomputed groups and normalisation.
        """
        from repro.core.streaming import label_stream

        if self.normalizer is not None:
            lo, span = self.normalizer
            chunks = (apply_minmax(chunk, lo, span) for chunk in chunks)
        return label_stream(chunks, self.betas, groups=self.groups)


def model_from_estimator(estimator: MrCC) -> FittedModel:
    """Snapshot a fitted :class:`~repro.core.mrcc.MrCC` as a model.

    Raises ``ValueError`` when the estimator has not been fitted.
    """
    if estimator.tree_ is None or estimator.beta_clusters_ is None:
        raise ValueError("cannot snapshot an unfitted MrCC estimator")
    tree = estimator.tree_
    betas = list(estimator.beta_clusters_)
    meta = {
        "alpha": float(estimator.alpha),
        "n_resolutions": int(tree.n_resolutions),
        "d": int(tree.dimensionality),
        "n_points": int(tree.n_points),
        "normalize": bool(estimator.normalize),
        "n_betas": len(betas),
        "version": _package_version(),
    }
    return FittedModel(
        meta=meta,
        betas=betas,
        groups=merge_beta_clusters(betas),
        levels={h: tree.level(h) for h in tree.levels},
        normalizer=estimator.normalizer_,
    )


def _package_version() -> str:
    from repro import __version__

    return __version__


def save_model(model: FittedModel | MrCC, path: str | Path) -> Path:
    """Persist a fitted model (or estimator) to ``path``.

    The byte layout is deterministic — same model, same bytes — so the
    golden fixtures can assert byte stability.  Returns the path
    written.
    """
    if isinstance(model, MrCC):
        model = model_from_estimator(model)
    path = Path(path)

    arrays: list[tuple[str, np.ndarray]] = []
    if model.normalizer is not None:
        lo, span = model.normalizer
        arrays.append(("norm/lo", np.asarray(lo, dtype="<f8")))
        arrays.append(("norm/span", np.asarray(span, dtype="<f8")))

    d = model.dimensionality
    betas = model.betas
    arrays.extend(
        [
            ("betas/lower", _stack(betas, "lower", d, "<f8")),
            ("betas/upper", _stack(betas, "upper", d, "<f8")),
            ("betas/relevant", _stack(betas, "relevant", d, "|b1")),
            ("betas/relevances", _stack(betas, "relevances", d, "<f8")),
            (
                "betas/level",
                np.array([b.level for b in betas], dtype="<i8"),
            ),
            (
                "betas/center_row",
                np.array([b.center_row for b in betas], dtype="<i8"),
            ),
        ]
    )
    for h in sorted(model.levels):
        soa = model.levels[h].soa()
        keys = np.asarray(soa.keys)
        arrays.append((f"level{h}/coords", soa.coords.astype("<i8", copy=False)))
        arrays.append((f"level{h}/counts", soa.counts.astype("<i8", copy=False)))
        arrays.append(
            (f"level{h}/half_counts", soa.half_counts.astype("<i8", copy=False))
        )
        arrays.append((f"level{h}/keys", keys))

    with obs.span("serve.save"):
        write_model(path, model.meta, arrays)
    obs.incr("serve.models_saved")
    return path


def _stack(
    betas: list[BetaCluster], field: str, d: int, dtype: str
) -> np.ndarray:
    rows = [np.asarray(getattr(b, field)) for b in betas]
    if not rows:
        return np.empty((0, d), dtype=dtype)
    return np.stack(rows).astype(dtype, copy=False)


_META_KEYS = frozenset(
    {"alpha", "n_resolutions", "d", "n_points", "normalize", "n_betas", "version"}
)


def load_model(path: str | Path, mmap: bool = True) -> FittedModel:
    """Load one model file into a :class:`FittedModel`.

    ``mmap=True`` keeps the level arrays as read-only memmap views —
    the per-worker resident cost of the tree is near zero and N
    processes opening the same file share one page-cache copy.  All
    structural facts (grouping, axis sets) are re-derived from the
    loaded β-clusters, never trusted from the header.

    Raises :class:`~repro.serve.store.ModelFormatError` on any missing,
    corrupt, truncated or version-skewed file.
    """
    path = Path(path)
    with obs.span("serve.load"):
        header, data = read_model(path, mmap=mmap)
        meta = header["meta"]
        if set(meta) != _META_KEYS:
            raise ModelFormatError(
                f"{path}: model meta keys mismatch: expected "
                f"{sorted(_META_KEYS)}, got {sorted(meta)}"
            )
        d = _meta_int(path, meta, "d", minimum=1)
        n_resolutions = _meta_int(path, meta, "n_resolutions", minimum=3)
        _meta_int(path, meta, "n_points", minimum=1)
        n_betas = _meta_int(path, meta, "n_betas", minimum=0)

        expected = _expected_arrays(meta, n_resolutions)
        if set(data) != set(expected):
            missing = sorted(set(expected) - set(data))
            extra = sorted(set(data) - set(expected))
            raise ModelFormatError(
                f"{path}: model arrays mismatch: missing {missing}, "
                f"unexpected {extra}"
            )

        betas = _betas_from_arrays(path, data, n_betas, d)
        levels = _levels_from_arrays(path, data, n_resolutions, d)
        normalizer = None
        if meta["normalize"]:
            lo, span = data["norm/lo"], data["norm/span"]
            if lo.shape != (d,) or span.shape != (d,):
                raise ModelFormatError(
                    f"{path}: normalizer arrays must have shape ({d},)"
                )
            normalizer = (np.asarray(lo), np.asarray(span))
        model = FittedModel(
            meta=dict(meta),
            betas=betas,
            groups=merge_beta_clusters(betas),
            levels=levels,
            normalizer=normalizer,
            source=path,
        )
    obs.incr("serve.models_loaded")
    return model


def _meta_int(path: Path, meta: dict[str, Any], key: str, minimum: int) -> int:
    value = meta.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ModelFormatError(
            f"{path}: model meta[{key!r}] must be an integer >= {minimum}, "
            f"got {value!r}"
        )
    return value


def _expected_arrays(meta: dict[str, Any], n_resolutions: int) -> list[str]:
    names = []
    if meta["normalize"]:
        names += ["norm/lo", "norm/span"]
    names += [
        "betas/lower",
        "betas/upper",
        "betas/relevant",
        "betas/relevances",
        "betas/level",
        "betas/center_row",
    ]
    for h in range(1, n_resolutions):
        names += [
            f"level{h}/coords",
            f"level{h}/counts",
            f"level{h}/half_counts",
            f"level{h}/keys",
        ]
    return names


def _betas_from_arrays(
    path: Path, data: dict[str, np.ndarray], n_betas: int, d: int
) -> list[BetaCluster]:
    shapes = {
        "betas/lower": (n_betas, d),
        "betas/upper": (n_betas, d),
        "betas/relevant": (n_betas, d),
        "betas/relevances": (n_betas, d),
        "betas/level": (n_betas,),
        "betas/center_row": (n_betas,),
    }
    for name, shape in shapes.items():
        if data[name].shape != shape:
            raise ModelFormatError(
                f"{path}: array {name!r} must have shape {shape}, got "
                f"{data[name].shape}"
            )
    betas = []
    for k in range(n_betas):
        betas.append(
            BetaCluster(
                lower=np.asarray(data["betas/lower"][k]),
                upper=np.asarray(data["betas/upper"][k]),
                relevant=np.asarray(data["betas/relevant"][k]),
                level=int(data["betas/level"][k]),
                center_row=int(data["betas/center_row"][k]),
                relevances=np.asarray(data["betas/relevances"][k]),
            )
        )
    return betas


def _levels_from_arrays(
    path: Path, data: dict[str, np.ndarray], n_resolutions: int, d: int
) -> dict[int, Level]:
    levels: dict[int, Level] = {}
    for h in range(1, n_resolutions):
        coords = data[f"level{h}/coords"]
        counts = data[f"level{h}/counts"]
        halves = data[f"level{h}/half_counts"]
        keys = data[f"level{h}/keys"]
        m = coords.shape[0]
        if coords.ndim != 2 or coords.shape[1] != d:
            raise ModelFormatError(
                f"{path}: level{h}/coords must have shape (m, {d}), got "
                f"{coords.shape}"
            )
        if counts.shape != (m,) or halves.shape != (m, d):
            raise ModelFormatError(
                f"{path}: level{h} counts/half_counts rows disagree with "
                f"coords ({m} cells)"
            )
        if keys.shape != (m,) or keys.dtype.itemsize != 4 * d:
            raise ModelFormatError(
                f"{path}: level{h}/keys must be {m} packed {4 * d}-byte "
                f"keys, got shape {keys.shape} itemsize {keys.dtype.itemsize}"
            )
        if m == 0:
            raise ModelFormatError(
                f"{path}: level{h} stores zero cells (a fitted tree "
                f"always has at least one populated cell per level)"
            )
        levels[h] = Level.from_key_sorted(h, coords, counts, halves, keys=keys)
    return levels
