"""The model file store: one binary format, one module that touches it.

A *model file* is the durable serving artifact of a fitted MrCC
estimator: the Counting-tree level arrays (the key-sorted
structure-of-arrays layout every builder produces), the β-cluster
records, the normalisation parameters and the fit metadata.  The layout
is designed for ``np.memmap``: a tiny JSON header followed by raw
little-endian array sections, each aligned to 64 bytes, so N serving
workers can open the same file read-only and share one page cache copy
of the tree — near-zero per-worker resident set.

Layout (schema v1)::

    offset 0   magic  b"REPROMDL"            (8 bytes)
    offset 8   header length, uint64 LE      (8 bytes)
    offset 16  JSON header, UTF-8            (header length bytes)
    ...        zero padding to the next 64-byte boundary
    data       array sections, each starting on a 64-byte boundary

The header is a JSON object with exactly five keys — ``schema``,
``generated_by`` (``"repro.serve"``), ``byte_order`` (``"little"``),
``meta`` (scalar fit metadata) and ``arrays`` (name, dtype string,
shape, offset relative to the data section, byte count per array).
Array offsets are relative to the data section — whose start the reader
derives as the first 64-byte boundary at or after the header — so the
header never has to describe its own length.

Like ``obs.schema`` and the resilience journal, the format is strictly
validated: wrong magic, a foreign schema version, a non-little byte
order, an unexpected dtype, a truncated section or a malformed header
all raise :class:`ModelFormatError` naming the problem, never a raw
``struct``/numpy traceback.  Every ``open``/``np.memmap`` of a model
file in the package happens in this module (repro-lint rule R012
enforces the funnel).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = [
    "MODEL_MAGIC",
    "MODEL_SCHEMA_VERSION",
    "ArraySection",
    "ModelFormatError",
    "read_model",
    "write_model",
]

MODEL_MAGIC = b"REPROMDL"
MODEL_SCHEMA_VERSION = 1

_ALIGNMENT = 64
"""Array sections start on cache-line boundaries so memmapped views are
aligned for every dtype the format carries."""

_HEADER_KEYS = frozenset({"schema", "generated_by", "byte_order", "meta", "arrays"})
_ARRAY_KEYS = frozenset({"name", "dtype", "shape", "offset", "nbytes"})

_SCALAR_DTYPES = frozenset({"<i8", "<f8", "|b1"})
"""Fixed little-endian dtypes the format admits, plus ``|V{n}`` void
rows for packed cell keys (validated separately)."""


class ModelFormatError(ValueError):
    """A model file is missing, corrupt, truncated or version-skewed."""


def _fail(message: str) -> None:
    raise ModelFormatError(message)


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _dtype_token(dtype: np.dtype) -> str:
    """Canonical header token for an admissible array dtype."""
    if dtype.kind == "V" and dtype.names is None:
        return f"|V{dtype.itemsize}"
    token = dtype.str
    if token == "|i8" or token == "=i8":  # pragma: no cover - platform spelling
        token = "<i8"
    if token not in _SCALAR_DTYPES:
        raise ModelFormatError(
            f"model arrays must be little-endian int64/float64/bool or "
            f"void keys, got dtype {dtype.str!r}"
        )
    return token


def _parse_dtype(token: str, name: str) -> np.dtype:
    """Validated numpy dtype for one header dtype token."""
    if not isinstance(token, str):
        _fail(f"array {name!r}: dtype must be a string, got {token!r}")
    if token in _SCALAR_DTYPES:
        return np.dtype(token)
    if token.startswith("|V"):
        try:
            width = int(token[2:])
        except ValueError:
            width = 0
        if width > 0:
            return np.dtype((np.void, width))
    _fail(
        f"array {name!r}: dtype {token!r} is not an admissible model "
        f"dtype (little-endian <i8/<f8, |b1, or |V<width> keys); a "
        f"big-endian or foreign dtype means the file was written by an "
        f"incompatible producer"
    )
    raise AssertionError("unreachable")


class ArraySection:
    """One named array inside a model file (header row + data view)."""

    def __init__(self, name: str, array: np.ndarray) -> None:
        self.name = name
        self.array = np.ascontiguousarray(array)
        self.dtype_token = _dtype_token(self.array.dtype)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(int(s) for s in self.array.shape)


def write_model(
    path: str | Path,
    meta: Mapping[str, Any],
    arrays: list[tuple[str, np.ndarray]],
) -> None:
    """Write one model file atomically (tmp file + rename).

    ``meta`` must be JSON-scalar valued; ``arrays`` is an ordered list
    of ``(name, array)`` pairs — the order is preserved and becomes part
    of the byte-stable layout, so two writes of the same model are
    byte-identical (the golden-model fixtures assert it).
    """
    path = Path(path)
    sections = [ArraySection(name, array) for name, array in arrays]
    names = [section.name for section in sections]
    if len(set(names)) != len(names):
        raise ModelFormatError(f"duplicate array names in model: {names}")
    for key, value in meta.items():
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            raise ModelFormatError(
                f"meta[{key!r}] must be a JSON scalar, "
                f"got {type(value).__name__}"
            )

    rows = []
    offset = 0
    for section in sections:
        offset = _align(offset)
        rows.append(
            {
                "name": section.name,
                "dtype": section.dtype_token,
                "shape": list(section.shape),
                "offset": offset,
                "nbytes": section.nbytes,
            }
        )
        offset += section.nbytes

    header = {
        "schema": MODEL_SCHEMA_VERSION,
        "generated_by": "repro.serve",
        "byte_order": "little",
        "meta": dict(meta),
        "arrays": rows,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    data_start = _align(len(MODEL_MAGIC) + 8 + len(header_bytes))

    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(MODEL_MAGIC)
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        handle.write(b"\x00" * (data_start - 16 - len(header_bytes)))
        cursor = 0
        for section, row in zip(sections, rows):
            handle.write(b"\x00" * (row["offset"] - cursor))
            handle.write(section.array.tobytes())
            cursor = row["offset"] + row["nbytes"]
        handle.flush()
    tmp.replace(path)


def _validate_header(payload: Any, path: Path) -> dict[str, Any]:
    if not isinstance(payload, dict):
        _fail(f"{path}: model header must be a JSON object")
    if set(payload) != _HEADER_KEYS:
        _fail(
            f"{path}: model header keys mismatch: expected "
            f"{sorted(_HEADER_KEYS)}, got {sorted(payload)}"
        )
    if payload["schema"] != MODEL_SCHEMA_VERSION:
        _fail(
            f"{path}: model schema must be {MODEL_SCHEMA_VERSION}, got "
            f"{payload['schema']!r} (written by an incompatible version)"
        )
    if payload["generated_by"] != "repro.serve":
        _fail(
            f"{path}: generated_by must be 'repro.serve', "
            f"got {payload['generated_by']!r}"
        )
    if payload["byte_order"] != "little":
        _fail(
            f"{path}: model byte order must be 'little', got "
            f"{payload['byte_order']!r} (cross-endian files are rejected)"
        )
    if not isinstance(payload["meta"], dict):
        _fail(f"{path}: model meta must be an object")
    rows = payload["arrays"]
    if not isinstance(rows, list):
        _fail(f"{path}: model arrays must be a list")
    seen: set[str] = set()
    previous_end = 0
    for index, row in enumerate(rows):
        if not isinstance(row, dict) or set(row) != _ARRAY_KEYS:
            _fail(
                f"{path}: arrays[{index}] keys mismatch: expected "
                f"{sorted(_ARRAY_KEYS)}"
            )
        name = row["name"]
        if not isinstance(name, str) or not name:
            _fail(f"{path}: arrays[{index}].name must be a non-empty string")
        if name in seen:
            _fail(f"{path}: duplicate array name {name!r}")
        seen.add(name)
        dtype = _parse_dtype(row["dtype"], name)
        shape = row["shape"]
        if not isinstance(shape, list) or not all(
            isinstance(s, int) and not isinstance(s, bool) and s >= 0
            for s in shape
        ):
            _fail(f"{path}: array {name!r} shape must be non-negative ints")
        expected_nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset, nbytes = row["offset"], row["nbytes"]
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            _fail(f"{path}: array {name!r} offset must be a non-negative int")
        if nbytes != expected_nbytes:
            _fail(
                f"{path}: array {name!r} declares {nbytes!r} bytes but "
                f"shape {shape} x {row['dtype']} needs {expected_nbytes}"
            )
        if offset % _ALIGNMENT:
            _fail(f"{path}: array {name!r} offset {offset} is unaligned")
        if offset < previous_end:
            _fail(f"{path}: array {name!r} overlaps the previous section")
        previous_end = offset + nbytes
    return payload


def read_model(
    path: str | Path, mmap: bool = True
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Read one model file: ``(header, name -> array)``.

    ``mmap=True`` (the serving default) maps the data section read-only
    with :class:`np.memmap`, so the returned arrays are OS-shared pages
    — concurrent readers of the same file pay for the tree once.
    ``mmap=False`` copies every array into process-private memory and
    releases the file immediately (the fit/tooling path).

    Raises :class:`ModelFormatError` for anything that is not a valid
    schema-v1 model file, including a vanished or truncated file.
    """
    path = Path(path)
    try:
        file_size = path.stat().st_size
        with path.open("rb") as handle:
            prefix = handle.read(16)
            if len(prefix) < 16:
                _fail(f"{path}: truncated model file ({file_size} bytes)")
            if prefix[:8] != MODEL_MAGIC:
                _fail(
                    f"{path}: bad magic {prefix[:8]!r} "
                    f"(not a repro model file)"
                )
            header_len = int.from_bytes(prefix[8:16], "little")
            if 16 + header_len > file_size:
                _fail(
                    f"{path}: truncated model header (declares "
                    f"{header_len} bytes, file has {file_size})"
                )
            header_bytes = handle.read(header_len)
        try:
            payload = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            _fail(f"{path}: corrupt model header (not valid JSON)")
        payload = _validate_header(payload, path)
        data_start = _align(16 + header_len)

        arrays: dict[str, np.ndarray] = {}
        buffer: np.ndarray | None = None
        for row in payload["arrays"]:
            dtype = _parse_dtype(row["dtype"], row["name"])
            shape = tuple(row["shape"])
            start = data_start + row["offset"]
            end = start + row["nbytes"]
            if end > file_size:
                _fail(
                    f"{path}: truncated model file (array "
                    f"{row['name']!r} needs bytes [{start}, {end}), file "
                    f"has {file_size})"
                )
            if row["nbytes"] == 0:
                arrays[row["name"]] = np.empty(shape, dtype=dtype)
                continue
            if buffer is None:
                if mmap:
                    buffer = np.memmap(path, dtype=np.uint8, mode="r")
                else:
                    buffer = np.frombuffer(path.read_bytes(), dtype=np.uint8)
            view = buffer[start:end].view(dtype).reshape(shape)
            arrays[row["name"]] = view if mmap else view.copy()
        return payload, arrays
    except OSError as error:
        raise ModelFormatError(
            f"{path}: model file unreadable ({error.__class__.__name__}: "
            f"{error})"
        ) from error
