"""Run methods over datasets with the paper's measurement protocol.

For each (method, dataset) pair the paper reports the configuration
with the best Quality over the method's tuning grid, together with the
run time (seconds) and memory consumption (KB) of that configuration.
:func:`run_method_on_dataset` reproduces that protocol; non-deterministic
methods (CFPC in the paper) average over ``n_repeats`` seeded runs.

:func:`run_suite` runs the (dataset, method, configuration) grid under
the :mod:`repro.fabric` supervisor on both execution paths:

* ``n_jobs`` (or ``REPRO_JOBS``) fans cells out over worker processes;
  the default of 1 runs them inline.  Either way the reduction replays
  the serial grid order, so every deterministic row field matches a
  serial run (the measured ``seconds`` and ``peak_kb`` still depend on
  machine load, as they do serially).
* A cell that raises, hangs past ``REPRO_TASK_TIMEOUT`` or takes its
  worker process down costs exactly that cell: after the
  ``REPRO_RETRIES`` budget it degrades into a structured error row
  (``status``/``attempts``/``error``) and the suite keeps going.
* ``journal=`` appends one JSONL record per finished cell;
  ``resume=`` skips journaled cells and reproduces the remaining rows
  bit-identically against an uninterrupted run.

Successful suite rows carry ``status`` (``ok``, or ``retried`` when the
winning cell needed a retry) and ``attempts`` next to the metric
fields; error rows carry ``status``/``attempts``/``error`` and *no*
metric fields, which ``report``/``summary`` render as partial tables.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro import obs
from repro.env import jobs_from_env
from repro.evaluation.quality import evaluate_clustering
from repro.evaluation.resources import measure
from repro.experiments.config import (
    HEADLINE_METHODS,
    MethodSpec,
    method_registry,
    profile_from_env,
)
from repro.fabric.faults import FaultSpec, fire
from repro.fabric.journal import RunJournal, load_records, pending_leases
from repro.fabric.sharding import ShardSpec, parse_shard, shard_tasks
from repro.fabric.supervisor import CellOutcome, Task, run_supervised
from repro.types import Dataset

__all__ = [
    "DEFAULT_N_REPEATS",
    "jobs_from_env",
    "run_method_on_dataset",
    "run_suite",
]

DEFAULT_N_REPEATS = 3
"""Seeded repeats for non-deterministic methods (the paper's protocol)."""


def run_method_on_dataset(
    spec: MethodSpec,
    dataset: Dataset,
    profile: str | None = None,
    n_repeats: int = DEFAULT_N_REPEATS,
    track_memory: bool = True,
) -> dict:
    """Best-Quality row for one method on one dataset (Section IV-E).

    Returns a flat dict: method, dataset, quality, subspaces_quality,
    seconds, peak_kb, n_found plus the winning parameters.
    """
    profile = profile or profile_from_env()
    best_row: dict | None = None
    for params in spec.grid(dataset, profile):
        row = _run_configuration(spec, dataset, params, n_repeats, track_memory=False)
        if best_row is None or _is_better(row, best_row):
            best_row = row
    if best_row is None:
        raise RuntimeError(f"{spec.name} produced an empty tuning grid")
    if track_memory:
        _attach_memory_pass(spec, dataset, best_row)
    return best_row


def _is_better(row: dict, best_row: dict) -> bool:
    """NaN-aware best-quality comparison for the tuning-grid reduction.

    ``row["quality"] > best`` is always ``False`` when either side is
    NaN, so a NaN row could silently *win* (by arriving first) or a NaN
    incumbent could never be displaced.  Treat NaN explicitly as worse
    than any number; ties keep the earlier grid entry, preserving the
    serial tie-breaking.
    """
    quality = row["quality"]
    incumbent = best_row["quality"]
    if math.isnan(quality):
        return False
    if math.isnan(incumbent):
        return True
    return quality > incumbent


def _attach_memory_pass(spec: MethodSpec, dataset: Dataset, row: dict) -> None:
    """One memory pass on the winning configuration only; the sweep
    itself runs untraced so the seconds panel stays undistorted."""
    method = spec.build(dataset, **row["params"])
    memory = measure(lambda: method.fit(dataset.points), track_memory=True)
    row["peak_kb"] = memory.peak_kb


def _run_configuration(
    spec: MethodSpec,
    dataset: Dataset,
    params: dict,
    n_repeats: int,
    track_memory: bool,
) -> dict:
    """One configuration; seeded repeats for non-deterministic methods."""
    repeats = 1 if spec.deterministic else max(1, n_repeats)
    qualities, subspace_qualities, seconds, peaks, found = [], [], [], [], []
    for seed in range(repeats):
        extra = {} if spec.deterministic else {"random_state": seed}
        # Timing pass without the allocation tracer (tracemalloc slows
        # allocation-heavy code down and would distort the seconds
        # panel), then an optional separate memory pass.
        method = spec.build(dataset, **params, **extra)
        timing = measure(lambda m=method: m.fit(dataset.points), track_memory=False)
        report = evaluate_clustering(timing.value, dataset)
        if track_memory:
            method = spec.build(dataset, **params, **extra)
            memory = measure(
                lambda m=method: m.fit(dataset.points), track_memory=True
            )
            peaks.append(memory.peak_kb)
        else:
            peaks.append(0.0)
        qualities.append(report.quality)
        subspace_qualities.append(report.subspaces_quality)
        seconds.append(timing.seconds)
        found.append(report.n_found)
    return {
        "method": spec.name,
        "dataset": dataset.name,
        "quality": float(np.mean(qualities)),
        "subspaces_quality": float(np.mean(subspace_qualities)),
        "seconds": float(np.mean(seconds)),
        "peak_kb": float(np.mean(peaks)),
        "n_found": float(np.mean(found)),
        "n_real": dataset.n_clusters,
        "params": dict(params),
    }


def _configuration_task(
    method_name: str,
    dataset: Dataset,
    params: dict,
    n_repeats: int,
    *,
    attempt: int,
    fault: str | None,
    in_worker: bool,
) -> dict:
    """Supervised unit: one (dataset, method, configuration) cell.

    ``MethodSpec`` builders are closures and do not pickle, so workers
    rebuild the registry and look the spec up by name.  Seeded repeats
    run inside the task, keeping the per-configuration seed sequence of
    the serial sweep; ``attempt`` is deliberately unused — a retried
    attempt recomputes the exact same row, which is what makes retry
    transparent to the result table.

    ``fault`` is the planned injection directive for this attempt (the
    supervisor ships it as a plain argument so this closure stays free
    of ambient reads); it fires before any work so a sabotaged attempt
    costs nothing.

    Tracing: a worker process inherits its tracer from ``REPRO_TRACE``
    at import (or the forked parent state) and must not install one
    here — the purity pass forbids module-state writes in this closure.
    The task only *reads* the tracer.  Under ``in_worker`` the cell's
    counters and spans travel back as a ``"_trace"`` delta that the
    parent folds in and strips before reduction; inline (serial) the
    live tracer already counted them, so emitting a delta would double
    count.
    """
    if fault is not None:
        fire(fault, in_worker)
    spec = method_registry()[method_name]
    if not in_worker:
        return _run_configuration(spec, dataset, params, n_repeats, track_memory=False)
    base = obs.mark()
    row = _run_configuration(spec, dataset, params, n_repeats, track_memory=False)
    delta = obs.since(base)
    if delta is not None:
        row["_trace"] = delta
    return row


def run_suite(
    datasets,
    methods: tuple[str, ...] = HEADLINE_METHODS,
    profile: str | None = None,
    track_memory: bool = True,
    n_jobs: int | None = None,
    retries: int | None = None,
    timeout: float | None = None,
    backoff: float | None = None,
    faults: str | tuple[FaultSpec, ...] | None = None,
    journal: str | Path | RunJournal | None = None,
    resume: bool | str | Path | Mapping[str, Mapping[str, Any]] = False,
    shard: str | ShardSpec | None = None,
) -> list[dict]:
    """Run the selected methods over a dataset iterable; rows per pair.

    ``n_jobs`` (default: the ``REPRO_JOBS`` environment variable, else
    1) fans the (dataset, method, configuration) grid over worker
    processes; both paths run under the job fabric, so a failing cell
    degrades into a structured error row instead of aborting the
    sweep.  ``retries``/``timeout``/``backoff``/``faults`` default to
    their ``REPRO_*`` environment knobs.

    ``journal`` (a path or an open :class:`RunJournal`) records one
    JSONL line per finished cell.  ``resume`` skips already-journaled
    cells: ``True`` loads the ``journal`` path, or pass a journal path
    or a preloaded ``key -> record`` index directly.  A resume path
    that does not exist yet simply means a fresh run.

    ``shard`` (``"i/n"`` or a parsed :class:`ShardSpec`) runs only this
    host's deterministic slice of the grid — cell ``c`` belongs to
    shard ``i`` iff ``c % n == i`` — so ``n`` hosts cover the grid with
    no coordination beyond a ``fabric merge`` of their journals.
    """
    registry = method_registry()
    unknown = [m for m in methods if m not in registry]
    if unknown:
        raise ValueError(f"unknown methods: {unknown}")
    n_jobs = jobs_from_env() if n_jobs is None else int(n_jobs)
    profile = profile or profile_from_env()
    datasets = list(datasets)
    if isinstance(shard, str):
        shard = parse_shard(shard)

    cells, tasks = _enumerate_cells(datasets, methods, registry, profile)
    n_cells = len(tasks)
    if shard is not None:
        cells = [
            cell for index, cell in enumerate(cells) if shard.owns(index)
        ]
        tasks = shard_tasks(tasks, shard)
    resume_index = _resolve_resume(resume, journal)
    run_journal, owns_journal = _open_journal(
        journal, datasets, methods, profile, n_cells, shard
    )
    try:
        with obs.span("suite.run"):
            outcomes = run_supervised(
                _configuration_task,
                tasks,
                n_jobs=n_jobs,
                retries=retries,
                timeout=timeout,
                backoff=backoff,
                faults=faults,
                journal=run_journal,
                resume=resume_index,
            )
            # Fold worker trace deltas back in (task order is the serial
            # sweep order, so the merged span sequence is deterministic)
            # and strip the side channel before reduction so rows compare
            # equal to a serial run.  Inline and resumed cells carry no
            # delta.
            for outcome in outcomes:
                if outcome.row is not None:
                    obs.absorb(outcome.row.pop("_trace", None))
            return _reduce_outcomes(
                cells, outcomes, datasets, methods, registry, track_memory
            )
    finally:
        if owns_journal and run_journal is not None:
            run_journal.close()


def _cell_key(dataset_name: str, method_name: str, params: dict) -> str:
    """Stable identity of one grid cell (journal key, fault target)."""
    return f"{dataset_name}|{method_name}|{json.dumps(params, sort_keys=True)}"


def _enumerate_cells(
    datasets: list[Dataset],
    methods: tuple[str, ...],
    registry: dict[str, MethodSpec],
    profile: str,
) -> tuple[list[tuple[int, str, dict]], list[Task]]:
    """The grid in serial sweep order, as (cells, supervised tasks)."""
    cells: list[tuple[int, str, dict]] = []
    tasks: list[Task] = []
    for dataset_index, dataset in enumerate(datasets):
        for name in methods:
            grid = list(registry[name].grid(dataset, profile))
            if not grid:
                raise RuntimeError(f"{name} produced an empty tuning grid")
            for params in grid:
                cells.append((dataset_index, name, params))
                tasks.append(
                    Task(
                        key=_cell_key(dataset.name, name, params),
                        args=(name, dataset, params, DEFAULT_N_REPEATS),
                    )
                )
    return cells, tasks


def _resolve_resume(
    resume: bool | str | Path | Mapping[str, Mapping[str, Any]],
    journal: str | Path | RunJournal | None,
) -> dict[str, Mapping[str, Any]]:
    """Normalise the ``resume`` argument into a ``key -> record`` index."""
    if resume is False or resume is None:
        return {}
    if resume is True:
        if isinstance(journal, RunJournal):
            path = journal.path
        elif journal is not None:
            path = Path(journal)
        else:
            raise ValueError("resume=True needs a journal path to resume from")
        return _load_resume_index(path) if path.exists() else {}
    if isinstance(resume, (str, Path)):
        path = Path(resume)
        return _load_resume_index(path) if path.exists() else {}
    return dict(resume)


def _load_resume_index(path: Path) -> dict[str, Mapping[str, Any]]:
    """Committed cells of a journal; expired leases become a counter.

    A lease with no commit is a cell the previous run died inside —
    it stays out of the index, so the fabric re-issues it exactly once
    (the lease-expiry half of the exactly-once contract).
    """
    records = load_records(path)
    expired = pending_leases(records)
    if expired:
        obs.incr("fabric.leases_expired", len(expired))
    return {
        record["key"]: record
        for record in records
        if record["kind"] == "cell"
    }


def _open_journal(
    journal: str | Path | RunJournal | None,
    datasets: list[Dataset],
    methods: tuple[str, ...],
    profile: str,
    n_cells: int,
    shard: ShardSpec | None,
) -> tuple[RunJournal | None, bool]:
    """Open a journal given as a path; pass through an open one.

    ``n_cells`` is the *full* grid size (all shards), so ``fabric
    status`` can report progress against the real total; the ``shard``
    key is present only for sharded runs, which is what lets ``fabric
    merge`` both validate the partition and emit a merged header
    byte-identical to an unsharded run's.
    """
    if journal is None:
        return None, False
    if isinstance(journal, RunJournal):
        return journal, False
    meta: dict[str, Any] = {
        "datasets": [dataset.name for dataset in datasets],
        "methods": list(methods),
        "profile": profile,
        "n_cells": n_cells,
    }
    if shard is not None:
        meta["shard"] = str(shard)
    return RunJournal(journal, meta=meta), True


def _reduce_outcomes(
    cells: list[tuple[int, str, dict]],
    outcomes: list[CellOutcome],
    datasets: list[Dataset],
    methods: tuple[str, ...],
    registry: dict[str, MethodSpec],
    track_memory: bool,
) -> list[dict]:
    """Reduce cell outcomes to suite rows, degrading gracefully.

    Walking cells in the serial sweep order keeps the strictly-better
    reduction's tie-breaking (first grid entry wins ties).  Each pair
    contributes its best successful row — annotated with the winning
    cell's ``status``/``attempts`` — followed by one structured error
    row per terminally-failed cell; a pair whose every cell failed
    contributes only error rows.  The optional memory pass happens in
    the parent on winning configurations only, exactly as serially.
    """
    best: dict[tuple[int, str], tuple[dict, CellOutcome]] = {}
    errors: dict[tuple[int, str], list[dict]] = {}
    for (dataset_index, name, params), outcome in zip(cells, outcomes):
        pair = (dataset_index, name)
        if outcome.row is not None:
            if pair not in best or _is_better(outcome.row, best[pair][0]):
                best[pair] = (outcome.row, outcome)
        else:
            errors.setdefault(pair, []).append(
                _error_row(datasets[dataset_index], name, params, outcome)
            )

    rows = []
    for dataset_index, dataset in enumerate(datasets):
        for name in methods:
            pair = (dataset_index, name)
            if pair in best:
                row, outcome = best[pair]
                row["status"] = outcome.status
                row["attempts"] = outcome.attempts
                if track_memory:
                    _attach_memory_pass(registry[name], dataset, row)
                rows.append(row)
            rows.extend(errors.get(pair, ()))
    return rows


def _error_row(
    dataset: Dataset, method_name: str, params: dict, outcome: CellOutcome
) -> dict:
    """Structured stand-in for a cell that exhausted its retry budget.

    Carries no metric fields — ``report`` renders the gaps as blanks
    and ``summary`` skips the row — so a partially-failed suite still
    produces its table.
    """
    return {
        "method": method_name,
        "dataset": dataset.name,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "error": dict(outcome.error or {}),
        "params": dict(params),
    }
