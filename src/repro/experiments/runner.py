"""Run methods over datasets with the paper's measurement protocol.

For each (method, dataset) pair the paper reports the configuration
with the best Quality over the method's tuning grid, together with the
run time (seconds) and memory consumption (KB) of that configuration.
:func:`run_method_on_dataset` reproduces that protocol; non-deterministic
methods (CFPC in the paper) average over ``n_repeats`` seeded runs.

:func:`run_suite` can fan the (dataset, method, configuration) grid out
over worker processes: set ``REPRO_JOBS`` (or pass ``n_jobs``) to the
worker count.  The default of 1 keeps the exact serial code path, so
results and timings are unaffected unless parallelism is requested;
with workers the reduction replays the serial grid order, so every
deterministic row field matches a serial run (the measured ``seconds``
and ``peak_kb`` still depend on machine load, as they do serially).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.env import jobs_from_env
from repro.evaluation.quality import evaluate_clustering
from repro.evaluation.resources import measure
from repro.experiments.config import (
    HEADLINE_METHODS,
    MethodSpec,
    method_registry,
    profile_from_env,
)
from repro.types import Dataset

__all__ = [
    "DEFAULT_N_REPEATS",
    "jobs_from_env",
    "run_method_on_dataset",
    "run_suite",
]

DEFAULT_N_REPEATS = 3
"""Seeded repeats for non-deterministic methods (the paper's protocol)."""


def run_method_on_dataset(
    spec: MethodSpec,
    dataset: Dataset,
    profile: str | None = None,
    n_repeats: int = DEFAULT_N_REPEATS,
    track_memory: bool = True,
) -> dict:
    """Best-Quality row for one method on one dataset (Section IV-E).

    Returns a flat dict: method, dataset, quality, subspaces_quality,
    seconds, peak_kb, n_found plus the winning parameters.
    """
    profile = profile or profile_from_env()
    best_row: dict | None = None
    for params in spec.grid(dataset, profile):
        row = _run_configuration(spec, dataset, params, n_repeats, track_memory=False)
        if best_row is None or row["quality"] > best_row["quality"]:
            best_row = row
    if best_row is None:
        raise RuntimeError(f"{spec.name} produced an empty tuning grid")
    if track_memory:
        _attach_memory_pass(spec, dataset, best_row)
    return best_row


def _attach_memory_pass(spec: MethodSpec, dataset: Dataset, row: dict) -> None:
    """One memory pass on the winning configuration only; the sweep
    itself runs untraced so the seconds panel stays undistorted."""
    method = spec.build(dataset, **row["params"])
    memory = measure(lambda: method.fit(dataset.points), track_memory=True)
    row["peak_kb"] = memory.peak_kb


def _run_configuration(
    spec: MethodSpec,
    dataset: Dataset,
    params: dict,
    n_repeats: int,
    track_memory: bool,
) -> dict:
    """One configuration; seeded repeats for non-deterministic methods."""
    repeats = 1 if spec.deterministic else max(1, n_repeats)
    qualities, subspace_qualities, seconds, peaks, found = [], [], [], [], []
    for seed in range(repeats):
        extra = {} if spec.deterministic else {"random_state": seed}
        # Timing pass without the allocation tracer (tracemalloc slows
        # allocation-heavy code down and would distort the seconds
        # panel), then an optional separate memory pass.
        method = spec.build(dataset, **params, **extra)
        timing = measure(lambda m=method: m.fit(dataset.points), track_memory=False)
        report = evaluate_clustering(timing.value, dataset)
        if track_memory:
            method = spec.build(dataset, **params, **extra)
            memory = measure(
                lambda m=method: m.fit(dataset.points), track_memory=True
            )
            peaks.append(memory.peak_kb)
        else:
            peaks.append(0.0)
        qualities.append(report.quality)
        subspace_qualities.append(report.subspaces_quality)
        seconds.append(timing.seconds)
        found.append(report.n_found)
    return {
        "method": spec.name,
        "dataset": dataset.name,
        "quality": float(np.mean(qualities)),
        "subspaces_quality": float(np.mean(subspace_qualities)),
        "seconds": float(np.mean(seconds)),
        "peak_kb": float(np.mean(peaks)),
        "n_found": float(np.mean(found)),
        "n_real": dataset.n_clusters,
        "params": dict(params),
    }


def _configuration_task(
    method_name: str, dataset: Dataset, params: dict, n_repeats: int
) -> dict:
    """Worker-side unit: one (dataset, method, configuration) cell.

    ``MethodSpec`` builders are closures and do not pickle, so workers
    rebuild the registry and look the spec up by name.  Seeded repeats
    run inside the task, keeping the per-configuration seed sequence of
    the serial sweep.

    Tracing: a worker process inherits its tracer from ``REPRO_TRACE``
    at import (or the forked parent state) and must not install one
    here — the purity pass forbids module-state writes in this closure.
    The task only *reads* the tracer: counters and spans produced by
    this cell travel back as a ``"_trace"`` delta that the parent folds
    in and strips before reduction, so result rows match a serial run.
    """
    spec = method_registry()[method_name]
    base = obs.mark()
    row = _run_configuration(spec, dataset, params, n_repeats, track_memory=False)
    delta = obs.since(base)
    if delta is not None:
        row["_trace"] = delta
    return row


def run_suite(
    datasets,
    methods: tuple[str, ...] = HEADLINE_METHODS,
    profile: str | None = None,
    track_memory: bool = True,
    n_jobs: int | None = None,
) -> list[dict]:
    """Run the selected methods over a dataset iterable; rows per pair.

    ``n_jobs`` (default: the ``REPRO_JOBS`` environment variable, else
    1) fans the (dataset, method, configuration) grid over worker
    processes.  ``n_jobs=1`` runs the untouched serial path.
    """
    registry = method_registry()
    unknown = [m for m in methods if m not in registry]
    if unknown:
        raise ValueError(f"unknown methods: {unknown}")
    n_jobs = jobs_from_env() if n_jobs is None else int(n_jobs)
    datasets = list(datasets)
    with obs.span("suite.run"):
        if n_jobs <= 1:
            rows = []
            for dataset in datasets:
                for name in methods:
                    rows.append(
                        run_method_on_dataset(
                            registry[name], dataset, profile=profile,
                            track_memory=track_memory,
                        )
                    )
            return rows
        return _run_suite_parallel(
            datasets, methods, registry, profile, track_memory, n_jobs
        )


def _run_suite_parallel(
    datasets: list[Dataset],
    methods: tuple[str, ...],
    registry: dict[str, MethodSpec],
    profile: str | None,
    track_memory: bool,
    n_jobs: int,
) -> list[dict]:
    """Fan the configuration grid over processes; reduce to best rows.

    The reduction walks tasks in the serial sweep order and keeps the
    strictly-better row, which reproduces the serial tie-breaking
    (first grid entry wins ties); the optional memory pass happens in
    the parent on winning configurations only, exactly as serially.
    """
    profile = profile or profile_from_env()
    tasks: list[tuple[int, str, dict]] = []
    for dataset_index, dataset in enumerate(datasets):
        for name in methods:
            for params in registry[name].grid(dataset, profile):
                tasks.append((dataset_index, name, params))

    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        futures = [
            pool.submit(
                _configuration_task,
                name,
                datasets[dataset_index],
                params,
                DEFAULT_N_REPEATS,
            )
            for dataset_index, name, params in tasks
        ]
        results = [future.result() for future in futures]

    # Fold worker trace deltas back in (serial sweep order, so the
    # merged span sequence is deterministic) and strip the side channel
    # before reduction so rows compare equal to a serial run.
    for row in results:
        obs.absorb(row.pop("_trace", None))

    best: dict[tuple[int, str], dict] = {}
    for (dataset_index, name, _), row in zip(tasks, results):
        key = (dataset_index, name)
        if key not in best or row["quality"] > best[key]["quality"]:
            best[key] = row

    rows = []
    for dataset_index, dataset in enumerate(datasets):
        for name in methods:
            if (dataset_index, name) not in best:
                raise RuntimeError(f"{name} produced an empty tuning grid")
            row = best[(dataset_index, name)]
            if track_memory:
                _attach_memory_pass(registry[name], dataset, row)
            rows.append(row)
    return rows
