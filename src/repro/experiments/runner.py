"""Run methods over datasets with the paper's measurement protocol.

For each (method, dataset) pair the paper reports the configuration
with the best Quality over the method's tuning grid, together with the
run time (seconds) and memory consumption (KB) of that configuration.
:func:`run_method_on_dataset` reproduces that protocol; non-deterministic
methods (CFPC in the paper) average over ``n_repeats`` seeded runs.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.quality import evaluate_clustering
from repro.evaluation.resources import measure
from repro.experiments.config import (
    HEADLINE_METHODS,
    MethodSpec,
    method_registry,
    profile_from_env,
)
from repro.types import Dataset


def run_method_on_dataset(
    spec: MethodSpec,
    dataset: Dataset,
    profile: str | None = None,
    n_repeats: int = 3,
    track_memory: bool = True,
) -> dict:
    """Best-Quality row for one method on one dataset (Section IV-E).

    Returns a flat dict: method, dataset, quality, subspaces_quality,
    seconds, peak_kb, n_found plus the winning parameters.
    """
    profile = profile or profile_from_env()
    best_row: dict | None = None
    for params in spec.grid(dataset, profile):
        row = _run_configuration(spec, dataset, params, n_repeats, track_memory=False)
        if best_row is None or row["quality"] > best_row["quality"]:
            best_row = row
    if best_row is None:
        raise RuntimeError(f"{spec.name} produced an empty tuning grid")
    if track_memory:
        # One memory pass on the winning configuration only; the sweep
        # itself runs untraced so the seconds panel stays undistorted.
        method = spec.build(dataset, **best_row["params"])
        memory = measure(lambda: method.fit(dataset.points), track_memory=True)
        best_row["peak_kb"] = memory.peak_kb
    return best_row


def _run_configuration(
    spec: MethodSpec,
    dataset: Dataset,
    params: dict,
    n_repeats: int,
    track_memory: bool,
) -> dict:
    """One configuration; seeded repeats for non-deterministic methods."""
    repeats = 1 if spec.deterministic else max(1, n_repeats)
    qualities, subspace_qualities, seconds, peaks, found = [], [], [], [], []
    for seed in range(repeats):
        extra = {} if spec.deterministic else {"random_state": seed}
        # Timing pass without the allocation tracer (tracemalloc slows
        # allocation-heavy code down and would distort the seconds
        # panel), then an optional separate memory pass.
        method = spec.build(dataset, **params, **extra)
        timing = measure(lambda m=method: m.fit(dataset.points), track_memory=False)
        report = evaluate_clustering(timing.value, dataset)
        if track_memory:
            method = spec.build(dataset, **params, **extra)
            memory = measure(
                lambda m=method: m.fit(dataset.points), track_memory=True
            )
            peaks.append(memory.peak_kb)
        else:
            peaks.append(0.0)
        qualities.append(report.quality)
        subspace_qualities.append(report.subspaces_quality)
        seconds.append(timing.seconds)
        found.append(report.n_found)
    return {
        "method": spec.name,
        "dataset": dataset.name,
        "quality": float(np.mean(qualities)),
        "subspaces_quality": float(np.mean(subspace_qualities)),
        "seconds": float(np.mean(seconds)),
        "peak_kb": float(np.mean(peaks)),
        "n_found": float(np.mean(found)),
        "n_real": dataset.n_clusters,
        "params": dict(params),
    }


def run_suite(
    datasets,
    methods: tuple[str, ...] = HEADLINE_METHODS,
    profile: str | None = None,
    track_memory: bool = True,
) -> list[dict]:
    """Run the selected methods over a dataset iterable; rows per pair."""
    registry = method_registry()
    unknown = [m for m in methods if m not in registry]
    if unknown:
        raise ValueError(f"unknown methods: {unknown}")
    rows = []
    for dataset in datasets:
        for name in methods:
            rows.append(
                run_method_on_dataset(
                    registry[name], dataset, profile=profile, track_memory=track_memory
                )
            )
    return rows
