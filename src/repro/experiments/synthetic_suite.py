"""Figure 5a-s — the synthetic comparison sweeps.

One entry per figure row, mapping the exhibit to its dataset suite and
the metric of each panel.  The drivers return tidy rows (via
:func:`repro.experiments.runner.run_suite`) which the benchmarks print
as the figure's three panels (Quality, memory KB, run-time seconds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.suites import suite_by_name
from repro.experiments.config import HEADLINE_METHODS
from repro.experiments.runner import run_suite

PANEL_METRICS = ("quality", "peak_kb", "seconds")
"""The three panels of every Figure 5 row, in the paper's order."""


@dataclass(frozen=True)
class FigureRow:
    """One row of Figure 5: a dataset suite swept by all methods."""

    figure: str
    suite: str
    description: str


FIGURE_ROWS = {
    "fig5a-c": FigureRow("fig5a-c", "first_group", "first group (6d..18d)"),
    "fig5d-f": FigureRow("fig5d-f", "noise", "percent of noise (5o..25o)"),
    "fig5g-i": FigureRow("fig5g-i", "points", "number of points (50k..250k)"),
    "fig5j-l": FigureRow("fig5j-l", "clusters", "number of clusters (5c..25c)"),
    "fig5m-o": FigureRow(
        "fig5m-o", "dimensionality", "dimensionality (5d_s..30d_s)"
    ),
    "fig5p-r": FigureRow("fig5p-r", "rotated", "rotated datasets (6d_r..18d_r)"),
}


def run_figure_row(
    figure: str,
    scale: float = 0.05,
    methods: tuple[str, ...] = HEADLINE_METHODS,
    profile: str | None = None,
    journal: str | None = None,
    resume: bool = False,
    shard: str | None = None,
) -> list[dict]:
    """Run one Figure 5 row and return its rows.

    ``journal``/``resume`` are forwarded to :func:`run_suite`: a long
    row sweep can checkpoint every finished cell and pick up where an
    interrupted run stopped.
    """
    try:
        row = FIGURE_ROWS[figure]
    except KeyError:
        valid = ", ".join(sorted(FIGURE_ROWS))
        raise ValueError(f"unknown figure {figure!r}; expected one of: {valid}") from None
    datasets = suite_by_name(row.suite, scale=scale)
    return run_suite(
        datasets, methods=methods, profile=profile, journal=journal, resume=resume,
        shard=shard,
    )


def run_subspaces_quality(
    scale: float = 0.05,
    profile: str | None = None,
    journal: str | None = None,
    resume: bool = False,
    shard: str | None = None,
) -> list[dict]:
    """Figure 5s: Subspaces Quality over the first group, LAC excluded.

    LAC only weights axes instead of selecting them, so the paper drops
    it from this comparison.
    """
    methods = tuple(m for m in HEADLINE_METHODS if m != "LAC")
    datasets = suite_by_name("first_group", scale=scale)
    return run_suite(
        datasets, methods=methods, profile=profile, journal=journal, resume=resume,
        shard=shard,
    )
