"""Method registry and tuning grids (Section IV-E "System Configuration").

The paper's protocol, reproduced here:

* MrCC runs with ``alpha = 1e-10`` and ``H = 4`` everywhere.
* LAC, EPCH, CFPC and HARP receive the *true* number of clusters;
  HARP additionally receives the known noise percentile.
* Every other knob is swept over the grid the original authors
  suggested, and the configuration with the best Quality is reported.

Because the published grids are large (LAC's eleven ``1/h`` values,
CFPC's 7x5x5 grid with five repetitions each), each
:class:`MethodSpec` carries both the ``full`` grid and a condensed
``quick`` grid covering the same ranges; the experiment drivers default
to ``quick`` and switch on the ``REPRO_PROFILE=full`` environment
variable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.baselines import CFPC, EPCH, HARP, LAC, P3C
from repro.core.mrcc import MrCC
from repro.env import profile_from_env
from repro.types import Dataset

__all__ = [
    "HEADLINE_METHODS",
    "MethodSpec",
    "method_registry",
    "profile_from_env",
]

HEADLINE_METHODS = ("MrCC", "LAC", "EPCH", "P3C", "CFPC", "HARP")
"""The six methods of Figure 5 (the paper's headline comparison)."""


@dataclass(frozen=True)
class MethodSpec:
    """One method plus its tuning grid.

    ``build(dataset, **params)`` instantiates a ready-to-fit estimator;
    ``grid(dataset, profile)`` yields parameter dicts to sweep.
    """

    name: str
    build: Callable
    grid: Callable
    deterministic: bool = True
    finds_noise: bool = True
    defines_subspaces: bool = True


def _mrcc_grid(dataset: Dataset, profile: str) -> Iterator[dict]:
    # Fixed for all experiments (Section IV-E).
    yield {"alpha": 1e-10, "n_resolutions": 4}


def _lac_grid(dataset: Dataset, profile: str) -> Iterator[dict]:
    values = range(1, 12) if profile == "full" else (1, 4, 8, 11)
    for inv_h in values:
        yield {"inv_h": float(inv_h)}


def _epch_grid(dataset: Dataset, profile: str) -> Iterator[dict]:
    if profile == "full":
        dims = (1, 2)
        thresholds = (0.0, 0.15, 0.25, 0.35, 0.5, 0.65)
    else:
        # The 2-d histograms give EPCH its published memory profile
        # (one signature column per axis pair); they stay affordable up
        # to the paper's 30-axis ceiling.
        dims = (1, 2) if dataset.dimensionality <= 30 else (1,)
        thresholds = (0.25, 0.5)
    for hist_dim in dims:
        if hist_dim > dataset.dimensionality:
            continue
        for outlier_threshold in thresholds:
            yield {"hist_dim": hist_dim, "outlier_threshold": outlier_threshold}


def _p3c_grid(dataset: Dataset, profile: str) -> Iterator[dict]:
    if profile == "full":
        thresholds = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-7, 1e-10, 1e-15)
    else:
        thresholds = (1e-2, 1e-5)
    for poisson_threshold in thresholds:
        yield {"poisson_threshold": poisson_threshold}


def _cfpc_grid(dataset: Dataset, profile: str) -> Iterator[dict]:
    # The paper's w in 5..35 is over a 200-unit range: 0.025..0.175.
    if profile == "full":
        widths = (0.025, 0.05, 0.075, 0.1, 0.125, 0.15, 0.175)
        alphas = (0.05, 0.10, 0.15, 0.20, 0.25)
        betas = (0.15, 0.20, 0.25, 0.30, 0.35)
    else:
        widths = (0.075, 0.125)
        alphas = (0.05,)
        betas = (0.25,)
    for w in widths:
        for alpha in alphas:
            for beta in betas:
                yield {"w": w, "alpha": alpha, "beta": beta, "maxout": 50}


def _harp_grid(dataset: Dataset, profile: str) -> Iterator[dict]:
    # HARP has no swept parameters; it gets k and the noise percentile.
    yield {}


def method_registry() -> dict[str, MethodSpec]:
    """All headline methods keyed by name."""
    return {
        "MrCC": MethodSpec(
            name="MrCC",
            build=lambda dataset, **params: MrCC(normalize=False, **params),
            grid=_mrcc_grid,
        ),
        "LAC": MethodSpec(
            name="LAC",
            build=lambda dataset, **params: LAC(
                n_clusters=max(dataset.n_clusters, 1), **params
            ),
            grid=_lac_grid,
            deterministic=False,
            finds_noise=False,
            defines_subspaces=False,
        ),
        "EPCH": MethodSpec(
            name="EPCH",
            build=lambda dataset, **params: EPCH(
                max_no_cluster=max(dataset.n_clusters, 1), **params
            ),
            grid=_epch_grid,
        ),
        "P3C": MethodSpec(
            name="P3C",
            build=lambda dataset, **params: P3C(**params),
            grid=_p3c_grid,
        ),
        "CFPC": MethodSpec(
            name="CFPC",
            build=lambda dataset, **params: CFPC(
                n_clusters=max(dataset.n_clusters, 1), **params
            ),
            grid=_cfpc_grid,
            deterministic=False,
        ),
        "HARP": MethodSpec(
            name="HARP",
            build=lambda dataset, **params: HARP(
                n_clusters=max(dataset.n_clusters, 1),
                max_noise_percent=dataset.noise_fraction,
                **params,
            ),
            grid=_harp_grid,
        ),
    }
