"""Aggregate speedup/memory summaries (the Section IV-F averages).

The paper condenses its sweeps into headline averages — "MrCC was the
fastest among all methods tested, being in average 4.1, 9.8, 10.3, 219
and 1,422 times faster than CFPC, EPCH, LAC, P3C and HARP respectively"
— and an analogous memory ranking.  These helpers compute the same
aggregates from any collection of experiment rows, and serialise row
collections to JSON for archival.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np


def speedup_table(rows: list[dict], base_method: str = "MrCC") -> dict[str, float]:
    """Geometric-mean time ratio of every method against ``base_method``.

    Only (method, dataset) pairs where both the method and the base ran
    contribute; the geometric mean matches the paper's multiplicative
    "times faster" phrasing.
    """
    rows = _measured(rows, "seconds")
    base = {
        row["dataset"]: row["seconds"]
        for row in rows
        if row["method"] == base_method
    }
    if not base:
        raise ValueError(f"no rows for base method {base_method!r}")
    ratios: dict[str, list[float]] = {}
    for row in rows:
        method = row["method"]
        if method == base_method or row["dataset"] not in base:
            continue
        denominator = max(base[row["dataset"]], 1e-12)
        ratios.setdefault(method, []).append(row["seconds"] / denominator)
    return {
        method: float(np.exp(np.mean(np.log(np.maximum(values, 1e-12)))))
        for method, values in sorted(ratios.items())
    }


def memory_table(rows: list[dict], base_method: str = "MrCC") -> dict[str, float]:
    """Geometric-mean peak-memory ratio against ``base_method``."""
    rows = _measured(rows, "peak_kb")
    base = {
        row["dataset"]: row["peak_kb"]
        for row in rows
        if row["method"] == base_method and row["peak_kb"] > 0
    }
    if not base:
        raise ValueError(f"no memory rows for base method {base_method!r}")
    ratios: dict[str, list[float]] = {}
    for row in rows:
        method = row["method"]
        if method == base_method or row["dataset"] not in base:
            continue
        if row["peak_kb"] <= 0:
            continue
        ratios.setdefault(method, []).append(row["peak_kb"] / base[row["dataset"]])
    return {
        method: float(np.exp(np.mean(np.log(np.maximum(values, 1e-12)))))
        for method, values in sorted(ratios.items())
    }


def quality_table(rows: list[dict]) -> dict[str, float]:
    """Mean Quality per method over all datasets in ``rows``."""
    totals: dict[str, list[float]] = {}
    for row in _measured(rows, "quality"):
        totals.setdefault(row["method"], []).append(row["quality"])
    return {
        method: float(np.mean(values)) for method, values in sorted(totals.items())
    }


def _measured(rows: list[dict], metric: str) -> list[dict]:
    """Drop the structured error rows a degraded suite run emits.

    Error rows carry ``status``/``error`` but no metric fields, so any
    aggregate over them would ``KeyError``; partial tables aggregate
    what was measured.
    """
    return [row for row in rows if metric in row]


def save_rows_json(rows: list[dict], path: str | Path) -> None:
    """Serialise experiment rows (params included) to pretty JSON."""
    path = Path(path)
    serialisable = [
        {key: _jsonable(value) for key, value in row.items()} for row in rows
    ]
    path.write_text(json.dumps(serialisable, indent=2, sort_keys=True) + "\n")


def load_rows_json(path: str | Path) -> list[dict]:
    """Load rows previously written by :func:`save_rows_json`."""
    return json.loads(Path(path).read_text())


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value
