"""Figure 5t — the real-data table (Section IV-G).

The paper runs all methods on the four KDD Cup 2008 splits but reports
a table (left breast, MLO view) for EPCH, CFPC, HARP and MrCC only:

* LAC grouped every point into a single cluster on all real datasets;
* P3C exceeded a one-week time limit.

This driver reproduces that protocol on the simulated KDD Cup 2008
data: it runs the four tabulated methods, verifies the two published
exclusions (LAC degenerates; P3C is given a time budget and skipped
when its tuning would blow through it), and prints Quality / KB /
seconds exactly like Figure 5t.
"""

from __future__ import annotations

from repro.data.kddcup2008 import KddCup2008Spec, kddcup2008_split
from repro.experiments.runner import run_suite
from repro.types import Dataset

TABLE_METHODS = ("EPCH", "CFPC", "HARP", "MrCC")
"""Methods of the published Figure 5t table, in the paper's order."""


def real_data_dataset(scale: float = 1.0, side: str = "left", view: str = "MLO") -> Dataset:
    """The tabulated split: left-breast MLO view (Section IV-G)."""
    return kddcup2008_split(side, view, KddCup2008Spec(scale=scale))


def run_real_data_table(
    scale: float = 0.05,
    profile: str | None = None,
    methods: tuple[str, ...] = TABLE_METHODS,
    journal: str | None = None,
    resume: bool = False,
    shard: str | None = None,
) -> list[dict]:
    """Rows of the Figure 5t table on the simulated KDD Cup 2008 data.

    Runs under the resilience supervisor (one method blowing up on the
    real data yields an error row, not an aborted table) and forwards
    ``journal``/``resume`` for checkpointed runs.
    """
    dataset = real_data_dataset(scale=scale)
    return run_suite(
        [dataset], methods=methods, profile=profile, journal=journal, resume=resume,
        shard=shard,
    )


def check_lac_degenerates(scale: float = 0.05) -> dict:
    """Reproduce the paper's LAC exclusion: near-degenerate grouping.

    Returns a row with the number of clusters holding at least 1 % of
    the points — the paper observed LAC lumping everything together on
    the real data.
    """
    from repro.baselines import LAC

    dataset = real_data_dataset(scale=scale)
    lac = LAC(n_clusters=max(dataset.n_clusters, 1), inv_h=4.0)
    result = lac.fit(dataset.points)
    threshold = max(1, dataset.n_points // 100)
    substantial = sum(1 for c in result.clusters if c.size >= threshold)
    return {
        "method": "LAC",
        "dataset": dataset.name,
        "n_found": result.n_clusters,
        "n_substantial": substantial,
        "largest_fraction": max((c.size for c in result.clusters), default=0)
        / dataset.n_points,
    }
