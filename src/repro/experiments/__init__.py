"""Experiment drivers reproducing every exhibit of Section IV.

* :mod:`repro.experiments.config` — method registry and the per-method
  tuning grids of Section IV-E (the paper reports, per method and
  dataset, the best Quality over all tried configurations).
* :mod:`repro.experiments.runner` — run a method (with tuning) on a
  dataset, measuring Quality, Subspaces Quality, seconds and peak KB.
* :mod:`repro.experiments.sensibility` — Figure 4 (MrCC vs α and H).
* :mod:`repro.experiments.synthetic_suite` — Figure 5a-r sweeps.
* :mod:`repro.experiments.real_data` — Figure 5t (KDD Cup 2008 table).
* :mod:`repro.experiments.report` — fixed-width table/series printing.
"""

from repro.experiments.config import (
    HEADLINE_METHODS,
    MethodSpec,
    method_registry,
)
from repro.experiments.real_data import run_real_data_table
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import run_method_on_dataset, run_suite
from repro.experiments.sensibility import alpha_sweep, resolution_sweep

__all__ = [
    "MethodSpec",
    "method_registry",
    "HEADLINE_METHODS",
    "run_method_on_dataset",
    "run_suite",
    "alpha_sweep",
    "resolution_sweep",
    "run_real_data_table",
    "format_table",
    "format_series",
]
