"""Fixed-width reporting of experiment rows.

The benchmark harness prints, for every reproduced exhibit, the same
rows/series the paper plots: one line per (dataset, method) with
Quality, Subspaces Quality, seconds and KB, plus per-metric series
tables (datasets as columns, methods as lines) that mirror the figure
panels.
"""

from __future__ import annotations

from collections import OrderedDict


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or [k for k in rows[0] if k != "params"]
    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        cells = {c: _fmt(row.get(c, "")) for c in columns}
        for c in columns:
            widths[c] = max(widths[c], len(cells[c]))
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "  ".join("-" * widths[c] for c in columns)]
    for cells in rendered:
        lines.append("  ".join(cells[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_series(
    rows: list[dict],
    metric: str,
    line_key: str = "method",
    column_key: str = "dataset",
) -> str:
    """Pivot rows into one figure panel: lines x columns of ``metric``."""
    columns: "OrderedDict[str, None]" = OrderedDict()
    lines: "OrderedDict[str, dict]" = OrderedDict()
    for row in rows:
        column = str(row[column_key])
        line = str(row[line_key])
        columns.setdefault(column, None)
        lines.setdefault(line, {})[column] = row.get(metric)

    column_names = list(columns)
    width_line = max([len(line_key)] + [len(name) for name in lines])
    widths = [
        max(len(c), *(len(_fmt(values.get(c, ""))) for values in lines.values()))
        for c in column_names
    ]
    out = [
        f"[{metric}]",
        "  ".join(
            [line_key.ljust(width_line)]
            + [c.rjust(w) for c, w in zip(column_names, widths)]
        ),
    ]
    for name, values in lines.items():
        out.append(
            "  ".join(
                [name.ljust(width_line)]
                + [
                    _fmt(values.get(c, "")).rjust(w)
                    for c, w in zip(column_names, widths)
                ]
            )
        )
    return "\n".join(out)


def _fmt(value) -> str:
    if value is None:
        # A failed cell's missing metric (partial tables degrade to a
        # dash, not the word "None").
        return "-"
    if isinstance(value, float):
        # Formatting sentinel: render exact 0.0 (an unmeasured field,
        # not a small number) compactly.
        if value == 0.0:  # repro-lint: disable=R002
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
