"""Figure 4 — MrCC sensibility analysis (Section IV-D).

The paper varies MrCC's two parameters, one at a time, over the first
group of synthetic datasets:

* ``alpha`` from ``1e-3`` to ``1e-160`` (Quality is flat over a wide
  band; ``1e-5 .. 1e-20`` was best; time and memory barely move);
* ``H`` from 4 to 80 (Quality saturates at ``H = 4``; time grows
  super-linearly and memory linearly with ``H``).

Both sweeps return tidy rows: dataset, parameter value, quality,
seconds, peak_kb.
"""

from __future__ import annotations

from repro.core.mrcc import MrCC
from repro.evaluation.quality import evaluate_clustering
from repro.evaluation.resources import measure
from repro.types import Dataset

ALPHA_VALUES = (1e-3, 1e-5, 1e-10, 1e-20, 1e-40, 1e-80, 1e-160)
H_VALUES = (4, 5, 6, 8, 10, 12)
"""The paper sweeps H to 80; deep levels add nothing once the maximum
cell count reaches one (Section IV-F), so the reproduction sweeps a
prefix wide enough to show the same saturation and growth trends."""


def _measure_mrcc(dataset: Dataset, alpha: float, n_resolutions: int) -> dict:
    method = MrCC(alpha=alpha, n_resolutions=n_resolutions, normalize=False)
    measurement = measure(lambda: method.fit(dataset.points))
    report = evaluate_clustering(measurement.value, dataset)
    return {
        "dataset": dataset.name,
        "alpha": alpha,
        "H": n_resolutions,
        "quality": report.quality,
        "subspaces_quality": report.subspaces_quality,
        "seconds": measurement.seconds,
        "peak_kb": measurement.peak_kb,
        "n_found": report.n_found,
    }


def alpha_sweep(
    datasets, alphas=ALPHA_VALUES, n_resolutions: int = 4
) -> list[dict]:
    """Figure 4a-c: vary ``alpha`` with ``H`` fixed."""
    rows = []
    for dataset in datasets:
        for alpha in alphas:
            rows.append(_measure_mrcc(dataset, alpha, n_resolutions))
    return rows


def resolution_sweep(datasets, h_values=H_VALUES, alpha: float = 1e-10) -> list[dict]:
    """Figure 4d-f: vary ``H`` with ``alpha`` fixed."""
    rows = []
    for dataset in datasets:
        for n_resolutions in h_values:
            rows.append(_measure_mrcc(dataset, alpha, n_resolutions))
    return rows
