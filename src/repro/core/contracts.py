"""Runtime array contracts for the public entry points of the core.

The static layer (``tools/repro_lint``, mypy) pins what can be checked
without running the code; this module checks the data-dependent half of
the same invariants at the package's trust boundary: inputs must be
float64, 2-d, finite, and — for the Counting-tree — embedded in the
unit hyper-cube ``[0, 1)^d`` (Definition 1 of the paper), and label
vectors must be 1-d integer arrays with no id below the noise label.

Every violation raises :class:`ContractError` (a ``ValueError``) that
names the offending argument, so a failure three layers down a pipeline
still points at the call site.

Cost model: structural checks (type, dtype, ndim, length) are O(1) and
always on.  Data scans (finiteness, the unit-box bound, label range)
are O(n·d) and can be switched off — ``REPRO_CONTRACTS=0`` in the
environment, or :func:`set_enabled` / the :func:`disabled` context
manager — for benchmarking the raw hot path; the overhead benchmark
(``benchmarks/bench_contracts_overhead.py``) holds the enabled/disabled
gap on the η=100k fit path under 2%.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.env import contracts_from_env
from repro.types import NOISE_LABEL, AnyArray, DTypeLike

__all__ = [
    "ContractError",
    "check_array",
    "check_labels",
    "check_level",
    "check_probability",
    "disabled",
    "enabled",
    "set_enabled",
]


class ContractError(ValueError):
    """An argument broke one of the core's array contracts."""


_ENABLED: bool = contracts_from_env(default=True)


def enabled() -> bool:
    """Whether the O(n) data-scan half of the contracts is active."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Toggle the data-scan contracts; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager that switches the data-scan contracts off."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def check_array(
    name: str,
    a: object,
    *,
    dtype: DTypeLike | None = None,
    ndim: int | None = None,
    unit_box: bool = False,
    finite: bool = False,
) -> AnyArray:
    """Validate one array argument; returns it for call-site chaining.

    Parameters
    ----------
    name:
        The argument name reported in error messages.
    a:
        The candidate array; anything but an ``np.ndarray`` is rejected.
    dtype:
        Exact dtype the array must carry (e.g. ``np.float64``).
    ndim:
        Required number of dimensions.
    unit_box:
        Require every value in ``[0, 1)`` — the paper's Definition 1
        embedding.  Implies the finiteness scan (NaN compares false
        against both bounds and would otherwise slip through).
    finite:
        Reject NaN and infinities.
    """
    if not isinstance(a, np.ndarray):
        raise ContractError(
            f"{name} must be a numpy.ndarray, got {type(a).__name__}"
        )
    if dtype is not None and a.dtype != np.dtype(dtype):
        raise ContractError(
            f"{name} must have dtype {np.dtype(dtype)}, got {a.dtype}"
        )
    if ndim is not None and a.ndim != ndim:
        raise ContractError(
            f"{name} must be a {ndim}-d array, got {a.ndim}-d "
            f"(shape {a.shape})"
        )
    if _ENABLED and (finite or unit_box):
        if a.dtype.kind == "f" and not bool(np.isfinite(a).all()):
            raise ContractError(f"{name} contains NaN or infinite values")
        if unit_box and a.size and (
            float(a.min()) < 0.0 or float(a.max()) >= 1.0
        ):
            raise ContractError(
                f"{name} must lie in [0, 1); normalise first "
                f"(observed range [{float(a.min()):g}, {float(a.max()):g}])"
            )
    return a


def check_labels(
    name: str, labels: object, *, n_points: int | None = None
) -> AnyArray:
    """Validate a label vector: 1-d integers, nothing below the noise id."""
    if not isinstance(labels, np.ndarray):
        raise ContractError(
            f"{name} must be a numpy.ndarray, got {type(labels).__name__}"
        )
    if labels.ndim != 1:
        raise ContractError(
            f"{name} must be a 1-d label vector, got {labels.ndim}-d"
        )
    if labels.dtype.kind not in "iu":
        raise ContractError(
            f"{name} must have an integer dtype, got {labels.dtype}"
        )
    if n_points is not None and labels.shape[0] != n_points:
        raise ContractError(
            f"{name} must have one entry per point "
            f"({n_points}), got {labels.shape[0]}"
        )
    if _ENABLED and labels.size and int(labels.min()) < NOISE_LABEL:
        raise ContractError(
            f"{name} contains ids below the noise label {NOISE_LABEL}"
        )
    return labels


def check_level(name: str, level: Any) -> None:
    """Validate the column arrays of one Counting-tree level.

    Checks the inter-column shape/dtype contract the β-cluster search
    relies on: integer cell coordinates, one count per cell, half-space
    counts per (cell, axis), and boolean ``usedCell`` flags.
    """
    coords = check_array(f"{name}.coords", level.coords, dtype=np.int64, ndim=2)
    n = check_array(f"{name}.n", level.n, dtype=np.int64, ndim=1)
    half = check_array(
        f"{name}.half_counts", level.half_counts, dtype=np.int64, ndim=2
    )
    used = check_array(f"{name}.used", level.used, dtype=np.bool_, ndim=1)
    m = coords.shape[0]
    if n.shape[0] != m or used.shape[0] != m or half.shape != coords.shape:
        raise ContractError(
            f"{name} columns disagree: coords {coords.shape}, n {n.shape}, "
            f"half_counts {half.shape}, used {used.shape}"
        )
    if _ENABLED and m:
        limit = (1 << int(level.h)) - 1
        if int(coords.min()) < 0 or int(coords.max()) > limit:
            raise ContractError(
                f"{name}.coords exceed the level-{level.h} grid [0, {limit}]"
            )
        if int(n.min()) < 1:
            raise ContractError(
                f"{name}.n has empty cells; only populated cells are stored"
            )


def check_probability(name: str, value: float) -> float:
    """Validate a probability-like scalar lies strictly inside (0, 1)."""
    if not 0.0 < value < 1.0:
        raise ContractError(f"{name} must be in (0, 1), got {value!r}")
    return value
