"""Single-scan, chunked Counting-tree construction (out-of-core input).

Algorithm 1 reads every point exactly once, which means the
Counting-tree can be built from a *stream*: only the per-level cell
aggregates — at most ``η`` cells per level, usually far fewer — stay in
memory while the raw points never need to be resident at once.  This
module implements that pattern for datasets delivered in chunks (files,
database cursors, generators), matching the paper's "very large
datasets" ambition.

The resulting tree is bit-identical to building
:class:`~repro.core.counting_tree.CountingTree` over the concatenated
data, so phases two and three of MrCC run on it unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro import obs
from repro.core.contracts import ContractError, check_array
from repro.core.counting_tree import (
    MAX_RESOLUTIONS,
    MIN_RESOLUTIONS,
    CountingTree,
    Level,
    tree_from_levels,
)
from repro.types import ClusteringResult, FloatArray, IntArray


class TreeStreamBuilder:
    """Incremental Counting-tree construction with transactional absorb.

    :meth:`absorb` validates a chunk *completely* — contracts, shape,
    unit box, dimensionality — before any aggregate is touched, so a
    rejected chunk leaves the builder exactly as it was: the stream
    source can repair or skip the offending chunk and keep absorbing.
    That validate-then-mutate ordering is what makes mid-stream failure
    survivable instead of silently corrupting the tree.
    """

    def __init__(self, n_resolutions: int = 4) -> None:
        if n_resolutions < MIN_RESOLUTIONS:
            raise ValueError(f"n_resolutions must be >= {MIN_RESOLUTIONS}")
        if n_resolutions > MAX_RESOLUTIONS:
            raise ContractError(
                f"n_resolutions must be <= {MAX_RESOLUTIONS}: level "
                f"coordinates must fit the uint32 cell-key packing"
            )
        self._n_resolutions = n_resolutions
        self._accumulators: dict[int, dict[bytes, tuple[int, np.ndarray]]] = {
            h: {} for h in range(1, n_resolutions)
        }
        self._d: int | None = None
        self._n_points = 0
        self._n_chunks = 0

    @property
    def n_points(self) -> int:
        """Points absorbed so far."""
        return self._n_points

    @property
    def n_chunks(self) -> int:
        """Non-empty chunks absorbed so far."""
        return self._n_chunks

    def absorb(self, chunk: FloatArray) -> None:
        """Merge one ``(m_i, d)`` chunk with values in ``[0, 1)``.

        Raises (``ContractError``/``ValueError``) *before* mutating any
        state when the chunk is invalid.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        check_array(
            f"chunks[{self._n_chunks}]",
            chunk,
            dtype=np.float64,
            ndim=2,
            unit_box=True,
        )
        if chunk.shape[0] == 0:
            return
        if self._d is None:
            self._d = chunk.shape[1]
        elif chunk.shape[1] != self._d:
            raise ValueError("all chunks must share the same dimensionality")
        self._n_points += chunk.shape[0]
        self._n_chunks += 1
        obs.incr("stream.chunks")
        obs.incr("stream.points", int(chunk.shape[0]))
        _accumulate_chunk(chunk, self._n_resolutions, self._accumulators)

    def build(self) -> CountingTree:
        """Finalize the absorbed aggregates into a Counting-tree.

        The accumulators are read, not consumed: more chunks can be
        absorbed afterwards and a later :meth:`build` reflects them.
        """
        if self._d is None or self._n_points == 0:
            raise ValueError("the stream delivered no points")
        levels = {
            h: _finalize_level(h, self._accumulators[h], self._d)
            for h in range(1, self._n_resolutions)
        }
        return tree_from_levels(
            levels, self._d, self._n_points, self._n_resolutions
        )


def build_tree_from_chunks(
    chunks: Iterable[FloatArray], n_resolutions: int = 4
) -> CountingTree:
    """Build a Counting-tree from an iterable of point chunks.

    Every chunk is a ``(m_i, d)`` array with values in ``[0, 1)``; all
    chunks must share the same dimensionality.  Aggregates are merged
    chunk by chunk (via :class:`TreeStreamBuilder`), so peak memory is
    one chunk plus the per-level cell tables.
    """
    builder = TreeStreamBuilder(n_resolutions=n_resolutions)
    with obs.span("stream.build"):
        for chunk in chunks:
            builder.absorb(chunk)
        return builder.build()


def _accumulate_chunk(
    chunk: FloatArray,
    n_resolutions: int,
    accumulators: dict[int, dict[bytes, tuple[int, IntArray]]],
) -> None:
    """Merge one chunk's per-level counts into the accumulators."""
    base = np.floor(chunk * (1 << n_resolutions)).astype(np.int64)
    np.clip(base, 0, (1 << n_resolutions) - 1, out=base)
    for h in range(1, n_resolutions):
        shift = n_resolutions - h
        coords = base >> shift
        half_bits = (base >> (shift - 1)) & 1
        cells, inverse = np.unique(coords, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        counts = np.bincount(inverse, minlength=cells.shape[0])
        lower = np.zeros((cells.shape[0], chunk.shape[1]), dtype=np.int64)
        np.add.at(lower, inverse, (half_bits == 0).astype(np.int64))
        table = accumulators[h]
        for row in range(cells.shape[0]):
            key = cells[row].tobytes()
            if key in table:
                n_old, half_old = table[key]
                table[key] = (n_old + int(counts[row]), half_old + lower[row])
            else:
                table[key] = (int(counts[row]), lower[row].copy())


def _finalize_level(
    h: int, table: dict[bytes, tuple[int, IntArray]], d: int
) -> Level:
    """Convert an accumulator table into a packed Level."""
    m = len(table)
    obs.incr(f"tree.level{h}.cells", m)
    coords = np.empty((m, d), dtype=np.int64)
    counts = np.empty(m, dtype=np.int64)
    halves = np.empty((m, d), dtype=np.int64)
    for i, (key, (n, half)) in enumerate(sorted(table.items())):
        coords[i] = np.frombuffer(key, dtype=np.int64)
        counts[i] = n
        halves[i] = half
    return Level(
        h=h,
        coords=coords,
        n=counts,
        half_counts=halves,
        used=np.zeros(m, dtype=bool),
    )


def fit_stream(
    chunks: Iterable[np.ndarray],
    alpha: float = 1e-10,
    n_resolutions: int = 4,
) -> tuple[CountingTree, list]:
    """Phase 1+2 of MrCC over a stream: tree plus β-clusters.

    Labelling (phase 3) needs the points themselves, so callers either
    re-scan the stream through
    :func:`label_stream`, or work with the
    β-cluster boxes directly.
    """
    from repro.core.beta_cluster import find_beta_clusters

    tree = build_tree_from_chunks(chunks, n_resolutions=n_resolutions)
    betas = find_beta_clusters(tree, alpha)
    return tree, betas


def label_stream(
    chunks: Iterable[np.ndarray], betas: list
) -> ClusteringResult:
    """Phase 3 over a second scan: label every streamed point.

    Uses the same box semantics as
    :func:`repro.core.correlation_cluster.build_correlation_clusters`,
    processing one chunk at a time.
    """
    from repro.core.correlation_cluster import label_points, merge_beta_clusters
    from repro.types import SubspaceCluster

    groups = merge_beta_clusters(betas)
    label_parts = []
    for chunk_index, chunk in enumerate(chunks):
        chunk = np.asarray(chunk, dtype=np.float64)
        check_array(f"chunks[{chunk_index}]", chunk, dtype=np.float64, ndim=2)
        if chunk.shape[0]:
            label_parts.append(label_points(chunk, betas, groups))
    labels = (
        np.concatenate(label_parts) if label_parts else np.empty(0, dtype=np.int64)
    )
    clusters = []
    for cluster_id, members in enumerate(groups):
        axes: set[int] = set()
        for beta_index in members:
            axes.update(betas[beta_index].relevant_axes)
        clusters.append(
            SubspaceCluster.from_iterables(
                np.flatnonzero(labels == cluster_id), axes
            )
        )
    return ClusteringResult(
        labels=labels,
        clusters=clusters,
        extras={"n_beta_clusters": len(betas), "beta_clusters": betas},
    )
