"""Single-scan, chunked Counting-tree construction (out-of-core input).

Algorithm 1 reads every point exactly once, which means the
Counting-tree can be built from a *stream*: only the per-level cell
aggregates — at most ``η`` cells per level, usually far fewer — stay in
memory while the raw points never need to be resident at once.  This
module implements that pattern for datasets delivered in chunks (files,
database cursors, generators), matching the paper's "very large
datasets" ambition.

The resulting tree is bit-identical to building
:class:`~repro.core.counting_tree.CountingTree` over the concatenated
data, so phases two and three of MrCC run on it unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from repro import obs
from repro.core.contracts import ContractError, check_array
from repro.fabric.faults import fire
from repro.core.counting_tree import (
    MAX_RESOLUTIONS,
    MIN_RESOLUTIONS,
    CountingTree,
    Level,
    LevelArrays,
    bin_points,
    level_arrays,
    level_from_arrays,
    merge_level_arrays,
    tree_from_levels,
)
from repro.types import ClusteringResult, FloatArray


class TreeStreamBuilder:
    """Incremental Counting-tree construction with transactional absorb.

    :meth:`absorb` validates a chunk *completely* — contracts, shape,
    unit box, dimensionality — before any aggregate is touched, so a
    rejected chunk leaves the builder exactly as it was: the stream
    source can repair or skip the offending chunk and keep absorbing.
    That validate-then-mutate ordering is what makes mid-stream failure
    survivable instead of silently corrupting the tree.

    Aggregates are held per level as key-sorted structure-of-arrays
    triples (:data:`~repro.core.counting_tree.LevelArrays`), the same
    canonical form every tree builder produces; each absorb is a
    key-grouped sum (:func:`~repro.core.counting_tree.merge_level_arrays`),
    which makes the builder double as the reduce primitive of the
    sharded build (:func:`sharded_levels`).
    """

    def __init__(self, n_resolutions: int = 4) -> None:
        if n_resolutions < MIN_RESOLUTIONS:
            raise ValueError(f"n_resolutions must be >= {MIN_RESOLUTIONS}")
        if n_resolutions > MAX_RESOLUTIONS:
            raise ContractError(
                f"n_resolutions must be <= {MAX_RESOLUTIONS}: level "
                f"coordinates must fit the uint32 cell-key packing"
            )
        self._n_resolutions = n_resolutions
        self._stores: dict[int, LevelArrays] = {}
        self._d: int | None = None
        self._n_points = 0
        self._n_chunks = 0

    @property
    def n_points(self) -> int:
        """Points absorbed so far."""
        return self._n_points

    @property
    def n_chunks(self) -> int:
        """Non-empty chunks absorbed so far."""
        return self._n_chunks

    def absorb(self, chunk: FloatArray) -> None:
        """Merge one ``(m_i, d)`` chunk with values in ``[0, 1)``.

        Raises (``ContractError``/``ValueError``) *before* mutating any
        state when the chunk is invalid.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        check_array(
            f"chunks[{self._n_chunks}]",
            chunk,
            dtype=np.float64,
            ndim=2,
            unit_box=True,
        )
        if chunk.shape[0] == 0:
            return
        if self._d is not None and chunk.shape[1] != self._d:
            raise ValueError("all chunks must share the same dimensionality")
        obs.incr("stream.chunks")
        obs.incr("stream.points", int(chunk.shape[0]))
        arrays = level_arrays(
            bin_points(chunk, self._n_resolutions), self._n_resolutions
        )
        self.absorb_arrays(arrays, n_points=int(chunk.shape[0]))

    def absorb_arrays(
        self, arrays: dict[int, LevelArrays], n_points: int
    ) -> None:
        """Merge pre-aggregated per-level SoA arrays (the reduce primitive).

        ``arrays`` is one partial tree — what
        :func:`shard_level_arrays` returns for a point shard or
        :func:`~repro.core.counting_tree.level_arrays` for a chunk —
        and must cover exactly levels ``1 .. H-1``.  Validation happens
        before any store is touched and the merged stores are committed
        only after every level merged, so a failing merge leaves the
        builder unchanged (the same transactional contract as
        :meth:`absorb`).
        """
        expected = set(range(1, self._n_resolutions))
        if set(arrays) != expected:
            raise ValueError(
                f"partial tree covers levels {sorted(arrays)}, "
                f"expected {sorted(expected)}"
            )
        d = int(arrays[1][0].shape[1])
        if self._d is not None and d != self._d:
            raise ValueError("all chunks must share the same dimensionality")
        if n_points <= 0:
            raise ValueError("a partial tree must cover at least one point")
        merged = {
            h: (
                merge_level_arrays(self._stores[h], arrays[h])
                if h in self._stores
                else arrays[h]
            )
            for h in expected
        }
        self._stores = merged
        self._d = d
        self._n_points += n_points
        self._n_chunks += 1

    def build_levels(self) -> dict[int, Level]:
        """Materialise the absorbed aggregates as ``Level`` objects."""
        if self._d is None or self._n_points == 0:
            raise ValueError("the stream delivered no points")
        levels: dict[int, Level] = {}
        for h in range(1, self._n_resolutions):
            levels[h] = level_from_arrays(h, self._stores[h])
            obs.incr(f"tree.level{h}.cells", levels[h].n_cells)
        return levels

    def build(self) -> CountingTree:
        """Finalize the absorbed aggregates into a Counting-tree.

        The stores are read, not consumed: more chunks can be absorbed
        afterwards and a later :meth:`build` reflects them.
        """
        levels = self.build_levels()
        assert self._d is not None
        return tree_from_levels(
            levels, self._d, self._n_points, self._n_resolutions
        )


def build_tree_from_chunks(
    chunks: Iterable[FloatArray], n_resolutions: int = 4
) -> CountingTree:
    """Build a Counting-tree from an iterable of point chunks.

    Every chunk is a ``(m_i, d)`` array with values in ``[0, 1)``; all
    chunks must share the same dimensionality.  Aggregates are merged
    chunk by chunk (via :class:`TreeStreamBuilder`), so peak memory is
    one chunk plus the per-level cell tables.
    """
    builder = TreeStreamBuilder(n_resolutions=n_resolutions)
    with obs.span("stream.build"):
        for chunk in chunks:
            builder.absorb(chunk)
        return builder.build()


def shard_level_arrays(
    shard: FloatArray, n_resolutions: int
) -> dict[int, LevelArrays]:
    """One shard worker's partial tree (pure — runs in worker processes).

    Bin the shard's points at the finest half-resolution and cascade
    them into per-level SoA aggregates.  Deliberately free of
    validation, observability and environment access: contracts run
    once in the parent over the whole dataset, and worker output must
    depend on nothing but the argument values.
    """
    return level_arrays(bin_points(shard, n_resolutions), n_resolutions)


def _shard_task(
    shard: FloatArray,
    n_resolutions: int,
    *,
    attempt: int,
    fault: str | None,
    in_worker: bool,
) -> dict[str, Any]:
    """One fabric task of the sharded build (pure — runs in workers).

    The fault hook is what lets the chaos suite SIGKILL a tree worker
    mid-build and prove the lease/retry machinery reproduces the tree
    bit-identically; a fault-free call is just
    :func:`shard_level_arrays` wrapped into a result row.
    """
    if fault is not None:
        fire(fault, in_worker)
    return {
        "arrays": shard_level_arrays(shard, n_resolutions),
        "n_points": int(shard.shape[0]),
    }


def sharded_levels(
    points: FloatArray, n_resolutions: int, n_jobs: int
) -> dict[int, Level]:
    """Build all tree levels by fanning point shards over the fabric.

    The points are split into ``n_jobs`` contiguous shards; each fabric
    task cascades its shard into per-level SoA aggregates
    (:func:`shard_level_arrays`) and the parent reduces the partial
    trees through :meth:`TreeStreamBuilder.absorb_arrays` in **task
    order** — worker *completion* order never influences the reduction,
    and the merge itself is an associative key-grouped sum, so the
    result is bit-identical to the serial build (the ``n_jobs``
    equivalence suite asserts it).

    Dispatch goes through :func:`repro.fabric.run_supervised`, the one
    supervised execution path in the repo: a worker death or hang costs
    one shard retry (``REPRO_RETRIES``/``REPRO_TASK_TIMEOUT``), never
    the build, and ``REPRO_FAULTS`` directives can target shard tasks
    by their ``tree|shard<i>`` keys (directives aimed at other grids
    are ignored — the experiment suite plans them strictly against its
    own cells).
    """
    from repro.fabric import Task, run_supervised

    shards = [
        shard
        for shard in np.array_split(points, max(1, n_jobs))
        if shard.shape[0]
    ]
    builder = TreeStreamBuilder(n_resolutions=n_resolutions)
    obs.incr("tree.shards", len(shards))
    tasks = [
        Task(key=f"tree|shard{index}", args=(shard, n_resolutions))
        for index, shard in enumerate(shards)
    ]
    outcomes = run_supervised(
        _shard_task,
        tasks,
        n_jobs=min(n_jobs, len(shards)),
        strict_faults=False,
    )
    for outcome in outcomes:
        if outcome.row is None:
            raise RuntimeError(
                f"tree shard {outcome.key} {outcome.status} after "
                f"{outcome.attempts} attempt(s): {outcome.error}"
            )
        builder.absorb_arrays(
            outcome.row["arrays"], n_points=outcome.row["n_points"]
        )
    return builder.build_levels()


def fit_stream(
    chunks: Iterable[np.ndarray],
    alpha: float = 1e-10,
    n_resolutions: int = 4,
) -> tuple[CountingTree, list]:
    """Phase 1+2 of MrCC over a stream: tree plus β-clusters.

    Labelling (phase 3) needs the points themselves, so callers either
    re-scan the stream through
    :func:`label_stream`, or work with the
    β-cluster boxes directly.
    """
    from repro.core.beta_cluster import find_beta_clusters

    tree = build_tree_from_chunks(chunks, n_resolutions=n_resolutions)
    betas = find_beta_clusters(tree, alpha)
    return tree, betas


def label_stream(
    chunks: Iterable[np.ndarray],
    betas: list,
    groups: list[list[int]] | None = None,
) -> ClusteringResult:
    """Phase 3 over a second scan: label every streamed point.

    Uses the same box semantics as
    :func:`repro.core.correlation_cluster.build_correlation_clusters`,
    processing one chunk at a time.  ``groups`` lets a caller that has
    already merged the β-clusters — a persisted serving model labels
    many batches against one fixed grouping — skip the union-find
    rerun; ``None`` recomputes it, which yields the identical grouping
    because the merge is deterministic.
    """
    from repro.core.correlation_cluster import label_points, merge_beta_clusters

    if groups is None:
        groups = merge_beta_clusters(betas)
    label_parts = []
    for chunk_index, chunk in enumerate(chunks):
        chunk = np.asarray(chunk, dtype=np.float64)
        check_array(f"chunks[{chunk_index}]", chunk, dtype=np.float64, ndim=2)
        if chunk.shape[0]:
            label_parts.append(label_points(chunk, betas, groups))
    labels = (
        np.concatenate(label_parts) if label_parts else np.empty(0, dtype=np.int64)
    )
    return assemble_result(labels, betas, groups)


def assemble_result(
    labels: np.ndarray, betas: list, groups: list[list[int]]
) -> ClusteringResult:
    """Wrap a label vector as a :class:`ClusteringResult` with cluster
    records derived from the merged β-cluster groups (shared by the
    streaming and the serving label paths)."""
    from repro.types import SubspaceCluster

    clusters = []
    for cluster_id, members in enumerate(groups):
        axes: set[int] = set()
        for beta_index in members:
            axes.update(betas[beta_index].relevant_axes)
        clusters.append(
            SubspaceCluster.from_iterables(
                np.flatnonzero(labels == cluster_id), axes
            )
        )
    return ClusteringResult(
        labels=labels,
        clusters=clusters,
        extras={"n_beta_clusters": len(betas), "beta_clusters": betas},
    )
