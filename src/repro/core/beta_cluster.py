"""Finding β-clusters (Section III-B, Algorithm 2).

A β-cluster is a candidate correlation cluster: a dense,
hyper-rectangular region in a subspace of the data space, described by
per-axis lower/upper bounds (the paper's ``L``/``U`` matrices) and a
boolean relevance vector (``V``).

The search loop follows Algorithm 2 literally:

* starting from level 2 (coarse) down to ``H-1`` (fine), convolve the
  Laplacian face mask over all cells not yet used and not overlapping a
  previously found β-cluster;
* the per-level winner is marked used (whether or not it passes the
  test);
* the winner's parent-level neighbourhood feeds the six-region binomial
  test; one significant axis confirms a β-cluster, otherwise the next
  finer level is tried;
* on a find, relevances are cut with MDL into relevant/irrelevant axes,
  the bounds are grown by populated face neighbours, and the whole scan
  restarts at level 2;
* the search ends when a full pass over every level finds nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.contracts import check_probability
from repro.core.convolution import level_responses, overlap_rows
from repro.core.counting_tree import CountingTree
from repro.core.hypothesis_test import (
    neighborhood_counts,
    significant_axes,
)
from repro.core.mdl import mdl_cut_threshold
from repro.types import BoolArray, FloatArray, IntArray


@dataclass(frozen=True)
class BetaCluster:
    """One β-cluster: bounds, relevant axes and provenance.

    ``lower``/``upper`` are the rows of the paper's ``L``/``U``
    matrices (irrelevant axes span ``[0, 1]``), ``relevant`` the ``V``
    row.  ``level`` and ``center_row`` record the tree cell that seeded
    the cluster, and ``relevances`` the pre-MDL relevance array — both
    useful for diagnostics and tests.
    """

    lower: FloatArray
    upper: FloatArray
    relevant: BoolArray
    level: int
    center_row: int
    relevances: FloatArray

    @property
    def relevant_axes(self) -> frozenset[int]:
        """Relevant axes as an index set."""
        return frozenset(int(a) for a in np.flatnonzero(self.relevant))

    def shares_space_with(self, other: "BetaCluster") -> bool:
        """True when the two boxes overlap along *every* axis (Section III-C).

        The overlap must have positive measure: β-cluster bounds are
        grid-aligned binary fractions, so boxes of *different* clusters
        frequently touch at a shared cell edge; treating a zero-measure
        touch as "sharing space" would chain-merge unrelated clusters.
        Boxes of the *same* underlying cluster properly overlap because
        bound growth (Algorithm 2 line 24) stretches each box over its
        populated face neighbours.
        """
        return bool(
            np.all((self.upper > other.lower) & (self.lower < other.upper))
        )


class _SearchState:
    """Per-level caches reused across Algorithm 2's restarts.

    Three monotone facts make the search incremental: convolution
    responses are static for a fixed tree, ``usedCell`` flags are only
    ever set, and the exclusion mask only ever grows (one new β-cluster
    box at a time).  Each level therefore presorts its rows by
    (response descending, row ascending) once and keeps a cursor that
    only moves forward past rows that became used or excluded — the row
    at the cursor is exactly the masked-argmax
    :func:`~repro.core.convolution.convolve_level` would recompute over
    the whole level on every restart, including its lowest-row
    tie-breaking, at amortised O(cells) for the entire search.
    Exclusion updates touch only the rows inside the new box's axis-0
    coordinate range (:func:`~repro.core.convolution.overlap_rows`)
    instead of re-testing every cell of every level per find.
    """

    def __init__(self, tree: CountingTree) -> None:
        self.tree = tree
        self._responses: dict[int, IntArray] = {}
        self._excluded: dict[int, BoolArray] = {}
        self._order: dict[int, IntArray] = {}
        self._cursor: dict[int, int] = {}

    def responses(self, h: int) -> IntArray:
        if h not in self._responses:
            self._responses[h] = level_responses(self.tree.level(h))
        return self._responses[h]

    def excluded(self, h: int) -> BoolArray:
        if h not in self._excluded:
            self._excluded[h] = np.zeros(self.tree.level(h).n_cells, dtype=bool)
        return self._excluded[h]

    _ADVANCE_BLOCK = 1024

    def best_row(self, h: int) -> int:
        """Best convolution pivot at level ``h``, or -1 when all masked."""
        if h not in self._order:
            responses = self.responses(h)
            m = responses.shape[0]
            self._order[h] = np.lexsort(
                (np.arange(m, dtype=np.int64), -responses)
            )
            self._cursor[h] = 0
        order = self._order[h]
        used = self.tree.level(h).used
        excluded = self.excluded(h)
        cursor = self._cursor[h]
        m = order.shape[0]
        # Skip rows that became used/excluded since the last pick, a
        # block at a time so the scan stays vectorised.
        while cursor < m:
            block = order[cursor : cursor + self._ADVANCE_BLOCK]
            eligible = np.flatnonzero(~(used[block] | excluded[block]))
            if eligible.size:
                cursor += int(eligible[0])
                break
            cursor += block.shape[0]
        self._cursor[h] = cursor
        return int(order[cursor]) if cursor < m else -1

    def exclude_box(self, beta: BetaCluster) -> None:
        """Mark every cell overlapping the new β-cluster as claimed."""
        for h in self.tree.levels:
            if h >= 2:
                level = self.tree.level(h)
                rows = overlap_rows(level, beta.lower, beta.upper)
                obs.incr("search.excluded_cells", int(rows.size))
                self.excluded(h)[rows] = True


_GROWTH_SHARE = 0.5
"""In *dense* grids a face neighbour must hold at least this share of
the centre cell's count for the β-cluster box to stretch over it."""

_DENSE_OCCUPANCY = 0.01
"""Grid-occupancy fraction above which the share rule applies.  In the
sparse grids of higher-dimensional data (the paper's 5-30 axis target,
where occupancy is ~1e-5) any populated face neighbour signals a
cluster tail and the paper's literal "at least one point" rule is
right.  In a dense low-dimensional grid the background populates every
neighbour, so the literal rule would make every box three cells wide
and chain all β-clusters into one; there, growth demands a neighbour
with a substantial share of the centre's mass — a meaningful straddle
leaves comparable mass on both sides of the boundary."""


def _grow_bounds(
    tree: CountingTree, h: int, row: int, relevant: BoolArray
) -> tuple[FloatArray, FloatArray]:
    """Derive the β-cluster's ``L``/``U`` rows from the centre cell.

    Relevant axes start at the centre cell's bounds and are stretched by
    one cell width towards face neighbours that carry a substantial
    share of the centre's mass (see ``_GROWTH_SHARE``); irrelevant axes
    span the full ``[0, 1]`` range (Algorithm 2 lines 21-28).
    """
    level = tree.level(h)
    d = tree.dimensionality
    lower = np.zeros(d, dtype=np.float64)
    upper = np.ones(d, dtype=np.float64)
    cell_lower, cell_upper = level.bounds(row)
    side = level.side
    occupancy = level.n_cells / float((1 << level.h) ** min(d, 62))
    if occupancy > _DENSE_OCCUPANCY:
        floor = max(1.0, _GROWTH_SHARE * float(level.n[row]))
    else:
        floor = 1.0
    for axis in np.flatnonzero(relevant):
        lo, up = cell_lower[axis], cell_upper[axis]
        lower_row, upper_row = level.neighbor_rows(row, int(axis))
        if lower_row >= 0 and level.n[lower_row] >= floor:
            lo -= side
        if upper_row >= 0 and level.n[upper_row] >= floor:
            up += side
        lower[axis] = max(0.0, lo)
        upper[axis] = min(1.0, up)
    return lower, upper


def find_beta_clusters(
    tree: CountingTree, alpha: float, max_beta_clusters: int | None = None
) -> list[BetaCluster]:
    """Run Algorithm 2 over a Counting-tree.

    Parameters
    ----------
    tree:
        The phase-one Counting-tree.
    alpha:
        Statistical significance of the binomial test (the paper fixes
        ``1e-10`` for all experiments).
    max_beta_clusters:
        Optional safety valve for pathological inputs; ``None`` (the
        default and the paper's behaviour) lets the search run until a
        full pass finds nothing.

    Returns
    -------
    β-clusters in discovery order.
    """
    check_probability("alpha", alpha)
    state = _SearchState(tree)
    found: list[BetaCluster] = []
    search_levels = [h for h in tree.levels if h >= 2]
    if not search_levels:
        return found

    with obs.span("search"):
        while True:
            new_cluster = _search_pass(state, alpha)
            if new_cluster is None:
                return found
            found.append(new_cluster)
            state.exclude_box(new_cluster)
            if max_beta_clusters is not None and len(found) >= max_beta_clusters:
                return found


def _search_pass(state: _SearchState, alpha: float) -> BetaCluster | None:
    """One inner pass of Algorithm 2 (lines 3-18): scan levels 2..H-1."""
    tree = state.tree
    obs.incr("search.passes")
    for h in tree.levels:
        if h < 2:
            continue
        level = tree.level(h)
        row = state.best_row(h)
        if row < 0:
            continue
        level.used[row] = True
        obs.incr("search.pivots")
        obs.incr(f"search.level{h}.cells_visited")
        counts = neighborhood_counts(tree, h, row)
        if not np.any(significant_axes(counts, alpha)):
            obs.incr("search.beta_rejected")
            continue
        obs.incr("search.beta_accepted")
        relevances = counts.relevances()
        threshold = mdl_cut_threshold(relevances)
        relevant = relevances >= threshold
        lower, upper = _grow_bounds(tree, h, row, relevant)
        return BetaCluster(
            lower=lower,
            upper=upper,
            relevant=relevant,
            level=h,
            center_row=row,
            relevances=relevances,
        )
    return None
