"""Introspection helpers for MrCC results and Counting-trees.

A downstream user debugging a clustering wants to see *why* MrCC made
its calls: how the tree fills up per level, how compact each cluster is
in its own subspace, and how confidently each point sits inside its
cluster's region.  Everything here is read-only over the structures the
estimator already exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.contracts import check_array
from repro.core.counting_tree import CountingTree
from repro.types import NOISE_LABEL, ClusteringResult, FloatArray


@dataclass(frozen=True)
class LevelProfile:
    """Occupancy statistics of one Counting-tree level."""

    h: int
    side: float
    n_cells: int
    max_count: int
    mean_count: float
    occupancy: float

    def as_row(self) -> dict[str, Any]:
        """Flatten into a dict suitable for tabular reporting."""
        return {
            "h": self.h,
            "side": self.side,
            "cells": self.n_cells,
            "max_count": self.max_count,
            "mean_count": self.mean_count,
            "occupancy": self.occupancy,
        }


def tree_profile(tree: CountingTree) -> list[LevelProfile]:
    """Per-level occupancy summary of a Counting-tree.

    ``occupancy`` is the stored-cell count over the nominal grid size
    (clipped into float range); it collapses towards zero as the grid
    out-grows the data — the effect that keeps the tree linear in ``η``.
    """
    profiles: list[LevelProfile] = []
    for h in tree.levels:
        level = tree.level(h)
        nominal = float(1 << min(h * tree.dimensionality, 1020))
        profiles.append(
            LevelProfile(
                h=h,
                side=level.side,
                n_cells=level.n_cells,
                max_count=int(level.n.max()),
                mean_count=float(level.n.mean()),
                occupancy=level.n_cells / nominal,
            )
        )
    return profiles


@dataclass(frozen=True)
class ClusterDiagnostics:
    """Shape statistics of one found cluster in its own subspace."""

    cluster_id: int
    size: int
    dimensionality: int
    relevant_extent: float
    irrelevant_extent: float
    compactness: float

    def as_row(self) -> dict[str, Any]:
        """Flatten into a dict suitable for tabular reporting."""
        return {
            "cluster": self.cluster_id,
            "size": self.size,
            "dim": self.dimensionality,
            "relevant_extent": self.relevant_extent,
            "irrelevant_extent": self.irrelevant_extent,
            "compactness": self.compactness,
        }


def cluster_diagnostics(
    result: ClusteringResult, points: FloatArray
) -> list[ClusterDiagnostics]:
    """Per-cluster compactness report.

    ``relevant_extent`` is the mean spread (std) of the members along
    the cluster's relevant axes, ``irrelevant_extent`` along the rest;
    ``compactness`` is their ratio — a correlation cluster should score
    well below 1.
    """
    points = np.asarray(points, dtype=np.float64)
    check_array("points", points, dtype=np.float64, ndim=2)
    d = points.shape[1]
    reports: list[ClusterDiagnostics] = []
    for k, cluster in enumerate(result.clusters):
        members = points[np.asarray(sorted(cluster.indices), dtype=np.int64)]
        stds = (
            members.std(axis=0)
            if members.shape[0] > 1
            else np.zeros(d, dtype=np.float64)
        )
        relevant = sorted(cluster.relevant_axes)
        irrelevant = [j for j in range(d) if j not in cluster.relevant_axes]
        relevant_extent = float(stds[relevant].mean()) if relevant else 0.0
        irrelevant_extent = float(stds[irrelevant].mean()) if irrelevant else 0.0
        compactness = (
            relevant_extent / irrelevant_extent if irrelevant_extent > 0 else 0.0
        )
        reports.append(
            ClusterDiagnostics(
                cluster_id=k,
                size=cluster.size,
                dimensionality=cluster.dimensionality,
                relevant_extent=relevant_extent,
                irrelevant_extent=irrelevant_extent,
                compactness=compactness,
            )
        )
    return reports


def membership_confidence(
    result: ClusteringResult, points: FloatArray
) -> FloatArray:
    """Per-point confidence in ``[0, 1]``.

    A clustered point's confidence decays with its standardised
    distance to its cluster's centroid along the cluster's relevant
    axes; noise points score 0.  Useful for ranking borderline members
    for manual review (see the screening example).
    """
    points = np.asarray(points, dtype=np.float64)
    check_array("points", points, dtype=np.float64, ndim=2)
    confidence = np.zeros(points.shape[0], dtype=np.float64)
    for k, cluster in enumerate(result.clusters):
        members = np.asarray(sorted(cluster.indices), dtype=np.int64)
        axes = sorted(cluster.relevant_axes)
        if members.size < 2 or not axes:
            confidence[members] = 1.0
            continue
        sub = points[np.ix_(members, axes)]
        center = sub.mean(axis=0)
        spread = np.maximum(sub.std(axis=0), 1e-9)
        z = np.abs(sub - center) / spread
        distance = z.mean(axis=1)
        confidence[members] = np.exp(-0.5 * distance**2)
    confidence[result.labels == NOISE_LABEL] = 0.0
    return confidence
