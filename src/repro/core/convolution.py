"""Laplacian convolution over a Counting-tree level (Section III-B, Fig. 2).

MrCC spots candidate cluster centres by convolving each tree level with
an integer approximation of the Laplacian filter.  The paper restricts
the mask to order 3 with non-zero weights only at the centre (``2d``)
and the ``2d`` face elements (``-1``), so one cell's response is

    response(c) = 2d * n(c) - Σ_j [ n(c - e_j) + n(c + e_j) ]

computable in ``O(d)`` per cell instead of the ``O(3^d)`` a full mask
would need.  Cells outside the grid or not materialised (empty space)
contribute zero, exactly like zero-padding in image processing.

The responses of a level never change while the tree is fixed, so they
are computed once per level and cached; the β-cluster search then only
re-applies its dynamic masks (``usedCell`` flags and the space already
claimed by previous β-clusters).
"""

from __future__ import annotations

import numpy as np

from repro.core.counting_tree import CountingTree, Level


def level_responses(level: Level) -> np.ndarray:
    """Convolved value of every cell at ``level`` (static per tree).

    Neighbour counts are gathered with one vectorised sorted-key join
    per (axis, side); empty neighbours (unmaterialised space or the
    grid border) contribute zero, like zero-padding a convolution.
    """
    m, d = level.coords.shape
    responses = (2 * d) * level.n.astype(np.int64)
    coords = level.coords
    limit = (1 << level.h) - 1
    counts = level.n
    for axis in range(d):
        for delta in (-1, 1):
            shifted = coords.copy()
            shifted[:, axis] += delta
            valid = (
                (shifted[:, axis] >= 0) & (shifted[:, axis] <= limit)
            )
            if not np.any(valid):
                continue
            rows = level.rows_of(shifted[valid])
            found = rows >= 0
            targets = np.flatnonzero(valid)[found]
            responses[targets] -= counts[rows[found]]
    return responses


def cell_bounds(level: Level) -> tuple[np.ndarray, np.ndarray]:
    """Lower/upper bounds of every cell at ``level`` in data space."""
    lower = level.coords * level.side
    return lower, lower + level.side


def overlap_mask(
    level: Level, box_lower: np.ndarray, box_upper: np.ndarray
) -> np.ndarray:
    """Boolean mask of cells sharing data space with one β-cluster box.

    A cell with bounds ``[l, u]`` shares space with box ``[L, U]`` iff
    ``u_j >= L_j and l_j <= U_j`` for *every* axis (Section III-B).
    """
    lower, upper = cell_bounds(level)
    return np.all((upper >= box_lower) & (lower <= box_upper), axis=1)


def convolve_level(
    tree: CountingTree,
    h: int,
    responses: np.ndarray,
    excluded: np.ndarray,
) -> int:
    """Pick the best convolution pivot at level ``h``.

    Returns the row of the cell with the largest response among cells
    that are not ``used`` and not ``excluded`` (claimed by an earlier
    β-cluster), or ``-1`` when every cell is masked.  Ties resolve to
    the lowest row, keeping MrCC deterministic.
    """
    level = tree.level(h)
    eligible = ~(level.used | excluded)
    if not np.any(eligible):
        return -1
    masked = np.where(eligible, responses, np.iinfo(np.int64).min)
    return int(np.argmax(masked))
