"""Laplacian convolution over a Counting-tree level (Section III-B, Fig. 2).

MrCC spots candidate cluster centres by convolving each tree level with
an integer approximation of the Laplacian filter.  The paper restricts
the mask to order 3 with non-zero weights only at the centre (``2d``)
and the ``2d`` face elements (``-1``), so one cell's response is

    response(c) = 2d * n(c) - Σ_j [ n(c - e_j) + n(c + e_j) ]

computable in ``O(d)`` per cell instead of the ``O(3^d)`` a full mask
would need.  Cells outside the grid or not materialised (empty space)
contribute zero, exactly like zero-padding in image processing.

The responses of a level never change while the tree is fixed, so they
are computed once per level and cached; the β-cluster search then only
re-applies its dynamic masks (``usedCell`` flags and the space already
claimed by previous β-clusters).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core import kernels
from repro.core.contracts import check_array
from repro.core.counting_tree import CountingTree, Level
from repro.types import BoolArray, FloatArray, IntArray


def level_responses(level: Level) -> IntArray:
    """Convolved value of every cell at ``level`` (static per tree).

    Delegates to the active compute backend
    (:func:`repro.core.kernels.active_backend`): the kernel produces
    responses in key order over the level's structure-of-arrays view
    and the result is scattered back into row order.  Empty neighbours
    (unmaterialised space or the grid border) contribute zero, like
    zero-padding a convolution; every backend is bit-identical here.
    """
    m = level.n_cells
    obs.incr("convolution.responses")
    obs.incr("convolution.cells", m)
    obs.incr(f"convolution.level{level.h}.responses")
    obs.incr(f"search.level{level.h}.cells_visited", m)
    soa = level.soa()
    backend = kernels.active_backend()
    key_ordered = backend.level_responses(soa)
    result: IntArray = soa.to_row_order(key_ordered)
    return result


def cell_bounds(level: Level) -> tuple[FloatArray, FloatArray]:
    """Lower/upper bounds of every cell at ``level`` in data space."""
    lower = level.coords * level.side
    return lower, lower + level.side


def overlap_mask(
    level: Level, box_lower: FloatArray, box_upper: FloatArray
) -> BoolArray:
    """Boolean mask of cells sharing data space with one β-cluster box.

    A cell with bounds ``[l, u]`` shares space with box ``[L, U]`` iff
    ``u_j >= L_j and l_j <= U_j`` for *every* axis (Section III-B).
    """
    lower, upper = cell_bounds(level)
    return np.all((upper >= box_lower) & (lower <= box_upper), axis=1)


def overlap_rows(
    level: Level, box_lower: FloatArray, box_upper: FloatArray
) -> IntArray:
    """Rows of cells sharing data space with one β-cluster box.

    Flags exactly the rows :func:`overlap_mask` flags, at a fraction of
    the work, by exploiting two facts about β-cluster boxes:

    * an axis whose box bounds span all of ``[0, 1]`` (every irrelevant
      axis) can never reject a cell, so the per-axis predicate runs
      only over *binding* axes — the handful the MDL cut kept;
    * the sorted-key order is lexicographic, so when axis 0 binds, a
      ``searchsorted`` over the axis-0 coordinate column bounds the
      candidate rows to the box's axis-0 cell range (with one cell of
      slack so the exact closed comparison stays authoritative).
    """
    n_coords = 1 << level.h
    cell_lower = np.arange(n_coords, dtype=np.int64) * level.side
    cell_upper = cell_lower + level.side
    # The per-axis predicate over all 2^h possible coordinate values.
    # Each axis admits a contiguous coordinate interval (the predicate
    # is two one-sided inequalities), so the float test collapses to an
    # exact integer interval [lo, hi] per axis.
    ok = (cell_upper[:, None] >= box_lower) & (cell_lower[:, None] <= box_upper)
    widths = ok.sum(axis=0)
    if np.any(widths == 0):
        return np.empty(0, dtype=np.int64)
    lo = np.argmax(ok, axis=0)
    hi = lo + widths - 1
    binding = (lo > 0) | (hi < n_coords - 1)
    if not np.any(binding):
        return np.arange(level.n_cells, dtype=np.int64)

    soa = level.soa()
    if binding[0]:
        # Axis 0 binds: the key order is lexicographic, so its cells
        # sit in one contiguous run of the sorted rows.
        axis0 = level.axis0_in_key_order()
        start = int(np.searchsorted(axis0, lo[0], side="left"))
        stop = int(np.searchsorted(axis0, hi[0], side="right"))
    else:
        start, stop = 0, soa.n_cells
    if start >= stop:
        return np.empty(0, dtype=np.int64)
    backend = kernels.active_backend()
    positions = backend.box_scan(soa, lo, hi, start, stop)
    return soa.rows_of_positions(positions)


def convolve_level(
    tree: CountingTree,
    h: int,
    responses: IntArray,
    excluded: BoolArray,
) -> int:
    """Pick the best convolution pivot at level ``h``.

    Returns the row of the cell with the largest response among cells
    that are not ``used`` and not ``excluded`` (claimed by an earlier
    β-cluster), or ``-1`` when every cell is masked.  Ties resolve to
    the lowest row, keeping MrCC deterministic.
    """
    level = tree.level(h)
    check_array("responses", responses, dtype=np.int64, ndim=1)
    check_array("excluded", excluded, dtype=np.bool_, ndim=1)
    eligible = ~(level.used | excluded)
    if not np.any(eligible):
        return -1
    masked = np.where(eligible, responses, np.iinfo(np.int64).min)
    return int(np.argmax(masked))
