"""Laplacian convolution over a Counting-tree level (Section III-B, Fig. 2).

MrCC spots candidate cluster centres by convolving each tree level with
an integer approximation of the Laplacian filter.  The paper restricts
the mask to order 3 with non-zero weights only at the centre (``2d``)
and the ``2d`` face elements (``-1``), so one cell's response is

    response(c) = 2d * n(c) - Σ_j [ n(c - e_j) + n(c + e_j) ]

computable in ``O(d)`` per cell instead of the ``O(3^d)`` a full mask
would need.  Cells outside the grid or not materialised (empty space)
contribute zero, exactly like zero-padding in image processing.

The responses of a level never change while the tree is fixed, so they
are computed once per level and cached; the β-cluster search then only
re-applies its dynamic masks (``usedCell`` flags and the space already
claimed by previous β-clusters).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.contracts import check_array
from repro.core.counting_tree import CountingTree, Level
from repro.types import BoolArray, FloatArray, IntArray


def level_responses(level: Level) -> IntArray:
    """Convolved value of every cell at ``level`` (static per tree).

    Neighbour counts are gathered with one vectorised sorted-key join
    per (axis, side); empty neighbours (unmaterialised space or the
    grid border) contribute zero, like zero-padding a convolution.
    """
    m, d = level.coords.shape
    obs.incr("convolution.responses")
    obs.incr("convolution.cells", m)
    obs.incr(f"convolution.level{level.h}.responses")
    obs.incr(f"search.level{level.h}.cells_visited", m)
    responses = (2 * d) * level.n.astype(np.int64)
    if m <= 1:
        # A single cell has no materialised neighbours to subtract.
        return responses
    coords = level.coords
    limit = (1 << level.h) - 1
    counts = level.n
    # One scratch buffer for all 2d probes; each axis's column is
    # restored after its two probes instead of re-copying the matrix.
    shifted = coords.copy()
    for axis in range(d):
        column = coords[:, axis]
        for delta in (-1, 1):
            shifted[:, axis] = column + delta
            valid = (
                (shifted[:, axis] >= 0) & (shifted[:, axis] <= limit)
            )
            if not np.any(valid):
                continue
            rows = level.rows_of(shifted[valid])
            found = rows >= 0
            targets = np.flatnonzero(valid)[found]
            responses[targets] -= counts[rows[found]]
        shifted[:, axis] = column
    return responses


def cell_bounds(level: Level) -> tuple[FloatArray, FloatArray]:
    """Lower/upper bounds of every cell at ``level`` in data space."""
    lower = level.coords * level.side
    return lower, lower + level.side


def overlap_mask(
    level: Level, box_lower: FloatArray, box_upper: FloatArray
) -> BoolArray:
    """Boolean mask of cells sharing data space with one β-cluster box.

    A cell with bounds ``[l, u]`` shares space with box ``[L, U]`` iff
    ``u_j >= L_j and l_j <= U_j`` for *every* axis (Section III-B).
    """
    lower, upper = cell_bounds(level)
    return np.all((upper >= box_lower) & (lower <= box_upper), axis=1)


def overlap_rows(
    level: Level, box_lower: FloatArray, box_upper: FloatArray
) -> IntArray:
    """Rows of cells sharing data space with one β-cluster box.

    Flags exactly the rows :func:`overlap_mask` flags, at a fraction of
    the work, by exploiting two facts about β-cluster boxes:

    * an axis whose box bounds span all of ``[0, 1]`` (every irrelevant
      axis) can never reject a cell, so the per-axis predicate runs
      only over *binding* axes — the handful the MDL cut kept;
    * the sorted-key order is lexicographic, so when axis 0 binds, a
      ``searchsorted`` over the axis-0 coordinate column bounds the
      candidate rows to the box's axis-0 cell range (with one cell of
      slack so the exact closed comparison stays authoritative).
    """
    n_coords = 1 << level.h
    cell_lower = np.arange(n_coords, dtype=np.int64) * level.side
    cell_upper = cell_lower + level.side
    # The per-axis predicate over all 2^h possible coordinate values.
    # Each axis admits a contiguous coordinate interval (the predicate
    # is two one-sided inequalities), so the float test collapses to an
    # exact integer interval [lo, hi] per axis.
    ok = (cell_upper[:, None] >= box_lower) & (cell_lower[:, None] <= box_upper)
    widths = ok.sum(axis=0)
    if np.any(widths == 0):
        return np.empty(0, dtype=np.int64)
    lo = np.argmax(ok, axis=0)
    hi = lo + widths - 1
    binding = np.flatnonzero((lo > 0) | (hi < n_coords - 1))
    if binding.size == 0:
        return np.arange(level.n_cells, dtype=np.int64)

    coords = level.coords
    if lo[0] > 0 or hi[0] < n_coords - 1:
        # Axis 0 binds: the key order is lexicographic, so its cells
        # sit in one contiguous run of the sorted-key index.
        axis0 = level.axis0_in_key_order()
        start = np.searchsorted(axis0, lo[0], side="left")
        stop = np.searchsorted(axis0, hi[0], side="right")
        assert level._sort_order is not None
        candidates = level._sort_order[start:stop]
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64)
        hit = np.ones(candidates.shape[0], dtype=bool)
        for axis in binding[1:] if binding[0] == 0 else binding:
            column = coords[candidates, axis]
            hit &= (column >= lo[axis]) & (column <= hi[axis])
        return candidates[hit]

    hit = np.ones(coords.shape[0], dtype=bool)
    for axis in binding:
        column = coords[:, axis]
        hit &= (column >= lo[axis]) & (column <= hi[axis])
    return np.flatnonzero(hit)


def convolve_level(
    tree: CountingTree,
    h: int,
    responses: IntArray,
    excluded: BoolArray,
) -> int:
    """Pick the best convolution pivot at level ``h``.

    Returns the row of the cell with the largest response among cells
    that are not ``used`` and not ``excluded`` (claimed by an earlier
    β-cluster), or ``-1`` when every cell is masked.  Ties resolve to
    the lowest row, keeping MrCC deterministic.
    """
    level = tree.level(h)
    check_array("responses", responses, dtype=np.int64, ndim=1)
    check_array("excluded", excluded, dtype=np.bool_, ndim=1)
    eligible = ~(level.used | excluded)
    if not np.any(eligible):
        return -1
    masked = np.where(eligible, responses, np.iinfo(np.int64).min)
    return int(np.argmax(masked))
