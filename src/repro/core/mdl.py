"""MDL cut of the axis-relevance array (Section III-B, ref. [10]).

After the significance test confirms a β-cluster, MrCC derives one
relevance value per axis, ``r[j] = 100 * cP_j / nP_j``, and must decide
which axes are *relevant* to the cluster.  Instead of a fixed
threshold, the paper sorts the relevances ascending into ``o[]`` and
applies the Minimum Description Length principle: choose the cut
position ``p`` that "maximizes the homogeneity of the partitions
``[o_1 .. o_{p-1}]`` and ``[o_p .. o_d]``" — i.e. minimises the number
of bits needed to describe the values given one summary per partition.

Description length model (the standard MDL-histogram encoding also used
by CLIQUE): each partition is summarised by its mean; every value costs
``log2(1 + |v - mean|)`` bits to reconstruct.  The empty partition
(``p = 1``, every axis relevant) costs nothing.  The cut value
``cThreshold = o[p]`` then marks axis ``e_j`` relevant iff
``r[j] >= cThreshold``.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.contracts import check_array
from repro.types import FloatArray

MODEL_BITS_PER_PARTITION = float(np.log2(100.0))
"""Two-part MDL: each non-empty partition pays for its own summary (a
mean over the (0, 100] relevance range).  Without this model cost a cut
would "pay off" on any non-constant array, splitting even homogeneous
relevance arrays whose axes are all equally relevant."""


def partition_cost(values: FloatArray) -> float:
    """Bits to encode ``values`` as deviations from their mean."""
    if values.size == 0:
        return 0.0
    deviations = np.abs(values - values.mean())
    return MODEL_BITS_PER_PARTITION + float(np.sum(np.log2(1.0 + deviations)))


def mdl_cut_position(sorted_values: FloatArray) -> int:
    """Best cut position ``p`` (1-based, ``1 <= p <= d``).

    The right partition starts at (0-based) index ``p - 1``.  Ties are
    broken towards the smallest ``p`` (more axes relevant), which keeps
    the procedure deterministic.
    """
    values = np.asarray(sorted_values, dtype=np.float64)
    d = values.size
    if d == 0:
        raise ValueError("cannot cut an empty relevance array")
    if np.any(np.diff(values) < 0):
        raise ValueError("values must be sorted ascending")
    best_p = 1
    best_cost = float("inf")
    for p in range(1, d + 1):
        cost = partition_cost(values[: p - 1]) + partition_cost(values[p - 1 :])
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_p = p
    return best_p


def mdl_cut_threshold(relevances: FloatArray) -> float:
    """The relevance threshold ``cThreshold`` chosen by MDL.

    Sorts ``relevances`` ascending and returns ``o[p]`` for the best
    cut position ``p``; axes with relevance ≥ this value are relevant
    to the new β-cluster.
    """
    relevances = np.asarray(relevances, dtype=np.float64)
    check_array("relevances", relevances, dtype=np.float64, ndim=1, finite=True)
    obs.incr("search.mdl_cuts")
    ordered = np.sort(relevances)
    p = mdl_cut_position(ordered)
    return float(ordered[p - 1])
