"""Soft correlation clustering (the journal follow-up's extension).

The conference method (this paper) produces *hard*, disjoint clusters:
each β-cluster claims its space exclusively and every point gets one
label.  The journal extension of the method (Halite, TKDE 2013) adds a
*soft* variant in which clusters may overlap and points carry
membership degrees — useful when real structures genuinely share
space (e.g. tissue patterns sharing feature ranges).

This module implements that extension on top of the phase-1/phase-2
machinery:

* the standard β-cluster search runs unchanged (it already surfaces
  structures that overlap on a subset of their axes, since exclusion
  requires overlap on *every* axis);
* β-clusters are merged into soft clusters when their boxes overlap
  substantially (worst-axis Jaccard of the relevant-axis intervals),
  which is stricter than the hard variant's any-positive-overlap rule;
* every point receives a membership degree per soft cluster from a
  Gaussian model fitted over the cluster's relevant axes; degrees are
  *not* normalised across clusters — a point may belong strongly to
  two overlapping clusters, or weakly to all (noise).

:func:`find_beta_clusters_soft` additionally exposes the
exclusion-free search for exploratory use (every dense region
including sub-slices of spread clusters surfaces as its own
candidate).
"""

from __future__ import annotations

import numpy as np

from repro.core.beta_cluster import BetaCluster, _SearchState, _search_pass
from repro.core.contracts import check_array
from repro.core.correlation_cluster import UnionFind
from repro.core.counting_tree import MIN_RESOLUTIONS, CountingTree
from repro.data.normalize import minmax_normalize
from repro.types import (
    NOISE_LABEL,
    ClusteringResult,
    FloatArray,
    IntArray,
    SubspaceCluster,
)


def find_beta_clusters_soft(
    tree: CountingTree, alpha: float, max_beta_clusters: int = 64
) -> list[BetaCluster]:
    """Algorithm 2 without the inter-cluster space exclusion.

    The ``usedCell`` flags remain (one seed per cell) but found boxes do
    not mask the space, so overlapping structures can each surface.  A
    finite ``max_beta_clusters`` bounds the run because without
    exclusion the stop condition weakens.
    """
    state = _SearchState(tree)
    found: list[BetaCluster] = []
    while len(found) < max_beta_clusters:
        new_cluster = _search_pass(state, alpha)
        if new_cluster is None:
            return found
        found.append(new_cluster)
        # NOTE: deliberately no state.exclude_box(new_cluster).
    return found


def _interval_jaccard(beta_a: BetaCluster, beta_b: BetaCluster) -> float:
    """Worst-axis Jaccard overlap of the boxes over shared relevant axes.

    The minimum (not the mean) is the right aggregator: two structures
    that coincide on every axis but one are different clusters — one
    disjoint axis must veto the merge.
    """
    shared = sorted(beta_a.relevant_axes & beta_b.relevant_axes)
    if not shared:
        return 0.0
    scores = []
    for axis in shared:
        lo = max(beta_a.lower[axis], beta_b.lower[axis])
        hi = min(beta_a.upper[axis], beta_b.upper[axis])
        union_lo = min(beta_a.lower[axis], beta_b.lower[axis])
        union_hi = max(beta_a.upper[axis], beta_b.upper[axis])
        if union_hi <= union_lo:
            scores.append(0.0)
        else:
            scores.append(max(hi - lo, 0.0) / (union_hi - union_lo))
    return float(np.min(scores))


def merge_soft(
    betas: list[BetaCluster], jaccard_threshold: float = 0.5
) -> list[list[int]]:
    """Group β-clusters whose boxes substantially coincide."""
    uf = UnionFind(len(betas))
    for i in range(len(betas)):
        for j in range(i + 1, len(betas)):
            if _interval_jaccard(betas[i], betas[j]) >= jaccard_threshold:
                uf.union(i, j)
    return sorted(uf.components().values(), key=lambda members: members[0])


class SoftMrCC:
    """Soft-membership variant of MrCC.

    Parameters
    ----------
    alpha / n_resolutions / normalize:
        As in :class:`~repro.core.mrcc.MrCC`.
    membership_threshold:
        Minimum degree for a point to count as a member of a cluster;
        points below the threshold everywhere are noise.
    jaccard_threshold:
        Box overlap above which two β-clusters describe the same soft
        cluster.
    max_beta_clusters:
        Search budget (the exclusion-free search needs a bound).

    After :meth:`fit`: ``membership_`` is the ``(n_points, k)`` degree
    matrix; the returned :class:`ClusteringResult` hard-assigns each
    point to its strongest cluster for interoperability.
    """

    def __init__(
        self,
        alpha: float = 1e-10,
        n_resolutions: int = 4,
        normalize: bool = True,
        membership_threshold: float = 0.05,
        jaccard_threshold: float = 0.5,
        max_beta_clusters: int = 64,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if n_resolutions < MIN_RESOLUTIONS:
            raise ValueError(f"n_resolutions must be >= {MIN_RESOLUTIONS}")
        if not 0.0 <= membership_threshold < 1.0:
            raise ValueError("membership_threshold must be in [0, 1)")
        self.alpha = float(alpha)
        self.n_resolutions = int(n_resolutions)
        self.normalize = bool(normalize)
        self.membership_threshold = float(membership_threshold)
        self.jaccard_threshold = float(jaccard_threshold)
        self.max_beta_clusters = int(max_beta_clusters)
        self.membership_: FloatArray | None = None
        self.beta_clusters_: list[BetaCluster] | None = None
        self.labels_: IntArray | None = None

    def fit(self, points: FloatArray) -> ClusteringResult:
        """Soft-cluster ``points``; returns the hard-argmax view."""
        points = np.asarray(points, dtype=np.float64)
        check_array("points", points, dtype=np.float64, ndim=2, finite=True)
        if self.normalize:
            points = minmax_normalize(points)

        from repro.core.beta_cluster import find_beta_clusters

        tree = CountingTree(points, n_resolutions=self.n_resolutions)
        betas = find_beta_clusters(
            tree, self.alpha, max_beta_clusters=self.max_beta_clusters
        )
        self.beta_clusters_ = betas
        groups = merge_soft(betas, self.jaccard_threshold)
        membership = self._membership_matrix(points, betas, groups)

        labels = np.full(points.shape[0], NOISE_LABEL, dtype=np.int64)
        if membership.shape[1]:
            best = membership.argmax(axis=1)
            strong = membership.max(axis=1) >= self.membership_threshold
            labels[strong] = best[strong]

        clusters: list[SubspaceCluster] = []
        kept = 0
        remap: dict[int, int] = {}
        axes_per_group = [
            frozenset().union(*(betas[i].relevant_axes for i in members))
            for members in groups
        ]
        for g in range(len(groups)):
            members = np.flatnonzero(labels == g)
            if members.size == 0:
                continue
            remap[g] = kept
            clusters.append(SubspaceCluster.from_iterables(members, axes_per_group[g]))
            kept += 1
        labels = np.asarray(
            [remap.get(int(lab), NOISE_LABEL) for lab in labels], dtype=np.int64
        )
        # Align membership columns with the final cluster ids (groups
        # that attracted no hard member drop out of the matrix).
        if remap:
            order = [g for g, _ in sorted(remap.items(), key=lambda kv: kv[1])]
            membership = membership[:, order]
        else:
            membership = membership[:, :0]
        self.membership_ = membership
        self.labels_ = labels
        return ClusteringResult(
            labels=labels,
            clusters=clusters,
            extras={
                "n_beta_clusters": len(betas),
                "membership": self.membership_,
                "soft": True,
            },
        )

    def _membership_matrix(
        self,
        points: FloatArray,
        betas: list[BetaCluster],
        groups: list[list[int]],
    ) -> FloatArray:
        """Gaussian membership degree of every point to every group."""
        n = points.shape[0]
        membership = np.zeros((n, len(groups)), dtype=np.float64)
        for g, members in enumerate(groups):
            seeds = np.zeros(n, dtype=bool)
            axes: set[int] = set()
            for beta_index in members:
                beta = betas[beta_index]
                axes.update(beta.relevant_axes)
                seeds |= np.all(
                    (points >= beta.lower) & (points <= beta.upper), axis=1
                )
            axis_list = sorted(axes)
            if not np.any(seeds) or not axis_list:
                continue
            sub = points[np.ix_(seeds.nonzero()[0], axis_list)]
            center = sub.mean(axis=0)
            spread = np.maximum(sub.std(axis=0), 1e-6)
            z = (points[:, axis_list] - center) / spread
            membership[:, g] = np.exp(-0.5 * (z**2).mean(axis=1))
        return membership

    def fit_predict(self, points: FloatArray) -> IntArray:
        """Soft-cluster ``points`` and return the hard-argmax labels."""
        return self.fit(points).labels
