"""The paper's contribution: MrCC (Multi-resolution Correlation Clustering).

Phases (Section III):

1. :mod:`repro.core.counting_tree` — build the Counting-tree, a
   multi-resolution hyper-grid of point counts and half-space counts
   over ``[0, 1)^d`` (Algorithm 1).
2. :mod:`repro.core.beta_cluster` — locate β-clusters by convolving a
   Laplacian face mask over each tree level, confirming candidates with
   a one-sided binomial test and cutting axis relevances with MDL
   (Algorithm 2; helpers in :mod:`repro.core.convolution`,
   :mod:`repro.core.hypothesis_test`, :mod:`repro.core.mdl`).
3. :mod:`repro.core.correlation_cluster` — merge space-sharing
   β-clusters into correlation clusters and label points (Algorithm 3).

:class:`repro.core.mrcc.MrCC` wires the phases into one estimator.
"""

from repro.core.beta_cluster import BetaCluster, find_beta_clusters
from repro.core.contracts import (
    ContractError,
    check_array,
    check_labels,
    check_level,
)
from repro.core.convolution import convolve_level
from repro.core.counting_tree import CountingTree
from repro.core.correlation_cluster import build_correlation_clusters
from repro.core.diagnostics import (
    cluster_diagnostics,
    membership_confidence,
    tree_profile,
)
from repro.core.hypothesis_test import critical_value, neighborhood_counts
from repro.core.mdl import mdl_cut_threshold
from repro.core.mrcc import MrCC
from repro.core.soft import SoftMrCC
from repro.core.streaming import (
    TreeStreamBuilder,
    build_tree_from_chunks,
    fit_stream,
    label_stream,
)

__all__ = [
    "ContractError",
    "check_array",
    "check_labels",
    "check_level",
    "CountingTree",
    "convolve_level",
    "critical_value",
    "neighborhood_counts",
    "mdl_cut_threshold",
    "BetaCluster",
    "find_beta_clusters",
    "build_correlation_clusters",
    "MrCC",
    "SoftMrCC",
    "tree_profile",
    "cluster_diagnostics",
    "membership_confidence",
    "TreeStreamBuilder",
    "build_tree_from_chunks",
    "fit_stream",
    "label_stream",
]
