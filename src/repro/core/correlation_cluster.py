"""Building correlation clusters from β-clusters (Section III-C, Alg. 3).

β-clusters that share data space (their boxes overlap along *every*
axis) describe the same underlying correlation cluster and are merged;
the merge is the transitive closure of the pairwise sharing relation,
computed with a union-find.  A correlation cluster's relevant axes are
the union of its members' relevant axes, and its space is the union of
their boxes.

Finally the dataset is partitioned: a point belongs to the correlation
cluster whose member box contains it (boxes of distinct correlation
clusters are disjoint by construction, so the assignment is
unambiguous); all remaining points are noise.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.beta_cluster import BetaCluster
from repro.core.contracts import check_array, check_labels
from repro.types import (
    NOISE_LABEL,
    ClusteringResult,
    FloatArray,
    IntArray,
    SubspaceCluster,
)


class UnionFind:
    """Minimal union-find with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n

    def find(self, i: int) -> int:
        """Representative of ``i``'s component."""
        root = i
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[i] != root:
            self._parent[i], i = root, self._parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        """Merge the components of ``i`` and ``j``."""
        ri, rj = self.find(i), self.find(j)
        if ri == rj:
            return
        if self._size[ri] < self._size[rj]:
            ri, rj = rj, ri
        self._parent[rj] = ri
        self._size[ri] += self._size[rj]

    def components(self) -> dict[int, list[int]]:
        """Map each representative to its sorted member list."""
        groups: dict[int, list[int]] = {}
        for i in range(len(self._parent)):
            groups.setdefault(self.find(i), []).append(i)
        return groups


def merge_beta_clusters(betas: list[BetaCluster]) -> list[list[int]]:
    """Group β-cluster indices into correlation clusters (Alg. 3 lines 1-5).

    Groups are ordered by their smallest member index, so correlation
    cluster ids are stable across runs.
    """
    uf = UnionFind(len(betas))
    for i in range(len(betas)):
        for j in range(i + 1, len(betas)):
            if betas[i].shares_space_with(betas[j]):
                uf.union(i, j)
    groups = sorted(uf.components().values(), key=lambda members: members[0])
    return groups


def label_points(
    points: FloatArray, betas: list[BetaCluster], groups: list[list[int]]
) -> IntArray:
    """Partition the dataset: box membership → cluster id, else noise.

    Points are tested against member boxes in group order; because the
    groups' spaces are disjoint, at most one group can claim a point.
    """
    labels = np.full(points.shape[0], NOISE_LABEL, dtype=np.int64)
    unassigned = np.ones(points.shape[0], dtype=bool)
    for cluster_id, members in enumerate(groups):
        claimed = np.zeros(points.shape[0], dtype=bool)
        for beta_index in members:
            beta = betas[beta_index]
            inside = np.all(
                (points >= beta.lower) & (points <= beta.upper), axis=1
            )
            claimed |= inside
        claimed &= unassigned
        labels[claimed] = cluster_id
        unassigned &= ~claimed
    return labels


def build_correlation_clusters(
    points: FloatArray, betas: list[BetaCluster]
) -> ClusteringResult:
    """Run Algorithm 3: merge β-clusters, define axes, label points."""
    check_array("points", points, dtype=np.float64, ndim=2)
    if not betas:
        return ClusteringResult(
            labels=np.full(points.shape[0], NOISE_LABEL, dtype=np.int64),
            clusters=[],
            extras={"n_beta_clusters": 0, "beta_clusters": []},
        )
    with obs.span("assemble"):
        obs.incr("assemble.beta_clusters", len(betas))
        groups = merge_beta_clusters(betas)
        obs.incr("assemble.clusters", len(groups))
        labels = check_labels("labels", label_points(points, betas, groups))
        if obs.enabled():
            # O(n) scan, so only under an active tracer.
            obs.incr("assemble.noise_points", int(np.sum(labels == NOISE_LABEL)))
    clusters: list[SubspaceCluster] = []
    for cluster_id, members in enumerate(groups):
        axes: set[int] = set()
        for beta_index in members:
            axes.update(betas[beta_index].relevant_axes)
        clusters.append(
            SubspaceCluster.from_iterables(np.flatnonzero(labels == cluster_id), axes)
        )
    return ClusteringResult(
        labels=labels,
        clusters=clusters,
        extras={
            "n_beta_clusters": len(betas),
            "beta_clusters": betas,
            "groups": groups,
        },
    )
