"""The MrCC estimator: the paper's three phases behind one interface.

``MrCC`` (Multi-resolution Correlation Clustering) detects correlation
clusters — point sets that are dense in a subspace of the original
axes, or of linear combinations of them — in data with roughly 5 to 30
axes.  It is deterministic, needs no cluster count, performs no
distance calculations, and runs in time linear in the number of points.

Parameters mirror the paper's two inputs: the statistical significance
``alpha`` (the probability of wrongly confirming a β-cluster; fixed at
``1e-10`` for all the paper's experiments) and the number of
resolutions ``H`` (``n_resolutions``; 4 suffices for most data,
Section IV-D).

Example
-------
>>> import numpy as np
>>> from repro.core.mrcc import MrCC
>>> rng = np.random.default_rng(0)
>>> cluster = rng.normal(0.5, 0.01, size=(500, 2))
>>> cluster = np.hstack([cluster, rng.uniform(0, 1, size=(500, 3))])
>>> noise = rng.uniform(0, 1, size=(200, 5))
>>> result = MrCC().fit(np.vstack([cluster, noise]))
>>> result.n_clusters
1
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.beta_cluster import BetaCluster, find_beta_clusters
from repro.core.contracts import check_array, check_labels
from repro.core.correlation_cluster import build_correlation_clusters
from repro.core.counting_tree import MIN_RESOLUTIONS, CountingTree
from repro.data.normalize import apply_minmax, minmax_params
from repro.types import ClusteringResult, FloatArray, IntArray, SubspaceCluster

if TYPE_CHECKING:
    from pathlib import Path

DEFAULT_ALPHA = 1e-10
DEFAULT_RESOLUTIONS = 4


class MrCC:
    """Multi-resolution Correlation Cluster detection (Sections III A-C).

    Parameters
    ----------
    alpha:
        Significance level of the six-region binomial test.
    n_resolutions:
        The paper's ``H``; number of multi-resolution grid levels
        (must be ≥ 3; the tree materialises levels ``1 .. H-1``).
    normalize:
        When true (default), min-max normalise the input into
        ``[0, 1)`` first; disable only for data already embedded in the
        unit cube.
    max_beta_clusters:
        Optional cap on the β-cluster search; ``None`` reproduces the
        paper exactly.
    n_jobs:
        Worker count for the sharded Counting-tree build (phase one).
        ``None`` defers to ``REPRO_JOBS`` with the
        :data:`~repro.core.counting_tree.SHARD_MIN_POINTS` floor; the
        sharded build is bit-identical to the serial one.

    Attributes (after :meth:`fit`)
    ------------------------------
    ``labels_`` — cluster id per point (``-1`` = noise);
    ``clusters_`` — list of :class:`~repro.types.SubspaceCluster`;
    ``relevant_axes_`` — list of axis sets, one per cluster;
    ``beta_clusters_`` — the intermediate β-clusters;
    ``tree_`` — the phase-one Counting-tree;
    ``normalizer_`` — the fitted per-axis min-max ``(lo, span)`` pair
    when ``normalize`` is on (``None`` otherwise), so unseen query
    points can be mapped into the model's unit cube bit-identically.
    """

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        n_resolutions: int = DEFAULT_RESOLUTIONS,
        normalize: bool = True,
        max_beta_clusters: int | None = None,
        n_jobs: int | None = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if n_resolutions < MIN_RESOLUTIONS:
            raise ValueError(f"n_resolutions must be >= {MIN_RESOLUTIONS}")
        self.alpha = float(alpha)
        self.n_resolutions = int(n_resolutions)
        self.normalize = bool(normalize)
        self.max_beta_clusters = max_beta_clusters
        self.n_jobs = n_jobs

        self.labels_: IntArray | None = None
        self.clusters_: list[SubspaceCluster] | None = None
        self.relevant_axes_: list[frozenset[int]] | None = None
        self.beta_clusters_: list[BetaCluster] | None = None
        self.tree_: CountingTree | None = None
        self.normalizer_: tuple[FloatArray, FloatArray] | None = None

    def fit(self, points: FloatArray) -> ClusteringResult:
        """Cluster ``points`` and return the :class:`ClusteringResult`.

        The three phases run in sequence: Counting-tree construction
        (Algorithm 1), β-cluster search (Algorithm 2), correlation
        cluster assembly and labelling (Algorithm 3).
        """
        points = np.asarray(points, dtype=np.float64)
        check_array("points", points, dtype=np.float64, ndim=2, finite=True)
        with obs.span("fit"):
            obs.incr("fit.runs")
            obs.incr("fit.points", int(points.shape[0]))
            self.normalizer_ = None
            if self.normalize:
                with obs.span("fit.normalize"):
                    lo, span = minmax_params(points)
                    self.normalizer_ = (lo, span)
                    points = apply_minmax(points, lo, span)

            self.tree_ = CountingTree(
                points,
                n_resolutions=self.n_resolutions,
                n_jobs=self.n_jobs,
            )
            self.beta_clusters_ = find_beta_clusters(
                self.tree_, self.alpha, max_beta_clusters=self.max_beta_clusters
            )
            result = build_correlation_clusters(points, self.beta_clusters_)
        result.extras["alpha"] = self.alpha
        result.extras["n_resolutions"] = self.n_resolutions

        check_labels("labels", result.labels, n_points=points.shape[0])
        self.labels_ = result.labels
        self.clusters_ = result.clusters
        self.relevant_axes_ = [c.relevant_axes for c in result.clusters]
        return result

    def fit_predict(self, points: FloatArray) -> IntArray:
        """Cluster ``points`` and return only the label vector."""
        return self.fit(points).labels

    def save(self, path: str | Path) -> None:
        """Persist the fitted model as a serving artifact.

        Convenience front door for :func:`repro.serve.save_model`; the
        estimator must be fitted.  The written file round-trips through
        :func:`repro.serve.load_model` into labels bit-identical to
        ``self.labels_``.
        """
        from repro.serve import save_model

        save_model(self, path)
