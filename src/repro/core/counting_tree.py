"""The Counting-tree (Section III-A, Algorithm 1, Figure 3).

The Counting-tree represents a dataset embedded in ``[0, 1)^d`` as a
stack of hyper-grids in ``H`` resolutions.  Level ``h`` partitions each
axis into ``2^h`` intervals of side ``1 / 2^h``; a cell stores

* ``n`` — the number of points it covers,
* ``P[j]`` — the *half-space count*: how many of those points fall in
  the lower half of the cell along axis ``e_j``,
* ``usedCell`` — consumed by the β-cluster search (phase two).

Only non-empty cells are materialised, so each level holds at most
``η`` cells regardless of the ``O(2^{dh})`` nominal grid size — the
paper's "linked list of cells per node" economy.  Levels are stored
column-wise in numpy arrays with a hash index from cell coordinates to
rows, giving O(1) cell and face-neighbour lookup, which phase two
depends on.

Construction is a single scan in the paper; here the scan is expressed
as vectorised numpy passes (one per level) over the same per-point
information — each point contributes one count to every level and one
half-space count per axis, exactly as Algorithm 1 lines 4-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

MIN_RESOLUTIONS = 3
"""Algorithm 1 requires ``H >= 3``."""


def void_keys(coords: np.ndarray) -> np.ndarray:
    """Encode coordinate rows as comparable fixed-size binary keys.

    Big-endian unsigned encoding makes the bytewise comparison of the
    void view coincide with lexicographic numeric order, so the keys
    support ``np.searchsorted`` joins — the vectorised equivalent of a
    per-cell hash lookup.
    """
    coords = np.ascontiguousarray(coords)
    big_endian = np.ascontiguousarray(coords.astype(">u4"))
    width = big_endian.shape[1] * big_endian.dtype.itemsize
    return big_endian.view(np.dtype((np.void, width))).ravel()


@dataclass
class Level:
    """One resolution level of the Counting-tree.

    Attributes
    ----------
    h:
        Level number; cells have side ``1 / 2**h``.
    coords:
        ``(m, d)`` integer cell coordinates (``floor(x * 2**h)``).
    n:
        ``(m,)`` point count per cell.
    half_counts:
        ``(m, d)`` half-space counts (the paper's ``P[]``).
    used:
        ``(m,)`` the ``usedCell`` flags.
    """

    h: int
    coords: np.ndarray
    n: np.ndarray
    half_counts: np.ndarray
    used: np.ndarray
    _sorted_keys: np.ndarray = field(default=None, repr=False)
    _sort_order: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._sorted_keys is None:
            keys = void_keys(self.coords)
            self._sort_order = np.argsort(keys)
            self._sorted_keys = keys[self._sort_order]

    @property
    def n_cells(self) -> int:
        """Number of non-empty cells stored at this level."""
        return int(self.coords.shape[0])

    @property
    def side(self) -> float:
        """Cell side length ``ξ_h = 1 / 2**h``."""
        return 1.0 / (1 << self.h)

    def row_of(self, coords: np.ndarray) -> int:
        """Row index of the cell at ``coords``, or ``-1`` if empty."""
        rows = self.rows_of(np.asarray(coords).reshape(1, -1))
        return int(rows[0])

    def rows_of(self, coords: np.ndarray) -> np.ndarray:
        """Vectorised cell lookup: one row index (or -1) per query row."""
        queries = void_keys(coords)
        positions = np.searchsorted(self._sorted_keys, queries)
        positions = np.minimum(positions, self._sorted_keys.shape[0] - 1)
        found = self._sorted_keys[positions] == queries
        rows = np.where(found, self._sort_order[positions], -1)
        return rows.astype(np.int64)

    def count_at(self, coords: np.ndarray) -> int:
        """Point count of the cell at ``coords`` (0 for empty cells)."""
        row = self.row_of(coords)
        return int(self.n[row]) if row >= 0 else 0

    def neighbor_rows(self, row: int, axis: int) -> tuple[int, int]:
        """Rows of the lower/upper face neighbours along ``axis`` (-1 if empty).

        Covers both the paper's *internal* and *external* neighbours:
        the hash index does not care whether the neighbour lives in the
        same tree node or a sibling node.
        """
        coords = self.coords[row].copy()
        original = coords[axis]
        lower = -1
        if original > 0:
            coords[axis] = original - 1
            lower = self.row_of(coords)
        upper = -1
        if original < (1 << self.h) - 1:
            coords[axis] = original + 1
            upper = self.row_of(coords)
        return lower, upper

    def bounds(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bounds ``(l_j, u_j)`` of the cell in data space."""
        lower = self.coords[row] * self.side
        return lower, lower + self.side


class CountingTree:
    """Multi-resolution grid counts over a dataset in ``[0, 1)^d``.

    Parameters
    ----------
    points:
        Array of shape ``(η, d)`` with values in ``[0, 1)``.
    n_resolutions:
        The paper's ``H``; levels ``1 .. H-1`` are materialised (level 0
        is the root hyper-cube, kept implicitly).  Must be ≥ 3.

    Notes
    -----
    Time ``O(η H d)`` and space ``O(H η d)``, matching Algorithm 1's
    stated complexity.
    """

    def __init__(self, points: np.ndarray, n_resolutions: int = 4):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be a 2-d array of shape (η, d)")
        if points.shape[0] == 0:
            raise ValueError("cannot build a Counting-tree over zero points")
        if np.any(points < 0.0) or np.any(points >= 1.0):
            raise ValueError("points must lie in [0, 1); normalise first")
        if n_resolutions < MIN_RESOLUTIONS:
            raise ValueError(f"n_resolutions must be >= {MIN_RESOLUTIONS}")

        self._n_points, self._d = points.shape
        self._H = int(n_resolutions)

        # Integer coordinates at the finest half-resolution 2^H; every
        # coarser level (and every half-space bit) is a right shift.
        base = np.floor(points * (1 << self._H)).astype(np.int64)
        np.clip(base, 0, (1 << self._H) - 1, out=base)

        self._levels: dict[int, Level] = {}
        for h in range(1, self._H):
            self._levels[h] = self._build_level(base, h)

    def _build_level(self, base: np.ndarray, h: int) -> Level:
        """Aggregate per-point coordinates into one level's cell arrays."""
        shift = self._H - h
        coords_h = base >> shift
        cells, inverse = np.unique(coords_h, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        counts = np.bincount(inverse, minlength=cells.shape[0]).astype(np.int64)

        # Half-space bit: the next-finer coordinate's parity along each
        # axis; bit 0 means the point is in the lower half of this cell.
        half_bits = (base >> (shift - 1)) & 1
        half_counts = np.zeros((cells.shape[0], self._d), dtype=np.int64)
        np.add.at(half_counts, inverse, (half_bits == 0).astype(np.int64))

        return Level(
            h=h,
            coords=np.ascontiguousarray(cells),
            n=counts,
            half_counts=half_counts,
            used=np.zeros(cells.shape[0], dtype=bool),
        )

    @property
    def n_resolutions(self) -> int:
        """The paper's ``H``."""
        return self._H

    @property
    def dimensionality(self) -> int:
        """Embedding dimensionality ``d``."""
        return self._d

    @property
    def n_points(self) -> int:
        """Number of points counted (``η``)."""
        return self._n_points

    @property
    def levels(self) -> range:
        """Materialised level numbers (``1 .. H-1``)."""
        return range(1, self._H)

    def level(self, h: int) -> Level:
        """Return level ``h`` (raises ``KeyError`` for level 0 or ≥ H)."""
        return self._levels[h]

    def parent_row(self, h: int, row: int) -> int:
        """Row index (at level ``h-1``) of the parent of cell ``row`` at level ``h``."""
        if h <= 1:
            raise ValueError("level-1 cells have the implicit root as parent")
        parent_coords = self.level(h).coords[row] >> 1
        parent = self.level(h - 1).row_of(parent_coords)
        if parent < 0:
            raise RuntimeError("corrupt tree: populated cell with empty parent")
        return parent

    def loc_bits(self, h: int, row: int) -> np.ndarray:
        """The cell's relative position ``loc`` inside its parent (d bits)."""
        return (self.level(h).coords[row] & 1).astype(np.int64)

    def total_cells(self) -> int:
        """Total number of stored cells, for memory accounting."""
        return sum(level.n_cells for level in self._levels.values())
