"""The Counting-tree (Section III-A, Algorithm 1, Figure 3).

The Counting-tree represents a dataset embedded in ``[0, 1)^d`` as a
stack of hyper-grids in ``H`` resolutions.  Level ``h`` partitions each
axis into ``2^h`` intervals of side ``1 / 2^h``; a cell stores

* ``n`` — the number of points it covers,
* ``P[j]`` — the *half-space count*: how many of those points fall in
  the lower half of the cell along axis ``e_j``,
* ``usedCell`` — consumed by the β-cluster search (phase two).

Only non-empty cells are materialised, so each level holds at most
``η`` cells regardless of the ``O(2^{dh})`` nominal grid size — the
paper's "linked list of cells per node" economy.  Levels are stored
column-wise in numpy arrays with a hash index from cell coordinates to
rows, giving O(1) cell and face-neighbour lookup, which phase two
depends on.

Construction is a single scan in the paper; here the points are binned
once at the finest half-resolution ``2^H`` and every coarser level is
derived by *aggregating cells* — right-shifting coordinates and summing
counts over equal parents — so the per-point work is O(η) total instead
of O(η·H).  The result is bit-identical to re-scanning the points per
level (the seed behaviour, kept as :func:`_reference_build` for the
equivalence tests and the perf baseline): each point still contributes
one count to every level and one half-space count per axis, exactly as
Algorithm 1 lines 4-10.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import env, obs
from repro.core.contracts import ContractError, check_array
from repro.types import AnyArray, BoolArray, FloatArray, IntArray

if TYPE_CHECKING:
    from repro.core.kernels.soa import LevelSoA

MIN_RESOLUTIONS = 3
"""Algorithm 1 requires ``H >= 3``."""

MAX_RESOLUTIONS = 32
"""Coordinates at the finest half-resolution ``2^H`` must fit the
``uint32`` key packing of :func:`void_keys`, bounding ``H`` at 32."""

_KEY_COORD_MAX = (1 << 32) - 1
"""Largest coordinate the big-endian ``>u4`` key packing can hold."""

SHARD_MIN_POINTS = 200_000
"""Below this many points the env-driven sharded build stays serial:
the process fan-out costs more than the binning it parallelises.  An
explicit ``n_jobs`` argument overrides the floor."""


def void_keys(coords: IntArray) -> AnyArray:
    """Encode coordinate rows as comparable fixed-size binary keys.

    Big-endian unsigned encoding makes the bytewise comparison of the
    void view coincide with lexicographic numeric order, so the keys
    support ``np.searchsorted`` joins — the vectorised equivalent of a
    per-cell hash lookup.

    The ``>u4`` packing holds coordinates in ``[0, 2**32)``; anything
    outside would wrap silently and alias distinct cells, so the range
    is enforced here with a :class:`ContractError` (always on — a wrong
    key is a wrong clustering, not a slow one).
    """
    coords = np.ascontiguousarray(coords)
    if coords.size and (
        int(coords.min()) < 0 or int(coords.max()) > _KEY_COORD_MAX
    ):
        raise ContractError(
            f"coords must lie in [0, {_KEY_COORD_MAX}] to fit the uint32 "
            f"key packing (observed range [{int(coords.min())}, "
            f"{int(coords.max())}]); Counting-trees support "
            f"n_resolutions <= {MAX_RESOLUTIONS}"
        )
    # int64 -> >u4 narrows on purpose: the range guard above makes the
    # cast lossless for every representable cell coordinate.
    big_endian = np.ascontiguousarray(coords.astype(">u4"))
    width = big_endian.shape[1] * big_endian.dtype.itemsize
    return big_endian.view(np.dtype((np.void, width))).ravel()


@dataclass
class Level:
    """One resolution level of the Counting-tree.

    Attributes
    ----------
    h:
        Level number; cells have side ``1 / 2**h``.
    coords:
        ``(m, d)`` integer cell coordinates (``floor(x * 2**h)``).
    n:
        ``(m,)`` point count per cell.
    half_counts:
        ``(m, d)`` half-space counts (the paper's ``P[]``).
    used:
        ``(m,)`` the ``usedCell`` flags.
    """

    h: int
    coords: IntArray
    n: IntArray
    half_counts: IntArray
    used: BoolArray
    _sorted_keys: AnyArray | None = field(default=None, repr=False)
    _sort_order: IntArray | None = field(default=None, repr=False)
    _axis0_sorted: IntArray | None = field(default=None, repr=False)
    _soa: LevelSoA | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._sorted_keys is None:
            keys = void_keys(self.coords)
            self._sort_order = np.argsort(keys)
            self._sorted_keys = keys[self._sort_order]
        assert self._sort_order is not None

    @classmethod
    def from_key_sorted(
        cls,
        h: int,
        coords: IntArray,
        n: IntArray,
        half_counts: IntArray,
        keys: AnyArray | None = None,
        used: BoolArray | None = None,
    ) -> "Level":
        """Wrap arrays already in canonical key order as a ``Level``.

        The lookup index is the identity permutation, so no argsort (and
        no copy of ``coords``) happens; when ``keys`` is supplied — e.g.
        the packed keys persisted inside a model file, possibly a
        read-only memmap — not even the key repacking runs, which is
        what keeps a memmap-backed serving tree near-zero-copy.  Rows
        out of key order would silently corrupt every lookup, so
        callers must hold the canonical-order invariant (every tree
        builder and the model store do).
        """
        m = int(coords.shape[0])
        return cls(
            h=h,
            coords=coords,
            n=n,
            half_counts=half_counts,
            used=(
                used
                if used is not None
                else np.zeros(m, dtype=bool)
            ),
            _sorted_keys=keys if keys is not None else void_keys(coords),
            _sort_order=np.arange(m, dtype=np.int64),
        )

    @property
    def n_cells(self) -> int:
        """Number of non-empty cells stored at this level."""
        return int(self.coords.shape[0])

    @property
    def side(self) -> float:
        """Cell side length ``ξ_h = 1 / 2**h``."""
        return 1.0 / (1 << self.h)

    def row_of(self, coords: IntArray) -> int:
        """Row index of the cell at ``coords``, or ``-1`` if empty."""
        rows = self.rows_of(np.asarray(coords).reshape(1, -1))
        return int(rows[0])

    def rows_of(self, coords: IntArray) -> IntArray:
        """Vectorised cell lookup: one row index (or -1) per query row."""
        coords = np.asarray(coords)
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        assert self._sorted_keys is not None and self._sort_order is not None
        queries = void_keys(coords)
        positions = np.searchsorted(self._sorted_keys, queries)
        positions = np.minimum(positions, self._sorted_keys.shape[0] - 1)
        found = self._sorted_keys[positions] == queries
        rows = np.where(found, self._sort_order[positions], -1)
        return rows.astype(np.int64)

    def axis0_in_key_order(self) -> IntArray:
        """Axis-0 coordinates in sorted-key order (cached).

        The key order is lexicographic, so this column is
        non-decreasing; ``np.searchsorted`` on it bounds the rows whose
        axis-0 coordinate falls in a range — the index the incremental
        β-cluster exclusion uses to avoid full-level scans.
        """
        if self._axis0_sorted is None:
            assert self._sort_order is not None
            self._axis0_sorted = np.ascontiguousarray(
                self.coords[self._sort_order, 0]
            )
        return self._axis0_sorted

    def soa(self) -> LevelSoA:
        """Key-sorted structure-of-arrays kernel view of this level.

        Built lazily and cached; the level's own arrays are aliased
        without copies when they are already in key order (true for
        every tree builder in the package).
        """
        from repro.core.kernels.soa import level_soa

        return level_soa(self)

    def count_at(self, coords: IntArray) -> int:
        """Point count of the cell at ``coords`` (0 for empty cells)."""
        row = self.row_of(coords)
        return int(self.n[row]) if row >= 0 else 0

    def neighbor_rows(self, row: int, axis: int) -> tuple[int, int]:
        """Rows of the lower/upper face neighbours along ``axis`` (-1 if empty).

        Covers both the paper's *internal* and *external* neighbours:
        the hash index does not care whether the neighbour lives in the
        same tree node or a sibling node.
        """
        coords = self.coords[row].copy()
        original = coords[axis]
        lower = -1
        if original > 0:
            coords[axis] = original - 1
            lower = self.row_of(coords)
        upper = -1
        if original < (1 << self.h) - 1:
            coords[axis] = original + 1
            upper = self.row_of(coords)
        return lower, upper

    def bounds(self, row: int) -> tuple[FloatArray, FloatArray]:
        """Lower/upper bounds ``(l_j, u_j)`` of the cell in data space."""
        lower = self.coords[row] * self.side
        return lower, lower + self.side


class CountingTree:
    """Multi-resolution grid counts over a dataset in ``[0, 1)^d``.

    Parameters
    ----------
    points:
        Array of shape ``(η, d)`` with values in ``[0, 1)``.
    n_resolutions:
        The paper's ``H``; levels ``1 .. H-1`` are materialised (level 0
        is the root hyper-cube, kept implicitly).  Must be ≥ 3.
    n_jobs:
        Worker count for the sharded build.  ``None`` (default) reads
        ``REPRO_JOBS`` and shards only when the dataset is large enough
        to amortise the process fan-out (``SHARD_MIN_POINTS``); an
        explicit value ≥ 2 always shards.  The sharded build reduces
        per-shard cell aggregates in deterministic shard order and is
        bit-identical to the serial build.

    Notes
    -----
    Time ``O(η d + cells·H·d)`` — the η points are touched exactly once
    (binning plus one sort at the finest half-resolution); every coarser
    level aggregates the previous level's at-most-η cells.  Space
    ``O(H η d)``, matching Algorithm 1's stated complexity.
    """

    def __init__(
        self,
        points: FloatArray,
        n_resolutions: int = 4,
        n_jobs: int | None = None,
    ):
        points = np.asarray(points, dtype=np.float64)
        check_array("points", points, dtype=np.float64, ndim=2, unit_box=True)
        if points.shape[0] == 0:
            raise ValueError("cannot build a Counting-tree over zero points")
        if n_resolutions < MIN_RESOLUTIONS:
            raise ValueError(f"n_resolutions must be >= {MIN_RESOLUTIONS}")
        if n_resolutions > MAX_RESOLUTIONS:
            raise ContractError(
                f"n_resolutions must be <= {MAX_RESOLUTIONS}: level "
                f"coordinates reach 2**n_resolutions - 1 and must fit "
                f"the uint32 cell-key packing"
            )
        if n_jobs is not None and n_jobs < 1:
            raise ValueError("n_jobs must be a positive worker count")

        self._n_points, self._d = points.shape
        self._H = int(n_resolutions)

        with obs.span("tree.build"):
            if n_jobs is not None:
                jobs = n_jobs
            elif multiprocessing.parent_process() is None:
                jobs = env.jobs_from_env()
            else:
                # Already inside a worker process (e.g. an experiment
                # cell): never nest a process pool implicitly.
                jobs = 1
            shard = jobs > 1 and (
                n_jobs is not None or self._n_points >= SHARD_MIN_POINTS
            )
            if shard:
                from repro.core.streaming import sharded_levels

                self._levels = sharded_levels(points, self._H, jobs)
            else:
                base = bin_points(points, self._H)
                self._levels = aggregate_levels(base, self._H)

    @property
    def n_resolutions(self) -> int:
        """The paper's ``H``."""
        return self._H

    @property
    def dimensionality(self) -> int:
        """Embedding dimensionality ``d``."""
        return self._d

    @property
    def n_points(self) -> int:
        """Number of points counted (``η``)."""
        return self._n_points

    @property
    def levels(self) -> range:
        """Materialised level numbers (``1 .. H-1``)."""
        return range(1, self._H)

    def level(self, h: int) -> Level:
        """Return level ``h`` (raises ``KeyError`` for level 0 or ≥ H)."""
        return self._levels[h]

    def parent_row(self, h: int, row: int) -> int:
        """Row index (at level ``h-1``) of the parent of cell ``row`` at level ``h``."""
        if h <= 1:
            raise ValueError("level-1 cells have the implicit root as parent")
        parent_coords = self.level(h).coords[row] >> 1
        parent = self.level(h - 1).row_of(parent_coords)
        if parent < 0:
            raise RuntimeError("corrupt tree: populated cell with empty parent")
        return parent

    def loc_bits(self, h: int, row: int) -> np.ndarray:
        """The cell's relative position ``loc`` inside its parent (d bits)."""
        return (self.level(h).coords[row] & 1).astype(np.int64)

    def total_cells(self) -> int:
        """Total number of stored cells, for memory accounting."""
        return sum(level.n_cells for level in self._levels.values())


def bin_points(points: FloatArray, n_resolutions: int) -> IntArray:
    """Integer coordinates at the finest half-resolution ``2^H``.

    Every coarser level (and every half-space bit) is a right shift of
    these coordinates.
    """
    base = np.floor(points * (1 << n_resolutions)).astype(np.int64)
    np.clip(base, 0, (1 << n_resolutions) - 1, out=base)
    return base


LevelArrays = tuple[IntArray, IntArray, IntArray]
"""One level's structure-of-arrays cell aggregate: key-sorted
``(coords, counts, half_counts)``.  The canonical exchange format
between the builders — the streaming store, the shard workers and the
merge all speak it."""


def level_arrays(base: IntArray, n_resolutions: int) -> dict[int, LevelArrays]:
    """Per-level SoA cell aggregates from binned coordinates (pure).

    The η points are grouped into cells once, at half-resolution
    ``2^H``; level ``H-1`` down to ``1`` are then derived from the
    next-finer *cells* — right-shift the coordinates, sum counts over
    unique parents, and credit the count to ``half_counts[j]`` where
    the finer coordinate's parity along ``e_j`` is even (the finer
    cell sits in the lower half of its parent).  Every ``np.unique``
    after the first sorts at most ``cells`` rows, not ``η``, so the
    per-point work is one binning pass plus one sort.

    Grouping sorts :func:`void_keys` (an index argsort over packed
    big-endian keys) instead of ``np.unique(axis=0)`` (a payload sort
    of wide void rows), and the resulting numeric-lexicographic cell
    order is canonical: any split of the points into chunks yields,
    after :func:`merge_level_arrays`, element-identical arrays.  This
    function is deliberately free of observability and environment
    access — it is the body shard workers run, and workers must be
    pure.
    """
    fine_coords, order, starts, _ = _group_rows(base)
    fine_counts = np.diff(np.append(starts, base.shape[0]))

    arrays: dict[int, LevelArrays] = {}
    for h in range(n_resolutions - 1, 0, -1):
        cells, order, starts, _ = _group_rows(fine_coords >> 1)
        counts = np.add.reduceat(fine_counts[order], starts)
        # A finer cell sits in the lower half of its parent along e_j
        # exactly when its coordinate's parity along e_j is even.
        in_lower_half = np.where(
            (fine_coords[order] & 1) == 0, fine_counts[order][:, None], 0
        )
        half_counts = np.add.reduceat(in_lower_half, starts, axis=0)
        arrays[h] = (cells, counts, half_counts)
        fine_coords, fine_counts = cells, counts
    return {h: arrays[h] for h in range(1, n_resolutions)}


def merge_level_arrays(left: LevelArrays, right: LevelArrays) -> LevelArrays:
    """Key-grouped sum of two SoA aggregates of the same level (pure).

    Cell counts and half-space counts are sums over points, so merging
    two disjoint point sets' aggregates is an integer sum grouped by
    cell key; the output is again in canonical key order.  The merge is
    associative and commutative, which is what lets the sharded build
    reduce partial trees in deterministic shard order regardless of
    worker completion order.
    """
    coords = np.concatenate([left[0], right[0]])
    counts = np.concatenate([left[1], right[1]])
    halves = np.concatenate([left[2], right[2]])
    cells, order, starts, _ = _group_rows(coords)
    merged_counts = np.add.reduceat(counts[order], starts)
    merged_halves = np.add.reduceat(halves[order], starts, axis=0)
    return cells, merged_counts, merged_halves


def level_from_arrays(h: int, arrays: LevelArrays) -> Level:
    """Wrap one key-sorted SoA aggregate as a ``Level``.

    The rows are already in key order, so the lookup index is the
    identity permutation and no argsort happens.
    """
    cells, counts, halves = arrays
    return Level.from_key_sorted(
        h,
        np.ascontiguousarray(cells),
        np.ascontiguousarray(counts),
        np.ascontiguousarray(halves),
    )


def aggregate_levels(base: IntArray, n_resolutions: int) -> dict[int, Level]:
    """Build all levels from one binning pass, coarse levels by aggregation.

    Thin observability wrapper over :func:`level_arrays` — cell order,
    counts and half-space counts are element-identical to
    :func:`_reference_build`; the property tests assert it.
    """
    arrays = level_arrays(base, n_resolutions)
    levels: dict[int, Level] = {}
    for h in range(1, n_resolutions):
        levels[h] = level_from_arrays(h, arrays[h])
        obs.incr(f"tree.level{h}.cells", levels[h].n_cells)
    return levels


def _group_rows(
    coords: IntArray,
) -> tuple[IntArray, IntArray, IntArray, AnyArray]:
    """Group identical coordinate rows by sorting their packed keys.

    Returns ``(cells, order, starts, cell_keys)``: the unique rows in
    numeric-lexicographic order, the permutation sorting the input into
    that order, the start offset of each group within the permuted
    input, and the void key of each unique row (sorted — reusable as a
    ready-made ``Level`` lookup index).
    """
    keys = void_keys(coords)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    if sorted_keys.shape[0] > 1:
        changed = sorted_keys[1:] != sorted_keys[:-1]
        starts = np.concatenate(([0], np.flatnonzero(changed) + 1))
    else:
        starts = np.zeros(sorted_keys.shape[0], dtype=np.int64)
    cells = np.ascontiguousarray(coords[order[starts]])
    return cells, order, starts, sorted_keys[starts]


def _reference_build(base: IntArray, h: int, n_resolutions: int, d: int) -> Level:
    """The seed per-level rescan build of one level (kept as reference).

    Re-derives level ``h`` straight from the η per-point coordinates —
    one ``np.unique`` sort of all points per level.  No longer used by
    :class:`CountingTree` itself; the equivalence tests and the perf
    baseline compare :func:`aggregate_levels` against it.
    """
    shift = n_resolutions - h
    coords_h = base >> shift
    cells, inverse = np.unique(coords_h, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    counts = np.bincount(inverse, minlength=cells.shape[0]).astype(np.int64)

    # Half-space bit: the next-finer coordinate's parity along each
    # axis; bit 0 means the point is in the lower half of this cell.
    half_bits = (base >> (shift - 1)) & 1
    half_counts = np.zeros((cells.shape[0], d), dtype=np.int64)
    np.add.at(half_counts, inverse, (half_bits == 0).astype(np.int64))

    return Level(
        h=h,
        coords=np.ascontiguousarray(cells),
        n=counts,
        half_counts=half_counts,
        used=np.zeros(cells.shape[0], dtype=bool),
    )


def reference_levels(
    base: IntArray, n_resolutions: int, d: int
) -> dict[int, Level]:
    """All levels via the seed per-level rescan (reference path)."""
    return {
        h: _reference_build(base, h, n_resolutions, d)
        for h in range(1, n_resolutions)
    }


def tree_from_levels(
    levels: dict[int, Level], d: int, n_points: int, n_resolutions: int
) -> CountingTree:
    """Assemble a CountingTree around pre-built levels.

    Used by the streaming builder and by the perf baseline's reference
    path; callers guarantee the levels are mutually consistent.
    """
    tree = CountingTree.__new__(CountingTree)
    tree._n_points = n_points
    tree._d = d
    tree._H = n_resolutions
    tree._levels = levels
    return tree
