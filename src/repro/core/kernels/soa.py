"""Structure-of-arrays kernel view of one Counting-tree level.

The kernels operate on flat, contiguous buffers in *key order* — the
lexicographic order of the packed cell keys that every builder
(:func:`~repro.core.counting_tree.aggregate_levels`, the streaming SoA
store, the reference rescan) already produces.  A
:class:`LevelSoA` is that view: ``coords``/``counts``/``half_counts``
rows sorted by key, plus ``order`` mapping each sorted position back to
the level's row index so kernel results can be scattered into row
order.  When the level is already stored in key order (the common case
after the SoA refactor) the view aliases the level's arrays and the
scatter is the identity — no copies on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.types import AnyArray, IntArray

if TYPE_CHECKING:  # import edge kept type-only to avoid a cycle
    from repro.core.counting_tree import Level


@dataclass(frozen=True)
class LevelSoA:
    """Key-sorted, C-contiguous buffers of one level's cell store.

    Attributes
    ----------
    h:
        Level number; coordinates lie in ``[0, 2**h)``.
    coords:
        ``(m, d)`` int64 cell coordinates, rows in key order.
    counts:
        ``(m,)`` int64 point count per cell, in key order.
    half_counts:
        ``(m, d)`` int64 half-space counts, in key order.
    order:
        ``(m,)`` int64 level-row index of each sorted position, or
        ``None`` when the level is already stored in key order (the
        scatter is then the identity).
    keys:
        The sorted packed void keys (kept for the numpy backend's
        ``searchsorted`` joins; compiled backends search ``coords``
        rows directly).
    """

    h: int
    coords: IntArray
    counts: IntArray
    half_counts: IntArray
    order: IntArray | None
    keys: AnyArray

    @property
    def n_cells(self) -> int:
        return int(self.coords.shape[0])

    @property
    def limit(self) -> int:
        """Largest admissible coordinate at this level (``2**h - 1``)."""
        return (1 << self.h) - 1

    def to_row_order(self, values: AnyArray) -> AnyArray:
        """Scatter kernel output (key order) back into level-row order."""
        if self.order is None:
            return values
        out = np.empty_like(values)
        out[self.order] = values
        return out

    def rows_of_positions(self, positions: IntArray) -> IntArray:
        """Level-row indices of sorted positions."""
        if self.order is None:
            return positions
        result: IntArray = self.order[positions]
        return result

    def position_of_row(self, row: int) -> int:
        """Sorted position of one level-row index."""
        if self.order is None:
            return row
        return int(np.flatnonzero(self.order == row)[0])


def level_soa(level: Level) -> LevelSoA:
    """The (cached) kernel view of a ``Level``.

    Called through ``Level.soa()``; defined here so the runtime import
    edge points from ``counting_tree`` into the kernels package only.
    """
    cached = level._soa
    if cached is not None:
        return cached

    sort_order = level._sort_order
    keys = level._sorted_keys
    assert sort_order is not None and keys is not None
    m = int(sort_order.shape[0])
    if bool(np.array_equal(sort_order, np.arange(m, dtype=np.int64))):
        view = LevelSoA(
            h=int(level.h),
            coords=np.ascontiguousarray(level.coords),
            counts=np.ascontiguousarray(level.n),
            half_counts=np.ascontiguousarray(level.half_counts),
            order=None,
            keys=keys,
        )
    else:
        view = LevelSoA(
            h=int(level.h),
            coords=np.ascontiguousarray(level.coords[sort_order]),
            counts=np.ascontiguousarray(level.n[sort_order]),
            half_counts=np.ascontiguousarray(level.half_counts[sort_order]),
            order=np.ascontiguousarray(sort_order),
            keys=keys,
        )
    level._soa = view
    return view
