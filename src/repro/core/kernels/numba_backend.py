"""The numba backend: ``@njit(cache=True)`` over the shared loop bodies.

numba is an optional extra (``pip install repro[speed]``); this module
is the only place in the package allowed to import it (repro-lint rule
R010).  Loading jits the kernel bodies from
:mod:`repro.core.kernels.loops` exactly as written — the interpreted
and compiled semantics are one source of truth — and returns plain
callables over :class:`~repro.core.kernels.soa.LevelSoA` views.
``cache=True`` persists the compiled artefacts next to the module so
the JIT warm-up is paid once per machine, not once per process; the
first-call warm-up time is still measured and recorded by
``scripts/perf_baseline.py``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.kernels import loops
from repro.core.kernels.soa import LevelSoA
from repro.types import FloatArray, IntArray

NAME = "numba"
COMPILED = True

_LOADED: dict[str, Any] | None = None


def load() -> dict[str, Any]:
    """Jit the loop bodies; raises ``ImportError`` when numba is absent.

    The result is cached: jitting is idempotent per process, and
    ``binom_thetas`` resolves its ``binom_sf`` call through the loops
    module's namespace, which is rebound to the jitted dispatcher so
    the nested call stays inside nopython mode.
    """
    global _LOADED
    if _LOADED is not None:
        return _LOADED

    import numba

    jit = numba.njit(cache=True)
    # binom_thetas calls binom_sf as a module global; the callee must
    # already be a dispatcher when the caller compiles.  The rebind is
    # observable from Python but semantically identical.
    if not hasattr(loops.binom_sf, "py_func"):
        loops.binom_sf = jit(loops.binom_sf)
    compiled_responses = jit(loops.level_responses)
    compiled_box_scan = jit(loops.box_scan)
    compiled_six_region = jit(loops.six_region)
    compiled_binom_thetas = jit(loops.binom_thetas)

    def level_responses(soa: LevelSoA) -> IntArray:
        result: IntArray = compiled_responses(soa.coords, soa.counts, soa.limit)
        return result

    def box_scan(
        soa: LevelSoA, lo: IntArray, hi: IntArray, start: int, stop: int
    ) -> IntArray:
        result: IntArray = compiled_box_scan(soa.coords, lo, hi, start, stop)
        return result

    def six_region(
        soa: LevelSoA, position: int, bits: IntArray
    ) -> tuple[IntArray, IntArray]:
        center, total = compiled_six_region(
            soa.coords,
            soa.counts,
            soa.half_counts,
            position,
            np.ascontiguousarray(bits, dtype=np.int64),
            soa.limit,
        )
        return center, total

    def binom_thetas(
        totals: IntArray, probs: FloatArray, alpha: float
    ) -> tuple[IntArray, IntArray]:
        thetas, flags = compiled_binom_thetas(
            np.ascontiguousarray(totals, dtype=np.int64),
            np.ascontiguousarray(probs, dtype=np.float64),
            float(alpha),
        )
        return thetas, flags

    _LOADED = {
        "name": NAME,
        "compiled": COMPILED,
        "version": str(numba.__version__),
        "level_responses": level_responses,
        "box_scan": box_scan,
        "six_region": six_region,
        "binom_thetas": binom_thetas,
    }
    return _LOADED
