"""Pluggable compute backends for the MrCC hot-path kernels.

The three measured bottlenecks of a fit — the Laplacian convolution
responses, the six-region binomial significance test, and the β-cluster
box-exclusion scan — run through one of several interchangeable
backends, all operating on the structure-of-arrays level views of
:mod:`repro.core.kernels.soa`:

``numpy``
    The vectorised reference implementation and the reproduction's
    **bit-identity oracle** (:mod:`repro.core.kernels.reference`).
    Always available; always correct.
``numba``
    ``@njit(cache=True)`` over the loop bodies in
    :mod:`repro.core.kernels.loops`; available when the optional
    ``[speed]`` extra is installed.
``cext``
    The same loop bodies as C, compiled on first use with the system
    C compiler (:mod:`repro.core.kernels.cext_backend`).

Selection is driven by ``REPRO_BACKEND`` (parsed by
:func:`repro.env.backend_from_env`): ``auto`` — the default — picks the
first available of numba, cext, numpy; naming a backend demands exactly
that one and raises a :class:`BackendUnavailableError` carrying the
probe's reason when it cannot load.  The oracle policy is structural:
compiled backends either compute integer quantities exactly (responses,
region counts, scans) or flag borderline binomial tails back to the
scipy oracle, so every backend yields bit-identical clusterings and
obs counter streams — the cross-backend equivalence suite and the
golden traces assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro import env
from repro.core.kernels import cext_backend, numba_backend, reference
from repro.core.kernels.soa import LevelSoA, level_soa
from repro.types import FloatArray, IntArray

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "LevelSoA",
    "active_backend",
    "available_backends",
    "backend_info",
    "get_backend",
    "level_soa",
    "reset_backends",
    "warm_up",
]


class BackendUnavailableError(RuntimeError):
    """A named backend cannot load on this machine (reason included)."""


class _SixRegionKernel(Protocol):
    def __call__(
        self, soa: LevelSoA, position: int, bits: IntArray
    ) -> tuple[IntArray, IntArray]: ...


class _BinomThetasKernel(Protocol):
    def __call__(
        self, totals: IntArray, probs: FloatArray, alpha: float
    ) -> tuple[IntArray, IntArray]: ...


@dataclass(frozen=True)
class Backend:
    """One loaded backend: metadata plus the four kernel entry points."""

    name: str
    compiled: bool
    version: str
    level_responses: Callable[[LevelSoA], IntArray]
    box_scan: Callable[[LevelSoA, IntArray, IntArray, int, int], IntArray]
    six_region: _SixRegionKernel
    binom_thetas: _BinomThetasKernel


def _load_numpy() -> Backend:
    return Backend(
        name=reference.NAME,
        compiled=reference.COMPILED,
        version=reference.version(),
        level_responses=reference.level_responses,
        box_scan=reference.box_scan,
        six_region=reference.six_region,
        binom_thetas=reference.binom_thetas,
    )


def _load_optional(loader: Callable[[], dict[str, object]]) -> Backend:
    spec = loader()
    return Backend(**spec)  # type: ignore[arg-type]


_LOADERS: dict[str, Callable[[], Backend]] = {
    "numpy": _load_numpy,
    "numba": lambda: _load_optional(numba_backend.load),
    "cext": lambda: _load_optional(cext_backend.load),
}

_AUTO_ORDER = ("numba", "cext", "numpy")

_loaded: dict[str, Backend] = {}
_probe_failures: dict[str, str] = {}
_active: tuple[str, Backend] | None = None


def get_backend(name: str) -> Backend:
    """Load backend ``name``, raising with the probe reason on failure."""
    if name in _loaded:
        return _loaded[name]
    if name not in _LOADERS:
        raise BackendUnavailableError(
            f"unknown backend {name!r}; expected one of "
            f"{'/'.join(sorted(_LOADERS))}"
        )
    if name in _probe_failures:
        raise BackendUnavailableError(
            f"backend {name!r} is unavailable: {_probe_failures[name]}"
        )
    try:
        backend = _LOADERS[name]()
    except ImportError as error:
        _probe_failures[name] = str(error) or "import failed"
        raise BackendUnavailableError(
            f"backend {name!r} is unavailable: {_probe_failures[name]}"
        ) from error
    _loaded[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of the backends that load on this machine, probe order."""
    names = []
    for name in _AUTO_ORDER:
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def active_backend() -> Backend:
    """The backend the ``REPRO_BACKEND`` knob selects (cached).

    ``auto`` degrades along numba → cext → numpy; an explicit name must
    load or the error names the backend and the reason.  The resolution
    is cached per requested value, so flipping the environment variable
    mid-process takes effect on the next kernel call.
    """
    global _active
    requested = env.backend_from_env()
    if _active is not None and _active[0] == requested:
        return _active[1]
    if requested == "auto":
        backend: Backend | None = None
        for name in _AUTO_ORDER:
            try:
                backend = get_backend(name)
            except BackendUnavailableError:
                continue
            break
        assert backend is not None  # numpy always loads
    else:
        backend = get_backend(requested)
    _active = (requested, backend)
    return backend


def reset_backends() -> None:
    """Forget probe results and the active selection (test hook)."""
    global _active
    _active = None
    _loaded.clear()
    _probe_failures.clear()


def backend_info() -> dict[str, object]:
    """Metadata about the active backend, for benchmarks and traces."""
    backend = active_backend()
    return {
        "requested": env.backend_from_env(),
        "name": backend.name,
        "compiled": backend.compiled,
        "version": backend.version,
        "available": list(available_backends()),
    }


def warm_up(backend: Backend) -> None:
    """Exercise every kernel once on tiny inputs (JIT warm-up).

    Benchmarks call this before timing so one-off compilation cost is
    reported separately instead of polluting the measured runs.
    """
    from repro.core.counting_tree import void_keys

    coords = np.array([[0, 0], [0, 1], [1, 1]], dtype=np.int64)
    counts = np.array([2, 3, 4], dtype=np.int64)
    half = np.array([[1, 1], [2, 1], [2, 2]], dtype=np.int64)
    soa = LevelSoA(
        h=1, coords=coords, counts=counts, half_counts=half,
        order=None, keys=void_keys(coords),
    )
    backend.level_responses(soa)
    backend.box_scan(
        soa,
        np.zeros(2, dtype=np.int64),
        np.ones(2, dtype=np.int64),
        0,
        3,
    )
    backend.six_region(soa, 1, np.array([0, 1], dtype=np.int64))
    backend.binom_thetas(
        np.array([30, 0], dtype=np.int64),
        np.array([1.0 / 6.0, 1.0 / 6.0], dtype=np.float64),
        1e-10,
    )
