"""Loop-form kernel bodies shared by the compiled backends.

Every function here is written in the restricted, ``nopython``-jittable
dialect — flat ``for`` loops over contiguous int64/float64 buffers, no
helper calls, no Python objects — so the numba backend can compile them
unchanged (``numba.njit(cache=True)`` over these exact functions) while
the test suite exercises the *same* bodies interpreted, keeping the
compiled semantics covered even on machines without numba.  The C
backend mirrors these algorithms statement for statement.

Three structural facts the kernels exploit:

* level rows arrive in lexicographic key order, so shifting one
  coordinate column by ±1 preserves the order — face-neighbour joins
  are linear merges, not per-probe binary searches;
* a β-cluster box admits, per axis, one contiguous integer coordinate
  interval ``[lo, hi]``, so the exclusion scan is a flat interval test;
* the binomial tail ``P(X > t)`` is a monotone function of ``t``, so
  the critical value is a binary search over stable log-space tail
  sums, with a relative guard band that routes borderline cases back
  to the scipy oracle (see :func:`binom_thetas`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.types import FloatArray, IntArray

SF_GUARD_BAND = 1e-6
"""Relative distance from ``alpha`` below which a tail sum is treated
as borderline and the axis flagged for scipy adjudication.  The tail
summation's relative error is dominated by the ``lgamma`` ulp error of
the log-space first term, which grows with ``n`` — measured ~1e-10 at
``n`` ≈ 2·10³ and bounded by ~1e-8 at the largest tree populations
(``n`` ≈ 10⁶) — so the band keeps two orders of magnitude of margin:
a decision the kernel *keeps* can never disagree with the oracle,
while the flag probability (tail sums landing within 1e-6 of ``alpha``)
stays negligible."""

_SF_TOLERANCE = 1e-18
"""Early-termination threshold for the geometric tail remainder."""


def level_responses(coords: IntArray, counts: IntArray, limit: int) -> IntArray:
    """Laplacian face-mask response of every cell, in key order.

    ``response(c) = 2d·n(c) − Σ_j [n(c−e_j) + n(c+e_j)]`` with empty or
    out-of-grid neighbours contributing zero.  The probe rows
    (coordinates shifted by ``+1`` along ``axis``) are themselves in
    key order, so one forward merge against the cell rows resolves all
    neighbour lookups in ``O(m·d)`` comparisons — and the face-neighbour
    relation is symmetric (``j = i + e_axis`` implies ``i = j −
    e_axis``), so that single ``+1`` merge per axis settles both
    deltas: each match debits ``counts[j]`` from ``responses[i]`` and
    ``counts[i]`` from ``responses[j]``.
    """
    m, d = coords.shape
    responses = np.empty(m, dtype=np.int64)
    for i in range(m):
        responses[i] = 2 * d * counts[i]
    for axis in range(d):
        j = 0
        for i in range(m):
            shifted = coords[i, axis] + 1
            if shifted > limit:
                continue
            # Advance the candidate cursor while row_j < probe_i.
            while j < m:
                comparison = 0
                for k in range(d):
                    b = coords[i, k]
                    if k == axis:
                        b = shifted
                    a = coords[j, k]
                    if a < b:
                        comparison = -1
                        break
                    if a > b:
                        comparison = 1
                        break
                if comparison < 0:
                    j += 1
                else:
                    break
            if j >= m:
                break
            equal = True
            for k in range(d):
                b = coords[i, k]
                if k == axis:
                    b = shifted
                if coords[j, k] != b:
                    equal = False
                    break
            if equal:
                responses[i] -= counts[j]
                responses[j] -= counts[i]
    return responses


def box_scan(
    coords: IntArray, lo: IntArray, hi: IntArray, start: int, stop: int
) -> IntArray:
    """Positions in ``[start, stop)`` whose cell lies inside the box.

    ``lo``/``hi`` are the per-axis closed integer coordinate intervals
    of one β-cluster box (non-binding axes span the whole grid); the
    caller has already bounded the candidate range over axis 0 via the
    key order.
    """
    m, d = coords.shape
    if stop > m:
        stop = m
    if start < 0:
        start = 0
    out = np.empty(stop - start if stop > start else 0, dtype=np.int64)
    found = 0
    for position in range(start, stop):
        inside = True
        for axis in range(d):
            c = coords[position, axis]
            if c < lo[axis] or c > hi[axis]:
                inside = False
                break
        if inside:
            out[found] = position
            found += 1
    return out[:found]


def six_region(
    coords: IntArray,
    counts: IntArray,
    half_counts: IntArray,
    position: int,
    bits: IntArray,
    limit: int,
) -> tuple[IntArray, IntArray]:
    """Six-region counts ``(cP_j, nP_j)`` around one parent cell.

    ``position`` indexes the pivot's *parent* cell in the parent
    level's key-ordered buffers; ``bits`` is the pivot's ``loc`` bit
    per axis.  Face neighbours are resolved with a lexicographic
    binary search over the coordinate rows (log m row compares, each
    early-exiting at the first differing column).
    """
    m, d = coords.shape
    center = np.empty(d, dtype=np.int64)
    total = np.empty(d, dtype=np.int64)
    parent_n = counts[position]
    for axis in range(d):
        neighbors = 0
        for delta in (-1, 1):
            target = coords[position, axis] + delta
            if target < 0 or target > limit:
                continue
            low = 0
            high = m
            while low < high:
                mid = (low + high) // 2
                comparison = 0
                for k in range(d):
                    b = coords[position, k]
                    if k == axis:
                        b = target
                    a = coords[mid, k]
                    if a < b:
                        comparison = -1
                        break
                    if a > b:
                        comparison = 1
                        break
                if comparison < 0:
                    low = mid + 1
                else:
                    high = mid
            if low < m:
                equal = True
                for k in range(d):
                    b = coords[position, k]
                    if k == axis:
                        b = target
                    if coords[low, k] != b:
                        equal = False
                        break
                if equal:
                    neighbors += counts[low]
        total[axis] = parent_n + neighbors
        half = half_counts[position, axis]
        if bits[axis] == 0:
            center[axis] = half
        else:
            center[axis] = parent_n - half
    return center, total


def binom_sf(n: int, p: float, t: int) -> float:
    """Upper tail ``P(X > t)`` for ``X ~ Binomial(n, p)``.

    Log-space first term plus a multiplicative recurrence over the
    remaining terms; terminates once the geometric remainder is below
    ``1e-18`` of the accumulated sum *and* the summation has passed the
    mode (before the mode terms still grow).  Exact at the boundaries.
    """
    if t < 0:
        return 1.0
    if t >= n:
        return 0.0
    q = 1.0 - p
    k = t + 1
    log_term = (
        math.lgamma(n + 1.0)
        - math.lgamma(k + 1.0)
        - math.lgamma(n - k + 1.0)
        + k * math.log(p)
        + (n - k) * math.log(q)
    )
    # Below exp(-708) the first term is subnormal and the recurrence
    # would propagate its truncated mantissa (relative error ~1e-6)
    # into every later term.  Left of the mode the sum is dominated by
    # the near-mode terms, so an underflowing start means the *left*
    # tail is negligible (< n·1e-300) and P(X > t) is 1.0 to the last
    # bit; right of the mode the whole upper tail is below 1e-300 and
    # only its absolute size (≈ 0) can matter to a caller.
    if log_term < -708.0 and k <= math.floor((n + 1) * p):
        return 1.0
    term = math.exp(log_term)
    total = term
    mean = n * p
    while k < n:
        term *= (n - k) * p / ((k + 1.0) * q)
        k += 1
        total += term
        if term <= total * _SF_TOLERANCE and k > mean:
            break
    return total


def binom_thetas(
    totals: IntArray, probs: FloatArray, alpha: float
) -> tuple[IntArray, IntArray]:
    """Critical values ``θ^α`` per axis, plus borderline flags.

    For each axis, the smallest integer ``t`` with
    ``P(X > t) <= alpha`` for ``X ~ Binomial(totals[j], probs[j])`` —
    the same contract as the scipy-backed
    :func:`repro.core.hypothesis_test.critical_values`.  The returned
    ``flags`` mark axes whose tail sum came within ``SF_GUARD_BAND``
    (relative) of ``alpha`` at either side of the cut; the caller must
    recompute those axes with the scipy oracle so kernel decisions are
    bit-identical to the numpy backend by construction.
    """
    d = totals.shape[0]
    thetas = np.empty(d, dtype=np.int64)
    flags = np.zeros(d, dtype=np.uint8)
    for axis in range(d):
        n = int(totals[axis])
        p = float(probs[axis])
        if n <= 0:
            thetas[axis] = 0
            continue
        # sf is ≥ 1/2 at or below the median, which is within one of
        # n·p, so for small alpha the search can start just under the
        # mean without evaluating (and underflowing) the deep left tail.
        if alpha < 0.4:
            low = int(math.floor(n * p)) - 2
            if low < -1:
                low = -1
        else:
            low = -1
        high = n
        # Invariant: sf(low) > alpha >= sf(high).
        while high - low > 1:
            mid = (low + high) // 2
            if binom_sf(n, p, mid) <= alpha:
                high = mid
            else:
                low = mid
        thetas[axis] = high
        upper = binom_sf(n, p, high)
        lower = binom_sf(n, p, high - 1)
        if abs(upper - alpha) <= SF_GUARD_BAND * alpha:
            flags[axis] = 1
        if abs(lower - alpha) <= SF_GUARD_BAND * alpha:
            flags[axis] = 1
    return thetas, flags
