"""The numpy reference backend — the reproduction's bit-identity oracle.

Every kernel here is the vectorised numpy formulation the package ran
before the backend layer existed: integer arithmetic plus sorted-key
``searchsorted`` joins for the convolution and the six-region
neighbourhood, the interval test for the box-exclusion scan, and the
scipy binomial inverse survival function for the critical values.  The
compiled backends are validated against these functions — any
disagreement is a bug in the compiled path, never in this one.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.counting_tree import void_keys
from repro.core.kernels.soa import LevelSoA
from repro.types import FloatArray, IntArray

NAME = "numpy"
COMPILED = False


def version() -> str:
    """Version string recorded in benchmarks (the numpy release)."""
    return str(np.__version__)


def level_responses(soa: LevelSoA) -> IntArray:
    """Laplacian responses in key order (vectorised searchsorted joins)."""
    m, d = soa.coords.shape
    responses = (2 * d) * soa.counts.astype(np.int64)
    if m <= 1:
        return responses
    limit = soa.limit
    shifted = soa.coords.copy()
    for axis in range(d):
        column = soa.coords[:, axis]
        for delta in (-1, 1):
            shifted[:, axis] = column + delta
            valid = (shifted[:, axis] >= 0) & (shifted[:, axis] <= limit)
            if not np.any(valid):
                continue
            queries = void_keys(shifted[valid])
            positions = np.searchsorted(soa.keys, queries)
            positions = np.minimum(positions, m - 1)
            found = soa.keys[positions] == queries
            targets = np.flatnonzero(valid)[found]
            responses[targets] -= soa.counts[positions[found]]
        shifted[:, axis] = column
    return responses


def box_scan(
    soa: LevelSoA, lo: IntArray, hi: IntArray, start: int, stop: int
) -> IntArray:
    """Key-order positions within ``[start, stop)`` inside the box."""
    block = soa.coords[start:stop]
    if block.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    hit = np.all((block >= lo) & (block <= hi), axis=1)
    positions: IntArray = start + np.flatnonzero(hit)
    return positions


def six_region(
    soa: LevelSoA, position: int, bits: IntArray
) -> tuple[IntArray, IntArray]:
    """Six-region counts ``(cP_j, nP_j)``, all 2d probes in one join."""
    m, d = soa.coords.shape
    base = soa.coords[position]
    parent_n = int(soa.counts[position])
    probes = np.tile(base, (2 * d, 1))
    probe_axes = np.repeat(np.arange(d, dtype=np.int64), 2)
    deltas = np.tile(np.array([-1, 1], dtype=np.int64), d)
    probe_index = np.arange(2 * d, dtype=np.int64)
    probes[probe_index, probe_axes] += deltas
    shifted = probes[probe_index, probe_axes]
    valid = (shifted >= 0) & (shifted <= soa.limit)
    neighbors = np.zeros(2 * d, dtype=np.int64)
    if np.any(valid):
        queries = void_keys(probes[valid])
        positions = np.searchsorted(soa.keys, queries)
        positions = np.minimum(positions, m - 1)
        found = soa.keys[positions] == queries
        neighbors[np.flatnonzero(valid)[found]] = soa.counts[positions[found]]
    total = parent_n + neighbors[0::2] + neighbors[1::2]
    half = soa.half_counts[position]
    center = np.where(bits == 0, half, parent_n - half).astype(np.int64)
    return center, total.astype(np.int64)


def binom_thetas(
    totals: IntArray, probs: FloatArray, alpha: float
) -> tuple[IntArray, IntArray]:
    """Critical values via the scipy oracle; nothing is ever borderline."""
    totals = np.asarray(totals, dtype=np.int64)
    theta = stats.binom.isf(alpha, np.maximum(totals, 1), probs)
    theta = np.where(np.isnan(theta), totals, theta)
    thetas = np.where(totals == 0, 0, theta.astype(np.int64))
    return thetas, np.zeros(totals.shape[0], dtype=np.uint8)
