"""The cext backend: the loop kernels as C, built with the system cc.

A fallback compiled backend for machines without numba but with any C
compiler on ``PATH`` (gcc/cc/clang): the kernel bodies from
:mod:`repro.core.kernels.loops` are transliterated statement for
statement into C, compiled once into a content-addressed shared object
under the system temporary directory, and bound through :mod:`ctypes`.
Everything about the algorithms — the sorted merge joins, the
lexicographic binary search, the guard-banded binomial tail — is
identical to the loops module; only the executor differs.

Compilation failures of any kind (no compiler, sandboxed tmpdir,
unlinkable toolchain) make the backend report itself unavailable with
the captured reason; they never propagate to callers, because ``auto``
selection must degrade to numpy silently-but-observably.
"""

from __future__ import annotations

import ctypes
import hashlib
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.kernels.soa import LevelSoA
from repro.env import cext_sanitize_from_env
from repro.types import FloatArray, IntArray

NAME = "cext"
COMPILED = True

_BASE_CFLAGS = ("-O3", "-shared", "-fPIC", "-Wall", "-Wextra", "-Werror")
_SANITIZE_CFLAGS = ("-fsanitize=address,undefined", "-fno-omit-frame-pointer")

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

#define SF_TOLERANCE 1e-18
#define SF_GUARD_BAND 1e-6

/* Lexicographic compare of row j against row i with column `axis`
 * shifted by `delta`; early-exits at the first differing column. */
static int cmp_shifted(const int64_t *coords, int64_t d, int64_t j,
                       int64_t i, int64_t axis, int64_t delta) {
    for (int64_t k = 0; k < d; k++) {
        int64_t b = coords[i * d + k];
        if (k == axis) b += delta;
        int64_t a = coords[j * d + k];
        if (a < b) return -1;
        if (a > b) return 1;
    }
    return 0;
}

/* One +1 merge per axis settles both deltas: the face-neighbour
 * relation is symmetric, so a match debits both rows at once. */
void level_responses(const int64_t *coords, const int64_t *counts,
                     int64_t m, int64_t d, int64_t limit, int64_t *out) {
    for (int64_t i = 0; i < m; i++) out[i] = 2 * d * counts[i];
    for (int64_t axis = 0; axis < d; axis++) {
        int64_t j = 0;
        for (int64_t i = 0; i < m; i++) {
            int64_t shifted = coords[i * d + axis] + 1;
            if (shifted > limit) continue;
            while (j < m && cmp_shifted(coords, d, j, i, axis, 1) < 0)
                j++;
            if (j >= m) break;
            if (cmp_shifted(coords, d, j, i, axis, 1) == 0) {
                out[i] -= counts[j];
                out[j] -= counts[i];
            }
        }
    }
}

int64_t box_scan(const int64_t *coords, int64_t m, int64_t d,
                 const int64_t *lo, const int64_t *hi,
                 int64_t start, int64_t stop, int64_t *out) {
    if (stop > m) stop = m;
    if (start < 0) start = 0;
    int64_t found = 0;
    for (int64_t position = start; position < stop; position++) {
        int inside = 1;
        for (int64_t axis = 0; axis < d; axis++) {
            int64_t c = coords[position * d + axis];
            if (c < lo[axis] || c > hi[axis]) { inside = 0; break; }
        }
        if (inside) out[found++] = position;
    }
    return found;
}

/* Lower-bound lexicographic binary search for row `position` with
 * column `axis` replaced by `target`; returns the row index or -1. */
static int64_t find_shifted(const int64_t *coords, int64_t m, int64_t d,
                            int64_t position, int64_t axis, int64_t target) {
    int64_t low = 0, high = m;
    while (low < high) {
        int64_t mid = (low + high) / 2;
        int cmp = 0;
        for (int64_t k = 0; k < d; k++) {
            int64_t b = coords[position * d + k];
            if (k == axis) b = target;
            int64_t a = coords[mid * d + k];
            if (a < b) { cmp = -1; break; }
            if (a > b) { cmp = 1; break; }
        }
        if (cmp < 0) low = mid + 1; else high = mid;
    }
    if (low >= m) return -1;
    for (int64_t k = 0; k < d; k++) {
        int64_t b = coords[position * d + k];
        if (k == axis) b = target;
        if (coords[low * d + k] != b) return -1;
    }
    return low;
}

void six_region(const int64_t *coords, const int64_t *counts,
                const int64_t *half_counts, int64_t m, int64_t d,
                int64_t limit, int64_t position, const int64_t *bits,
                int64_t *center, int64_t *total) {
    int64_t parent_n = counts[position];
    for (int64_t axis = 0; axis < d; axis++) {
        int64_t neighbors = 0;
        for (int64_t delta = -1; delta <= 1; delta += 2) {
            int64_t target = coords[position * d + axis] + delta;
            if (target < 0 || target > limit) continue;
            int64_t row = find_shifted(coords, m, d, position, axis, target);
            if (row >= 0) neighbors += counts[row];
        }
        total[axis] = parent_n + neighbors;
        int64_t half = half_counts[position * d + axis];
        center[axis] = (bits[axis] == 0) ? half : parent_n - half;
    }
}

/* Upper tail P(X > t) for X ~ Binomial(n, p): log-space first term
 * plus multiplicative recurrence, terminating past the mode. */
static double binom_sf(int64_t n, double p, int64_t t) {
    if (t < 0) return 1.0;
    if (t >= n) return 0.0;
    double q = 1.0 - p;
    int64_t k = t + 1;
    double log_term = lgamma((double)n + 1.0) - lgamma((double)k + 1.0)
                    - lgamma((double)(n - k) + 1.0)
                    + (double)k * log(p) + (double)(n - k) * log(q);
    /* A subnormal first term would poison the recurrence (relative
     * error ~1e-6); left of the mode that means the left tail is
     * negligible and the upper tail is 1.0 to the last bit. */
    if (log_term < -708.0 && (double)k <= floor(((double)n + 1.0) * p))
        return 1.0;
    double term = exp(log_term);
    double total = term;
    double mean = (double)n * p;
    while (k < n) {
        term *= (double)(n - k) * p / (((double)k + 1.0) * q);
        k += 1;
        total += term;
        if (term <= total * SF_TOLERANCE && (double)k > mean) break;
    }
    return total;
}

void binom_thetas(const int64_t *totals, const double *probs, int64_t d,
                  double alpha, int64_t *thetas, uint8_t *flags) {
    for (int64_t axis = 0; axis < d; axis++) {
        int64_t n = totals[axis];
        double p = probs[axis];
        flags[axis] = 0;
        if (n <= 0) { thetas[axis] = 0; continue; }
        int64_t low;
        if (alpha < 0.4) {
            low = (int64_t)floor((double)n * p) - 2;
            if (low < -1) low = -1;
        } else {
            low = -1;
        }
        int64_t high = n;
        while (high - low > 1) {
            int64_t mid = (low + high) / 2;
            if (binom_sf(n, p, mid) <= alpha) high = mid; else low = mid;
        }
        thetas[axis] = high;
        double upper = binom_sf(n, p, high);
        double lower = binom_sf(n, p, high - 1);
        if (fabs(upper - alpha) <= SF_GUARD_BAND * alpha) flags[axis] = 1;
        if (fabs(lower - alpha) <= SF_GUARD_BAND * alpha) flags[axis] = 1;
    }
}
"""

_LOADED: dict[str, Any] | None = None
_UNAVAILABLE_REASON: str | None = None

_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def _compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _cflags(sanitize: bool) -> tuple[str, ...]:
    return _BASE_CFLAGS + (_SANITIZE_CFLAGS if sanitize else ())


def _compiler_identity(compiler: str) -> str:
    """First ``--version`` line, or the resolved path when it has none.

    Part of the content-address: a toolchain upgrade must miss the .so
    cache even when the C source is byte-identical, because the compiled
    artifact (instruction selection, libasan soname) is not.
    """
    try:
        probe = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        # A compiler that cannot even print its version will fail the
        # build proper with a captured reason; hash on the path alone.
        return compiler
    first_line = probe.stdout.decode(errors="replace").splitlines()
    return first_line[0].strip() if first_line else compiler


def _shared_object(compiler: str, sanitize: bool) -> Path:
    """Compile (once) into a content-addressed .so in the tmp dir.

    The address covers everything that shapes the artifact: the C
    source, the resolved compiler path, its ``--version`` banner, and
    the exact flag list — so sanitized builds, plain builds and builds
    by different toolchains each get their own cache slot.
    """
    flags = _cflags(sanitize)
    identity = "\x00".join(
        [_C_SOURCE, compiler, _compiler_identity(compiler), *flags]
    )
    digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]
    cache_dir = Path(tempfile.gettempdir())
    target = cache_dir / f"repro_cext_{digest}.so"
    if target.exists():
        return target
    with tempfile.TemporaryDirectory(dir=cache_dir) as workdir:
        source = Path(workdir) / "repro_kernels.c"
        source.write_text(_C_SOURCE, encoding="utf-8")
        built = Path(workdir) / "repro_kernels.so"
        subprocess.run(
            [compiler, *flags, str(source), "-o", str(built), "-lm"],
            check=True,
            capture_output=True,
            timeout=120,
        )
        # Atomic publish: concurrent processes race benignly to the
        # same content-addressed name.
        shutil.move(str(built), str(target))
    return target


def load() -> dict[str, Any]:
    """Bind the C kernels; raises ``ImportError`` with the build reason."""
    global _LOADED, _UNAVAILABLE_REASON
    if _LOADED is not None:
        return _LOADED
    if _UNAVAILABLE_REASON is not None:
        raise ImportError(_UNAVAILABLE_REASON)

    compiler = _compiler()
    if compiler is None:
        _UNAVAILABLE_REASON = "no C compiler (cc/gcc/clang) on PATH"
        raise ImportError(_UNAVAILABLE_REASON)
    sanitize = cext_sanitize_from_env()
    try:
        lib = ctypes.CDLL(str(_shared_object(compiler, sanitize)))
    except (OSError, subprocess.SubprocessError) as error:
        detail = ""
        if isinstance(error, subprocess.CalledProcessError):
            detail = f": {error.stderr.decode(errors='replace')[:500]}"
        _UNAVAILABLE_REASON = (
            f"C kernel build failed ({type(error).__name__}{detail})"
        )
        raise ImportError(_UNAVAILABLE_REASON) from error

    lib.level_responses.restype = None
    lib.level_responses.argtypes = [
        _I64P, _I64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64P,
    ]
    lib.box_scan.restype = ctypes.c_int64
    lib.box_scan.argtypes = [
        _I64P, ctypes.c_int64, ctypes.c_int64, _I64P, _I64P,
        ctypes.c_int64, ctypes.c_int64, _I64P,
    ]
    lib.six_region.restype = None
    lib.six_region.argtypes = [
        _I64P, _I64P, _I64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64, _I64P, _I64P, _I64P,
    ]
    lib.binom_thetas.restype = None
    lib.binom_thetas.argtypes = [
        _I64P, _F64P, ctypes.c_int64, ctypes.c_double, _I64P, _U8P,
    ]

    def level_responses(soa: LevelSoA) -> IntArray:
        m, d = soa.coords.shape
        out = np.empty(m, dtype=np.int64)
        lib.level_responses(
            np.ascontiguousarray(soa.coords, dtype=np.int64),
            np.ascontiguousarray(soa.counts, dtype=np.int64),
            m, d, soa.limit, out,
        )
        return out

    def box_scan(
        soa: LevelSoA, lo: IntArray, hi: IntArray, start: int, stop: int
    ) -> IntArray:
        m, d = soa.coords.shape
        span = max(0, min(stop, m) - max(start, 0))
        out = np.empty(span, dtype=np.int64)
        if span == 0:
            return out
        found = lib.box_scan(
            np.ascontiguousarray(soa.coords, dtype=np.int64), m, d,
            np.ascontiguousarray(lo, dtype=np.int64),
            np.ascontiguousarray(hi, dtype=np.int64),
            start, stop, out,
        )
        return out[:found]

    def six_region(
        soa: LevelSoA, position: int, bits: IntArray
    ) -> tuple[IntArray, IntArray]:
        m, d = soa.coords.shape
        center = np.empty(d, dtype=np.int64)
        total = np.empty(d, dtype=np.int64)
        lib.six_region(
            np.ascontiguousarray(soa.coords, dtype=np.int64),
            np.ascontiguousarray(soa.counts, dtype=np.int64),
            np.ascontiguousarray(soa.half_counts, dtype=np.int64),
            m, d, soa.limit,
            position, np.ascontiguousarray(bits, dtype=np.int64),
            center, total,
        )
        return center, total

    def binom_thetas(
        totals: IntArray, probs: FloatArray, alpha: float
    ) -> tuple[IntArray, IntArray]:
        d = totals.shape[0]
        thetas = np.empty(d, dtype=np.int64)
        flags = np.zeros(d, dtype=np.uint8)
        lib.binom_thetas(
            np.ascontiguousarray(totals, dtype=np.int64),
            np.ascontiguousarray(probs, dtype=np.float64),
            d, float(alpha), thetas, flags,
        )
        return thetas, flags

    _LOADED = {
        "name": NAME,
        "compiled": COMPILED,
        "version": Path(compiler).name + ("+asan" if sanitize else ""),
        "level_responses": level_responses,
        "box_scan": box_scan,
        "six_region": six_region,
        "binom_thetas": binom_thetas,
    }
    return _LOADED
