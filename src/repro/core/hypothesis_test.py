"""The six-region binomial significance test (Section III-B).

To decide whether the best convolution pivot ``a_h`` is the centre of a
new β-cluster, MrCC inspects, per axis ``e_j``, three consecutive cells
at the *parent* level ``h-1``: the parent ``a_{h-1}`` and its two face
neighbours along ``e_j``.  Their half-space counts split the combined
``nP_j`` points into six consecutive equal-size regions along ``e_j``;
``cP_j`` is the count of the central region — the half of the parent
that contains ``a_h``.

Under the null hypothesis (points uniform over the six regions)
``cP_j ~ Binomial(nP_j, 1/6)``.  The axis is *significant* when
``cP_j`` exceeds the one-sided critical value ``θ_j^α`` with
``P(cP_j > θ_j^α) <= α``; one significant axis confirms a β-cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro import obs
from repro.core import kernels
from repro.core.counting_tree import CountingTree
from repro.types import BoolArray, FloatArray, IntArray

CENTER_PROBABILITY = 1.0 / 6.0
"""Chance that a uniform point lands in the central of the six regions."""


def critical_value(n_points: int, alpha: float) -> int:
    """One-sided binomial critical value ``θ^α``.

    Smallest integer ``t`` with ``P(X > t) <= alpha`` for
    ``X ~ Binomial(n_points, 1/6)``; the test rejects when the observed
    central count is *strictly greater* than ``t`` (Algorithm 2 line 15).
    """
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if n_points == 0:
        return 0
    theta = stats.binom.isf(alpha, n_points, CENTER_PROBABILITY)
    if np.isnan(theta):
        return n_points
    return int(theta)


def critical_values(
    n_points: IntArray,
    alpha: float,
    probability: float | FloatArray = CENTER_PROBABILITY,
) -> IntArray:
    """Vectorised :func:`critical_value` over arrays of ``nP_j`` (and,
    optionally, per-axis null probabilities)."""
    n_points = np.asarray(n_points, dtype=np.int64)
    theta = stats.binom.isf(alpha, np.maximum(n_points, 1), probability)
    theta = np.where(np.isnan(theta), n_points, theta)
    return np.where(n_points == 0, 0, theta.astype(np.int64))


@dataclass(frozen=True)
class NeighborhoodCounts:
    """Per-axis statistics around a candidate centre cell.

    ``center`` is the central-region count ``cP_j`` and ``total`` the
    six-region count ``nP_j``, both arrays of length ``d``.

    ``probability`` is the per-axis chance of the central region under
    the null hypothesis: ``1/6`` when the parent cell has both face
    neighbours, but ``1/4`` at the space border where a neighbour's two
    regions cannot receive points at all — "one of the six *analyzed*
    regions" only covers regions that exist.  Without this adjustment
    uniform data triggers false β-clusters at coarse levels, where
    every parent cell borders the space.
    """

    center: IntArray
    total: IntArray
    probability: FloatArray

    def relevances(self) -> FloatArray:
        """The paper's relevance array ``r[j] = 100 * cP_j / nP_j``.

        Relevances live in ``(0, 100]``; axes whose neighbourhood is
        empty (cannot happen for a populated centre, but guarded) map
        to 0.
        """
        total = np.maximum(self.total, 1)
        return 100.0 * self.center / total


def neighborhood_counts(tree: CountingTree, h: int, row: int) -> NeighborhoodCounts:
    """Compute ``cP_j`` and ``nP_j`` for a pivot cell ``row`` at level ``h``.

    Requires ``h >= 2`` so the parent level is materialised.  For each
    axis, missing face neighbours of the parent (space border or empty
    space) contribute zero points, as in the paper.
    """
    if h < 2:
        raise ValueError("the significance test needs a materialised parent level")
    parent_level = tree.level(h - 1)
    parent_row = tree.parent_row(h, row)
    bits = tree.loc_bits(h, row)

    soa = parent_level.soa()
    backend = kernels.active_backend()
    center, total = backend.six_region(
        soa, soa.position_of_row(parent_row), bits
    )
    # Regions beyond the space border cannot receive points and are not
    # analyzed; an in-grid but empty neighbour still counts as two
    # analyzed (zero-count) regions.
    coords = parent_level.coords[parent_row]
    parent_limit = (1 << parent_level.h) - 1
    at_border = (coords == 0).astype(np.int64) + (coords == parent_limit)
    probability = 1.0 / (6 - 2 * at_border)
    return NeighborhoodCounts(
        center=center,
        total=total,
        probability=probability.astype(np.float64),
    )


def significant_axes(
    counts: NeighborhoodCounts, alpha: float
) -> BoolArray:
    """Boolean mask of axes where ``cP_j`` beats the critical value.

    The active backend computes the critical values; axes the compiled
    kernels flag as borderline (tail sum within the guard band of
    ``alpha``) are re-adjudicated with the scipy oracle, so the
    decision is bit-identical to the numpy backend on every axis.
    """
    obs.incr("search.tests")
    obs.incr("search.tests.axes", int(counts.center.shape[0]))
    backend = kernels.active_backend()
    theta, flags = backend.binom_thetas(
        counts.total, counts.probability, alpha
    )
    borderline = np.flatnonzero(flags)
    if borderline.size:
        theta[borderline] = critical_values(
            counts.total[borderline],
            alpha,
            probability=counts.probability[borderline],
        )
    return counts.center > theta
