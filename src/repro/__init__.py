"""Reproduction of "Finding Clusters in Subspaces of Very Large,
Multi-dimensional Datasets" (Cordeiro, Traina, Faloutsos, Traina Jr.,
ICDE 2010).

The package implements the paper's contribution — the **MrCC**
multi-resolution correlation-clustering method — together with every
substrate its evaluation depends on: the five competitor algorithms
(LAC, EPCH, P3C, CFPC, HARP), the synthetic dataset suites, a simulator
of the KDD Cup 2008 real dataset, the Quality/Subspaces-Quality metrics
and per-figure experiment drivers.

Quickstart
----------
>>> from repro import MrCC, SyntheticDatasetSpec, generate_dataset
>>> data = generate_dataset(SyntheticDatasetSpec(
...     dimensionality=8, n_points=4000, n_clusters=3, seed=7))
>>> result = MrCC(alpha=1e-10, n_resolutions=4).fit(data.points)
>>> result.n_clusters >= 1
True
"""

from repro.core.mrcc import MrCC
from repro.core.soft import SoftMrCC
from repro.data.kddcup2008 import KddCup2008Spec, generate_kddcup2008, kddcup2008_split
from repro.data.suites import suite_by_name
from repro.data.synthetic import SyntheticDatasetSpec, generate_dataset
from repro.evaluation.quality import evaluate_clustering, quality, subspaces_quality
from repro.types import NOISE_LABEL, ClusteringResult, Dataset, SubspaceCluster

__version__ = "1.0.0"

__all__ = [
    "MrCC",
    "SoftMrCC",
    "SyntheticDatasetSpec",
    "generate_dataset",
    "suite_by_name",
    "KddCup2008Spec",
    "generate_kddcup2008",
    "kddcup2008_split",
    "evaluate_clustering",
    "quality",
    "subspaces_quality",
    "ClusteringResult",
    "Dataset",
    "SubspaceCluster",
    "NOISE_LABEL",
    "__version__",
]
