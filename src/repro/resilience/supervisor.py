"""Task supervision: per-cell isolation, deadlines, retries, resume.

The experiment grid is a long list of independent cells; one cell
raising, hanging or taking its worker process down must cost exactly
that cell, never the suite.  The supervisor owns that guarantee for
both execution paths:

Serial (``n_jobs == 1``)
    Cells run inline.  Exceptions are caught per cell; the per-attempt
    deadline is enforced with a ``SIGALRM`` interval timer (POSIX main
    thread — elsewhere the deadline is skipped, never mis-enforced).

Parallel (``n_jobs > 1``)
    ``n_jobs`` *independent single-worker pools* ("slots").  A worker
    death breaks only its own slot's ``ProcessPoolExecutor`` — the
    resulting ``BrokenProcessPool`` is attributed unambiguously to the
    one cell that slot was running, the slot is rebuilt, and no other
    in-flight cell is disturbed.  A cell past its deadline gets its
    slot's worker killed the same way.  (A single shared pool cannot do
    this: one ``os._exit`` breaks every in-flight future at once.)

Failed attempts retry up to ``retries`` times with exponential backoff
(``backoff * 2**k`` seconds plus a deterministic jitter derived from
the cell key, so reruns are bit-reproducible).  Terminal outcomes are
one of ``ok`` (first attempt succeeded), ``retried`` (a retry
succeeded), ``failed`` (exception), ``timeout`` (deadline) or
``crashed`` (worker death) — and are appended to an optional
:class:`~repro.resilience.journal.RunJournal`, enabling
checkpoint-resume.

The worker function is called as ``fn(*args, attempt=k, fault=kind,
in_worker=flag)`` — the fault directive travels as a plain argument so
worker closures stay free of ambient reads (the ``repro_analyze``
purity pass roots every function dispatched through
:func:`run_supervised` exactly like a raw ``pool.submit``).
"""

from __future__ import annotations

import signal
import threading
import time
import zlib
from collections.abc import Callable, Iterator, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.env import (
    backoff_from_env,
    faults_from_env,
    retries_from_env,
    task_timeout_from_env,
)
from repro.resilience.faults import (
    FaultSpec,
    SimulatedKill,
    fire,
    parse_faults,
    plan_faults,
)
from repro.resilience.journal import RunJournal

__all__ = [
    "CellTimeout",
    "CellOutcome",
    "Task",
    "run_supervised",
]

_MAX_ERROR_CHARS = 500

_KILL_GRACE_SECONDS = 10.0
"""How long to wait for a killed slot's future to resolve before
abandoning it; the executor's management thread normally breaks the
future within milliseconds of the worker dying."""

_MIN_WAIT_SECONDS = 0.01


class CellTimeout(Exception):
    """A task attempt exceeded its per-attempt deadline."""


@dataclass(frozen=True)
class Task:
    """One supervised unit of work.

    ``key`` is the stable identity used for journaling, resume and
    fault matching; ``args`` are the positional arguments forwarded to
    the worker function (picklable under ``n_jobs > 1``).
    """

    key: str
    args: tuple[Any, ...]


@dataclass
class CellOutcome:
    """Terminal result of one supervised task."""

    key: str
    status: str  # ok | retried | failed | timeout | crashed
    attempts: int
    row: dict[str, Any] | None
    error: dict[str, Any] | None
    resumed: bool = False


def run_supervised(
    worker: Callable[..., dict[str, Any]],
    tasks: Sequence[Task],
    *,
    n_jobs: int = 1,
    retries: int | None = None,
    timeout: float | None = None,
    backoff: float | None = None,
    faults: Sequence[FaultSpec] | str | None = None,
    journal: RunJournal | None = None,
    resume: Mapping[str, Mapping[str, Any]] | None = None,
) -> list[CellOutcome]:
    """Run every task under supervision; outcomes in task order.

    ``worker`` must be a module-level function (picklable) accepting
    ``fn(*task.args, attempt=k, fault=kind_or_None, in_worker=bool)``.
    ``retries`` / ``timeout`` / ``backoff`` default to the
    ``REPRO_RETRIES`` / ``REPRO_TASK_TIMEOUT`` / ``REPRO_BACKOFF``
    environment knobs; ``faults`` accepts a parsed spec, a raw spec
    string, or ``None`` to read ``REPRO_FAULTS``.  ``resume`` maps task
    keys to journaled cell records whose outcomes are replayed without
    re-executing.
    """
    if isinstance(faults, str):
        fault_specs: Sequence[FaultSpec] = parse_faults(faults)
    elif faults is None:
        fault_specs = parse_faults(faults_from_env())
    else:
        fault_specs = tuple(faults)
    supervisor = _Supervisor(
        worker=worker,
        tasks=list(tasks),
        retries=retries_from_env() if retries is None else int(retries),
        timeout=task_timeout_from_env() if timeout is None else (timeout or None),
        backoff=backoff_from_env() if backoff is None else float(backoff),
        fault_plan=plan_faults([task.key for task in tasks], fault_specs),
        journal=journal,
        resume=resume or {},
    )
    if n_jobs <= 1:
        supervisor.run_serial()
    else:
        supervisor.run_parallel(int(n_jobs))
    return supervisor.outcomes()


def _error_summary(exc: BaseException) -> dict[str, Any]:
    """Picklable, journalable one-line summary of an exception."""
    message = str(exc)
    if len(message) > _MAX_ERROR_CHARS:
        message = message[: _MAX_ERROR_CHARS - 3] + "..."
    return {"type": type(exc).__name__, "message": message}


def _backoff_delay(base: float, attempt: int, key: str) -> float:
    """Deterministic exponential backoff before retry ``attempt``.

    ``base * 2**(attempt-1)`` seconds scaled by a jitter in ``[1, 1.25)``
    seeded from the cell key — stable across reruns and processes
    (``zlib.crc32``, not the salted builtin ``hash``).
    """
    if base <= 0.0 or attempt <= 0:
        return 0.0
    jitter = 1.0 + (zlib.crc32(f"{key}#{attempt}".encode()) % 1024) / 4096.0
    return base * (2.0 ** (attempt - 1)) * jitter


@contextmanager
def _deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`CellTimeout` after ``seconds`` of the body.

    Uses a ``SIGALRM`` interval timer, which only works on POSIX main
    threads; anywhere else the deadline is skipped (a wrongly-armed
    alarm in a thread would kill an unrelated frame).
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise CellTimeout(f"attempt exceeded its {seconds:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class _Pending:
    """A task attempt waiting to run (possibly in backoff)."""

    task_index: int
    attempt: int
    not_before: float = 0.0


class _Slot:
    """One single-worker pool; broken slots rebuild lazily."""

    def __init__(self) -> None:
        self._pool: ProcessPoolExecutor | None = None

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=1)
        try:
            return self._pool.submit(fn, *args, **kwargs)
        except BrokenExecutor:
            # The previous task broke the pool after its future resolved;
            # rebuild once and resubmit.
            self.discard()
            self._pool = ProcessPoolExecutor(max_workers=1)
            return self._pool.submit(fn, *args, **kwargs)

    def kill(self) -> None:
        """Kill the slot's worker process and drop the pool."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.kill()
        pool.shutdown(wait=True, cancel_futures=True)

    def discard(self) -> None:
        """Drop a broken pool (its worker is already gone)."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)


@dataclass
class _InFlight:
    """A submitted attempt bound to its slot and deadline."""

    pending: _Pending
    slot: _Slot
    future: Future
    deadline_at: float | None


class _Supervisor:
    """Shared retry/outcome bookkeeping for both execution paths."""

    def __init__(
        self,
        worker: Callable[..., dict[str, Any]],
        tasks: list[Task],
        retries: int,
        timeout: float | None,
        backoff: float,
        fault_plan: dict[int, FaultSpec],
        journal: RunJournal | None,
        resume: Mapping[str, Mapping[str, Any]],
    ) -> None:
        self._worker = worker
        self._tasks = tasks
        self._retries = retries
        self._timeout = timeout
        self._backoff = backoff
        self._fault_plan = fault_plan
        self._journal = journal
        self._resume = resume
        self._outcomes: list[CellOutcome | None] = [None] * len(tasks)

    def outcomes(self) -> list[CellOutcome]:
        assert all(outcome is not None for outcome in self._outcomes)
        return [outcome for outcome in self._outcomes if outcome is not None]

    # -- shared bookkeeping -------------------------------------------

    def _fault_kind(self, task_index: int, attempt: int) -> str | None:
        fault = self._fault_plan.get(task_index)
        if fault is not None and fault.sabotages(attempt):
            return fault.kind
        return None

    def _resume_outcome(self, task_index: int) -> bool:
        """Replay a journaled outcome; True when the task is covered."""
        record = self._resume.get(self._tasks[task_index].key)
        if record is None:
            return False
        self._outcomes[task_index] = CellOutcome(
            key=self._tasks[task_index].key,
            status=str(record["status"]),
            attempts=int(record["attempts"]),
            row=dict(record["row"]) if record["row"] is not None else None,
            error=dict(record["error"]) if record["error"] is not None else None,
            resumed=True,
        )
        obs.incr("resilience.cells_resumed")
        return True

    def _finish(self, task_index: int, outcome: CellOutcome) -> None:
        """Record a terminal outcome: counters plus the journal line."""
        self._outcomes[task_index] = outcome
        if outcome.status == "retried":
            obs.incr("resilience.cells_recovered")
        elif outcome.status != "ok":
            obs.incr(f"resilience.cells_{outcome.status}")
        if self._journal is not None:
            self._journal.record_cell(
                key=outcome.key,
                status=outcome.status,
                attempts=outcome.attempts,
                row=_journal_view(outcome.row),
                error=outcome.error,
            )

    def _handle_failure(
        self,
        pending: _Pending,
        status: str,
        error: dict[str, Any],
    ) -> _Pending | None:
        """Retry the attempt or settle the terminal outcome.

        Returns the next pending attempt when the retry budget allows
        one, ``None`` when the failure is terminal.
        """
        task = self._tasks[pending.task_index]
        if pending.attempt < self._retries:
            obs.incr("resilience.retries")
            delay = _backoff_delay(self._backoff, pending.attempt + 1, task.key)
            return _Pending(
                task_index=pending.task_index,
                attempt=pending.attempt + 1,
                not_before=obs.perf_clock() + delay,
            )
        self._finish(
            pending.task_index,
            CellOutcome(
                key=task.key,
                status=status,
                attempts=pending.attempt + 1,
                row=None,
                error=error,
            ),
        )
        return None

    def _handle_success(self, pending: _Pending, row: dict[str, Any]) -> None:
        self._finish(
            pending.task_index,
            CellOutcome(
                key=self._tasks[pending.task_index].key,
                status="ok" if pending.attempt == 0 else "retried",
                attempts=pending.attempt + 1,
                row=row,
                error=None,
            ),
        )

    # -- serial path ---------------------------------------------------

    def run_serial(self) -> None:
        for task_index in range(len(self._tasks)):
            if self._resume_outcome(task_index):
                continue
            pending: _Pending | None = _Pending(task_index=task_index, attempt=0)
            while pending is not None:
                delay = pending.not_before - obs.perf_clock()
                if delay > 0:
                    time.sleep(delay)
                pending = self._run_serial_attempt(pending)

    def _run_serial_attempt(self, pending: _Pending) -> _Pending | None:
        task = self._tasks[pending.task_index]
        fault = self._fault_kind(pending.task_index, pending.attempt)
        try:
            with _deadline(self._timeout):
                row = self._worker(
                    *task.args,
                    attempt=pending.attempt,
                    fault=fault,
                    in_worker=False,
                )
        except CellTimeout as exc:
            return self._handle_failure(pending, "timeout", _error_summary(exc))
        except SimulatedKill as exc:
            return self._handle_failure(pending, "crashed", _error_summary(exc))
        except Exception as exc:
            return self._handle_failure(pending, "failed", _error_summary(exc))
        self._handle_success(pending, row)
        return None

    # -- parallel path -------------------------------------------------

    def run_parallel(self, n_jobs: int) -> None:
        pending: list[_Pending] = []
        for task_index in range(len(self._tasks)):
            if not self._resume_outcome(task_index):
                pending.append(_Pending(task_index=task_index, attempt=0))
        slots = [_Slot() for _ in range(n_jobs)]
        idle = list(reversed(slots))  # pop() takes the first slot
        in_flight: list[_InFlight] = []
        try:
            while pending or in_flight:
                self._fill_slots(pending, idle, in_flight)
                if not in_flight:
                    # Every runnable attempt is in backoff; sleep to the
                    # earliest release.
                    release = min(p.not_before for p in pending)
                    time.sleep(
                        max(_MIN_WAIT_SECONDS, release - obs.perf_clock())
                    )
                    continue
                wait(
                    [flight.future for flight in in_flight],
                    timeout=self._wait_budget(pending, in_flight),
                    return_when=FIRST_COMPLETED,
                )
                self._reap(pending, idle, in_flight)
        finally:
            for slot in slots:
                slot.close()

    def _fill_slots(
        self,
        pending: list[_Pending],
        idle: list[_Slot],
        in_flight: list[_InFlight],
    ) -> None:
        now = obs.perf_clock()
        while idle and pending:
            index = next(
                (
                    i
                    for i, entry in enumerate(pending)
                    if entry.not_before <= now
                ),
                None,
            )
            if index is None:
                return
            entry = pending.pop(index)
            slot = idle.pop()
            task = self._tasks[entry.task_index]
            future = slot.submit(
                self._worker,
                *task.args,
                attempt=entry.attempt,
                fault=self._fault_kind(entry.task_index, entry.attempt),
                in_worker=True,
            )
            deadline_at = (
                None if self._timeout is None else obs.perf_clock() + self._timeout
            )
            in_flight.append(
                _InFlight(
                    pending=entry,
                    slot=slot,
                    future=future,
                    deadline_at=deadline_at,
                )
            )

    def _wait_budget(
        self, pending: list[_Pending], in_flight: list[_InFlight]
    ) -> float | None:
        """Sleep until the next deadline or backoff release, whichever
        comes first (``None`` when neither is armed)."""
        horizons = [
            flight.deadline_at
            for flight in in_flight
            if flight.deadline_at is not None
        ]
        horizons.extend(entry.not_before for entry in pending if entry.not_before)
        if not horizons:
            return None
        return max(_MIN_WAIT_SECONDS, min(horizons) - obs.perf_clock())

    def _reap(
        self,
        pending: list[_Pending],
        idle: list[_Slot],
        in_flight: list[_InFlight],
    ) -> None:
        now = obs.perf_clock()
        still_running: list[_InFlight] = []
        for flight in in_flight:
            if flight.future.done():
                retry = self._settle(flight)
            elif flight.deadline_at is not None and now >= flight.deadline_at:
                retry = self._reap_timeout(flight)
            else:
                still_running.append(flight)
                continue
            idle.append(flight.slot)
            if retry is not None:
                pending.append(retry)
        in_flight[:] = still_running

    def _settle(self, flight: _InFlight) -> _Pending | None:
        """Classify a completed future into the outcome machinery."""
        try:
            row = flight.future.result()
        except BrokenExecutor as exc:
            flight.slot.discard()
            return self._handle_failure(
                flight.pending, "crashed", _error_summary(exc)
            )
        except Exception as exc:
            return self._handle_failure(
                flight.pending, "failed", _error_summary(exc)
            )
        self._handle_success(flight.pending, row)
        return None

    def _reap_timeout(self, flight: _InFlight) -> _Pending | None:
        """Kill a slot whose attempt blew its deadline."""
        flight.slot.kill()
        # The management thread breaks the future once the worker dies;
        # bounded wait so a pathological platform cannot wedge the loop.
        wait([flight.future], timeout=_KILL_GRACE_SECONDS)
        timeout = self._timeout if self._timeout is not None else 0.0
        return self._handle_failure(
            flight.pending,
            "timeout",
            _error_summary(
                CellTimeout(f"attempt exceeded its {timeout:g}s deadline")
            ),
        )


def _journal_view(row: dict[str, Any] | None) -> dict[str, Any] | None:
    """Journaled copy of a result row.

    Underscore-prefixed keys are volatile side channels (the ``_trace``
    observability delta) — process-relative, non-deterministic, and
    meaningless on resume — so they never reach the journal.
    """
    if row is None:
        return None
    return {key: value for key, value in row.items() if not key.startswith("_")}
