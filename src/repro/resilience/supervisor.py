"""Compatibility shim for :mod:`repro.fabric.supervisor` (see package doc).

The underscored helpers are re-exported too: the resilience test suite
historically reached into them, and a shim that silently dropped them
would break on import rather than at the call site.
"""

from repro.fabric.supervisor import (
    CellOutcome,
    CellTimeout,
    Task,
    _backoff_delay,
    _deadline,
    _error_summary,
    _journal_view,
    run_supervised,
)

__all__ = [
    "CellOutcome",
    "CellTimeout",
    "Task",
    "run_supervised",
    "_backoff_delay",
    "_deadline",
    "_error_summary",
    "_journal_view",
]
