"""Resilience layer: supervised execution for the experiment grid.

Three pieces, each usable on its own:

* :mod:`repro.resilience.supervisor` — per-cell isolation (exceptions,
  deadlines, worker deaths), seeded retry with deterministic backoff,
  and graceful degradation into structured error rows;
* :mod:`repro.resilience.journal` — the append-fsync JSONL run journal
  behind checkpoint-resume;
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (``REPRO_FAULTS``) the chaos tests drive.

``experiments.runner`` wires all three under ``run_suite``.
"""

from repro.resilience.faults import (
    FaultSpec,
    InjectedFault,
    SimulatedKill,
    parse_faults,
    plan_faults,
)
from repro.resilience.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    RunJournal,
    load_journal,
    validate_record,
)
from repro.resilience.supervisor import (
    CellOutcome,
    CellTimeout,
    Task,
    run_supervised,
)

__all__ = [
    "CellOutcome",
    "CellTimeout",
    "FaultSpec",
    "InjectedFault",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "RunJournal",
    "SimulatedKill",
    "Task",
    "load_journal",
    "parse_faults",
    "plan_faults",
    "run_supervised",
    "validate_record",
]
