"""Compatibility shim: ``repro.resilience`` grew into ``repro.fabric``.

PR 5's suite-shaped supervisor/journal/fault triple was generalized
into the job fabric (work queue, leases, stealing, sharding); this
package re-exports the original public names so existing imports keep
working.  New code should import :mod:`repro.fabric` directly.
"""

from repro.fabric.faults import (
    FaultSpec,
    InjectedFault,
    SimulatedKill,
    parse_faults,
    plan_faults,
)
from repro.fabric.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    RunJournal,
    load_journal,
    validate_record,
)
from repro.fabric.supervisor import (
    CellOutcome,
    CellTimeout,
    Task,
    run_supervised,
)

__all__ = [
    "CellOutcome",
    "CellTimeout",
    "FaultSpec",
    "InjectedFault",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "RunJournal",
    "SimulatedKill",
    "Task",
    "load_journal",
    "parse_faults",
    "plan_faults",
    "run_supervised",
    "validate_record",
]
