"""Compatibility shim for :mod:`repro.fabric.journal` (see package doc)."""

from repro.fabric.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    JournalLockError,
    RunJournal,
    load_journal,
    load_records,
    pending_leases,
    validate_record,
)

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalLockError",
    "RunJournal",
    "load_journal",
    "load_records",
    "pending_leases",
    "validate_record",
]
