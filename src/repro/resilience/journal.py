"""The JSONL run journal: append-only record of completed grid cells.

A long suite run writes one record per *terminal* cell outcome (ok,
retried, failed, timeout or crashed) to a journal file, flushed and
fsynced per line so a crash loses at most the in-flight cells.  A
later ``run_suite(..., journal=path, resume=True)`` loads the journal,
skips every journaled cell and reproduces only the remaining ones —
the deterministic row fields of the resumed table are bit-identical to
an uninterrupted run because journaled rows round-trip through JSON
(``repr``-exact floats) and the remaining cells recompute from the
same seeds.

Like ``repro.obs.schema``, the record shape is versioned and strictly
validated: a journal written by a future incompatible version fails
loudly instead of silently resuming garbage.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "RunJournal",
    "load_journal",
    "validate_record",
]

JOURNAL_SCHEMA_VERSION = 1

_RECORD_KINDS = frozenset({"header", "cell"})
_CELL_KEYS = frozenset({"schema", "kind", "key", "status", "attempts", "row", "error"})
_HEADER_KEYS = frozenset({"schema", "kind", "meta"})
_STATUSES = frozenset({"ok", "retried", "failed", "timeout", "crashed"})


class JournalError(ValueError):
    """A journal file or record broke the stable schema."""


def _fail(message: str) -> None:
    raise JournalError(message)


def validate_record(record: Any) -> dict[str, Any]:
    """Validate one journal record; returns it for call-site chaining."""
    if not isinstance(record, dict):
        _fail(f"journal record must be a JSON object, got {type(record).__name__}")
    if record.get("schema") != JOURNAL_SCHEMA_VERSION:
        _fail(
            f"journal schema must be {JOURNAL_SCHEMA_VERSION}, "
            f"got {record.get('schema')!r}"
        )
    kind = record.get("kind")
    if kind not in _RECORD_KINDS:
        _fail(f"journal record kind must be header or cell, got {kind!r}")
    if kind == "header":
        if set(record) != _HEADER_KEYS:
            _fail(
                f"header record keys mismatch: expected "
                f"{sorted(_HEADER_KEYS)}, got {sorted(record)}"
            )
        if not isinstance(record["meta"], dict):
            _fail("header meta must be an object")
        return record
    if set(record) != _CELL_KEYS:
        _fail(
            f"cell record keys mismatch: expected {sorted(_CELL_KEYS)}, "
            f"got {sorted(record)}"
        )
    if not isinstance(record["key"], str) or not record["key"]:
        _fail("cell key must be a non-empty string")
    if record["status"] not in _STATUSES:
        _fail(
            f"cell status must be one of {sorted(_STATUSES)}, "
            f"got {record['status']!r}"
        )
    attempts = record["attempts"]
    if not isinstance(attempts, int) or isinstance(attempts, bool) or attempts < 1:
        _fail(f"cell attempts must be a positive integer, got {attempts!r}")
    if record["row"] is not None and not isinstance(record["row"], dict):
        _fail("cell row must be an object or null")
    if record["error"] is not None and not isinstance(record["error"], dict):
        _fail("cell error must be an object or null")
    return record


class RunJournal:
    """Append-fsync JSONL journal of terminal cell outcomes.

    Opening a fresh file writes a header record; opening an existing
    file (resume) appends below the previous run's records.  Use as a
    context manager or call :meth:`close` explicitly.
    """

    def __init__(
        self, path: str | Path, meta: Mapping[str, Any] | None = None
    ) -> None:
        self.path = Path(path)
        existed = self.path.exists() and self.path.stat().st_size > 0
        self._handle = self.path.open("a", encoding="utf-8")
        if not existed:
            self._append(
                {
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "kind": "header",
                    "meta": dict(meta or {}),
                }
            )

    def record_cell(
        self,
        key: str,
        status: str,
        attempts: int,
        row: Mapping[str, Any] | None,
        error: Mapping[str, Any] | None,
    ) -> None:
        """Append one terminal cell outcome (validated before writing)."""
        record = validate_record(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "kind": "cell",
                "key": key,
                "status": status,
                "attempts": attempts,
                "row": dict(row) if row is not None else None,
                "error": dict(error) if error is not None else None,
            }
        )
        self._append(record)

    def _append(self, record: dict[str, Any]) -> None:
        if self._handle.closed:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_journal(path: str | Path) -> dict[str, dict[str, Any]]:
    """Load a journal into a ``key -> cell record`` resume index.

    A torn final line — the expected leftover of a crash mid-append —
    is dropped; malformed records anywhere else raise
    :class:`JournalError` naming the line.  When a key appears twice
    (a resumed run appended below an older one) the last record wins.
    """
    path = Path(path)
    index: dict[str, dict[str, Any]] = {}
    lines = path.read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn final line from an interrupted append
            raise JournalError(
                f"{path}:{number}: malformed journal line"
            ) from None
        validate_record(record)
        if record["kind"] == "cell":
            index[record["key"]] = record
    return index
