"""Compatibility shim for :mod:`repro.fabric.faults` (see package doc)."""

from repro.fabric.faults import (
    FaultSpec,
    InjectedFault,
    SimulatedKill,
    fire,
    parse_faults,
    plan_faults,
)

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "SimulatedKill",
    "fire",
    "parse_faults",
    "plan_faults",
]
