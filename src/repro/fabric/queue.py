"""The fabric work queue: pooled task ids with deterministic stealing.

Tasks enter the queue as plain integer ids (indices into the caller's
task list — the queue never sees payloads) and are partitioned
round-robin across ``n_pools`` pools: task ``i`` lives in pool
``i % n_pools``.  Each consumer slot drains its own pool FIFO; a slot
whose pool is empty *steals* from the tail of the largest other pool,
so one pool of slow cells cannot strand the other slots idle.

Everything is deterministic: the partition is a pure function of the
task index, the victim pool is the one with the most runnable entries
(lowest index on ties), and the stolen entry is the victim's last
runnable one.  Stealing reorders *execution*, never results — the
supervisor reduces outcomes in task order regardless of which slot ran
what — so a stolen run stays bit-identical to an unstolen one.

Entries carry a ``not_before`` release time for retry backoff; an
entry still in backoff is invisible to both its own pool's FIFO scan
and to thieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueueEntry", "WorkQueue"]


@dataclass(frozen=True)
class QueueEntry:
    """A task attempt waiting to run (possibly in backoff)."""

    task_index: int
    attempt: int
    not_before: float = 0.0


@dataclass
class _Pool:
    entries: list[QueueEntry] = field(default_factory=list)

    def runnable(self, now: float) -> int:
        return sum(1 for entry in self.entries if entry.not_before <= now)


class WorkQueue:
    """Pooled pending-attempt queue with tail stealing.

    ``push`` routes an entry to its home pool (``task_index %
    n_pools``); ``take(pool, now)`` prefers the slot's own pool and
    falls back to stealing.  The queue is single-threaded by design —
    the supervisor's event loop is the only caller — so no locking.
    """

    def __init__(self, n_pools: int) -> None:
        if n_pools < 1:
            raise ValueError(f"n_pools must be >= 1, got {n_pools}")
        self._pools = [_Pool() for _ in range(n_pools)]

    @property
    def n_pools(self) -> int:
        return len(self._pools)

    def __len__(self) -> int:
        return sum(len(pool.entries) for pool in self._pools)

    def push(self, entry: QueueEntry) -> None:
        """Queue an attempt in its home pool (FIFO append)."""
        self._pools[entry.task_index % len(self._pools)].entries.append(entry)

    def take(self, pool_index: int, now: float) -> tuple[QueueEntry, int] | None:
        """Next attempt for a slot: own pool first, then steal.

        Returns ``(entry, home_pool)`` — the caller journals a steal
        record when ``home_pool != pool_index`` — or ``None`` when no
        pool has a runnable entry (everything left is in backoff or
        in flight).
        """
        own = self._pools[pool_index]
        for position, entry in enumerate(own.entries):
            if entry.not_before <= now:
                del own.entries[position]
                return entry, pool_index
        victim_index = self._victim(pool_index, now)
        if victim_index is None:
            return None
        victim = self._pools[victim_index].entries
        for position in range(len(victim) - 1, -1, -1):
            if victim[position].not_before <= now:
                entry = victim.pop(position)
                return entry, victim_index
        raise AssertionError("victim pool lost its runnable entry")

    def _victim(self, thief_index: int, now: float) -> int | None:
        """The largest other pool with runnable work (lowest on ties)."""
        best_index: int | None = None
        best_count = 0
        for index, pool in enumerate(self._pools):
            if index == thief_index:
                continue
            count = pool.runnable(now)
            if count > best_count:
                best_index, best_count = index, count
        return best_index

    def earliest_release(self) -> float | None:
        """Soonest ``not_before`` across every queued entry."""
        times = [
            entry.not_before
            for pool in self._pools
            for entry in pool.entries
        ]
        return min(times) if times else None
