"""Deterministic fault injection for the job fabric.

The test suite (and anyone chaos-testing a deployment) needs to prove
that every failure mode the fabric claims to survive — an ordinary
exception, a hang that must be reaped by the per-task deadline, and a
worker process dying outright — is actually survived, end to end, under
both the serial and the ``REPRO_JOBS`` paths.  Randomized fault
injection cannot prove that (a flaky chaos test is worse than none), so
faults here are *planned*: the parent parses a spec once, maps each
fault onto exactly one grid cell by its position in the deterministic
serial sweep order, and ships the directive to the task as a plain
argument.  Workers never read the environment (the ``repro_analyze``
purity pass forbids ambient reads inside worker closures).

Spec grammar (``REPRO_FAULTS``), comma-separated directives::

    kind:match:cell[:attempts]

``kind``
    ``raise`` (raise :class:`InjectedFault`), ``hang`` (sleep until the
    supervisor's deadline reaps the attempt), ``kill`` (die without
    unwinding: ``os._exit`` in a worker process, a simulated
    :class:`SimulatedKill` on the serial path where ``os._exit`` would
    take the whole suite down) or ``sigkill`` (the worker delivers
    ``SIGKILL`` to itself — a true ``kill -9``, indistinguishable from
    the OOM killer; simulated serially like ``kill``).
``match``
    Case-insensitive substring matched against the cell key (which
    embeds dataset and method names, so ``mrcc`` or ``18d|LAC`` both
    select).
``cell``
    0-based index among the *matching* cells, in serial sweep order.
``attempts``
    Optional: sabotage only the first N attempts of the cell, so a
    retry budget >= N recovers it (status ``retried``).  Omitted means
    every attempt fails (the cell becomes a structured error row).

Example: ``raise:mrcc:0:1,hang:lac:1,sigkill:clique:0``.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "SimulatedKill",
    "fire",
    "parse_faults",
    "plan_faults",
]

_KINDS = ("raise", "hang", "kill", "sigkill")

_KILL_EXIT_CODE = 113
"""Worker exit code for an injected ``kill`` (distinctive in core dumps
and CI logs; any abnormal exit surfaces as ``BrokenProcessPool``)."""

_HANG_SLICES = 12_000
_HANG_SLICE_SECONDS = 0.05
"""A ``hang`` sleeps in short slices (10 minutes total, not forever):
the serial path interrupts the sleep with its deadline alarm, the
parallel path kills the worker process, and a misconfigured run without
any deadline still terminates eventually instead of wedging CI."""


class InjectedFault(RuntimeError):
    """The planned exception raised by a ``raise`` fault."""


class SimulatedKill(RuntimeError):
    """Serial-path stand-in for a worker death.

    On the serial path ``os._exit`` / ``SIGKILL`` would take the whole
    suite down, so ``kill`` and ``sigkill`` raise this instead; the
    supervisor classifies it as ``crashed``, exactly like the
    ``BrokenProcessPool`` a real worker death produces under
    ``REPRO_JOBS``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive."""

    kind: str
    match: str
    cell: int
    attempts: int | None = None

    def sabotages(self, attempt: int) -> bool:
        """Whether this fault fires on the given 0-based attempt."""
        return self.attempts is None or attempt < self.attempts


def parse_faults(spec: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` spec string into fault directives.

    Raises ``ValueError`` naming the offending directive on any
    grammar violation; an empty or blank spec parses to ``()``.
    """
    spec = spec.strip()
    if not spec:
        return ()
    faults = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"REPRO_FAULTS directive {token!r} must be "
                f"kind:match:cell[:attempts]"
            )
        kind, match = parts[0].strip().lower(), parts[1].strip()
        if kind not in _KINDS:
            raise ValueError(
                f"REPRO_FAULTS kind must be one of {'/'.join(_KINDS)}, "
                f"got {parts[0]!r} in {token!r}"
            )
        if not match:
            raise ValueError(
                f"REPRO_FAULTS directive {token!r} has an empty match "
                f"pattern"
            )
        try:
            cell = int(parts[2])
            attempts = int(parts[3]) if len(parts) == 4 else None
        except ValueError:
            raise ValueError(
                f"REPRO_FAULTS directive {token!r}: cell and attempts "
                f"must be integers"
            ) from None
        if cell < 0 or (attempts is not None and attempts < 1):
            raise ValueError(
                f"REPRO_FAULTS directive {token!r}: cell must be >= 0 "
                f"and attempts >= 1"
            )
        faults.append(
            FaultSpec(kind=kind, match=match, cell=cell, attempts=attempts)
        )
    return tuple(faults)


def plan_faults(
    keys: Sequence[str],
    faults: Sequence[FaultSpec],
    strict: bool = True,
) -> dict[int, FaultSpec]:
    """Map each fault onto the index of the task it sabotages.

    ``keys`` are the cell keys in serial sweep order; each directive
    binds to the ``cell``-th key containing its ``match`` substring
    (case-insensitively).  Under ``strict`` (the default) a directive
    that matches no cell raises — a chaos test whose fault silently
    misses its target would "pass" by proving nothing.  ``strict=False``
    drops unmatched directives instead, which is what secondary task
    grids (e.g. the sharded tree build's shard tasks) use so a
    directive aimed at the experiment grid does not abort them.  When
    two directives select the same cell the later one wins.
    """
    lowered = [key.lower() for key in keys]
    plan: dict[int, FaultSpec] = {}
    for fault in faults:
        needle = fault.match.lower()
        seen = 0
        for index, key in enumerate(lowered):
            if needle in key:
                if seen == fault.cell:
                    plan[index] = fault
                    break
                seen += 1
        else:
            if strict:
                raise ValueError(
                    f"fault {fault.kind}:{fault.match}:{fault.cell} matches "
                    f"no cell ({seen} cells contain {fault.match!r}, "
                    f"index {fault.cell} requested)"
                )
    return plan


def fire(kind: str, in_worker: bool) -> None:
    """Trigger one fault inside a task attempt.

    Called by the task function itself (so the ``repro_analyze`` purity
    pass sees this code in every worker closure and proves it ambient
    free).  ``in_worker`` distinguishes a real process death from its
    serial simulation.
    """
    if kind == "raise":
        raise InjectedFault("injected fault: planned exception")
    if kind == "hang":
        for _ in range(_HANG_SLICES):
            time.sleep(_HANG_SLICE_SECONDS)
        raise InjectedFault("injected hang outlived its bounded sleep")
    if kind == "kill":
        if in_worker:
            os._exit(_KILL_EXIT_CODE)
        raise SimulatedKill(
            "injected fault: simulated worker death (serial path)"
        )
    if kind == "sigkill":
        if in_worker:
            # raise_signal, not os.kill(os.getpid(), ...): same true
            # kill -9, but without the ambient getpid read the purity
            # pass forbids inside worker closures.
            signal.raise_signal(signal.SIGKILL)
        raise SimulatedKill(
            "injected fault: simulated SIGKILL (serial path)"
        )
    raise ValueError(f"unknown fault kind {kind!r}")
