"""Multi-host sharding: deterministic grid slicing and journal merge.

A run too large for one machine is split with ``--shard i/n``: task
``t`` (by its index in the deterministic serial sweep order) belongs
to shard ``i`` iff ``t % n == i``.  The slicing is a pure function of
the task order, so every host computes the same partition from the
same configuration with no coordination — the only shared artifact is
the per-shard journal each host writes.

``merge_journals`` folds the per-shard journals into one merged
journal that resumes exactly like an unsharded run's.  Determinism
rules (enforced here, documented in DESIGN.md §10):

* every shard of the declared ``n`` must be present, exactly once,
  and all shard headers must agree on the run metadata (the ``shard``
  key aside) — merging journals from different grids is an error, not
  a weird report;
* cell keys must be disjoint across shards (guaranteed by the modular
  slicing; a collision means the inputs were not a real partition);
* operational records (lease/heartbeat/steal) are dropped — they
  describe *how* each shard ran, not *what* it computed;
* committed cell records are sorted by key, so the merged bytes do
  not depend on the order shards finished or were listed.

A shard interrupted mid-run merges fine: its missing cells are simply
absent, and a resume from the merged journal re-runs exactly those —
the final report stays bit-identical to an undisturbed unsharded run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.fabric.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    load_records,
)
from repro.fabric.supervisor import Task

__all__ = ["ShardSpec", "merge_journals", "parse_shard", "shard_tasks"]


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a sharded run: shard ``index`` of ``count``."""

    index: int
    count: int

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"

    def owns(self, task_index: int) -> bool:
        """Whether this shard runs the ``task_index``-th task."""
        return task_index % self.count == self.index


def parse_shard(spec: str) -> ShardSpec:
    """Parse an ``i/n`` shard spec (0-based index, ``0 <= i < n``)."""
    parts = spec.strip().split("/")
    if len(parts) != 2:
        raise ValueError(f"shard spec {spec!r} must be i/n (e.g. 0/2)")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"shard spec {spec!r}: index and count must be integers"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard spec {spec!r}: need count >= 1 and 0 <= index < count"
        )
    return ShardSpec(index=index, count=count)


def shard_tasks(tasks: Sequence[Task], shard: ShardSpec | None) -> list[Task]:
    """This shard's slice of the task grid, in sweep order.

    ``None`` (unsharded) returns every task.  The slice keys on the
    task's *index* in the full grid, never its content, so all hosts
    agree on the partition without coordination.
    """
    if shard is None:
        return list(tasks)
    return [task for index, task in enumerate(tasks) if shard.owns(index)]


def _shard_header(path: Path) -> dict[str, Any]:
    records = load_records(path)
    if not records or records[0]["kind"] != "header":
        raise JournalError(f"shard journal {path} has no header record")
    return records[0]


def merge_journals(
    shard_paths: Sequence[str | Path], out_path: str | Path
) -> dict[str, Any]:
    """Merge per-shard journals into one resumable journal.

    Validates the inputs form a complete, disjoint ``n``-way partition
    of one run (see module docstring), writes the merged journal to
    ``out_path``, and returns a summary (``shards``, ``cells``,
    ``path``).  Raises :class:`JournalError` on any partition or
    metadata violation.
    """
    paths = [Path(p) for p in shard_paths]
    if not paths:
        raise JournalError("fabric merge needs at least one shard journal")

    shards: dict[int, Path] = {}
    common_meta: dict[str, Any] | None = None
    count: int | None = None
    cells: dict[str, dict[str, Any]] = {}
    owner: dict[str, Path] = {}

    for path in paths:
        header = _shard_header(path)
        meta = dict(header["meta"])
        shard_value = meta.pop("shard", None)
        if not isinstance(shard_value, str):
            raise JournalError(
                f"shard journal {path} header has no shard spec in its "
                f"meta — was it written by a sharded run?"
            )
        shard = parse_shard(shard_value)
        if count is None:
            count = shard.count
        elif shard.count != count:
            raise JournalError(
                f"shard journal {path} declares {shard.count} shards, "
                f"previous journals declared {count}"
            )
        if shard.index in shards:
            raise JournalError(
                f"shard {shard.index}/{shard.count} appears twice: "
                f"{shards[shard.index]} and {path}"
            )
        shards[shard.index] = path
        if common_meta is None:
            common_meta = meta
        elif meta != common_meta:
            raise JournalError(
                f"shard journal {path} metadata disagrees with the other "
                f"shards — these journals are not slices of one run"
            )
        # Last record wins within one shard (a resumed shard appends
        # below its earlier records); disjointness across shards.
        for record in load_records(path):
            if record["kind"] != "cell":
                continue
            key = record["key"]
            if key in owner and owner[key] != path:
                raise JournalError(
                    f"cell {key!r} committed by both {owner[key]} and "
                    f"{path} — the inputs are not a disjoint partition"
                )
            owner[key] = path
            cells[key] = record

    assert count is not None and common_meta is not None
    missing = sorted(set(range(count)) - set(shards))
    if missing:
        raise JournalError(
            f"incomplete partition: missing shard(s) "
            f"{', '.join(f'{i}/{count}' for i in missing)}"
        )

    out = Path(out_path)
    header_record = {
        "schema": JOURNAL_SCHEMA_VERSION,
        "kind": "header",
        "meta": common_meta,
    }
    lines = [json.dumps(header_record, sort_keys=True)]
    lines.extend(
        json.dumps(cells[key], sort_keys=True) for key in sorted(cells)
    )
    out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return {"shards": count, "cells": len(cells), "path": str(out)}
