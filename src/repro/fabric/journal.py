"""The JSONL run journal: append-only record of fabric execution.

A long run writes one record per journal-worthy event to a single
file, flushed and fsynced per line so a crash loses at most the
in-flight cells.  Schema v2 records four kinds beyond the header:

``cell``
    A *terminal* cell outcome (ok, retried, failed, timeout or
    crashed) — the commit record.  Exactly-once semantics hang off
    these: a committed result always wins over any late duplicate or
    dangling lease.
``lease``
    An attempt was dispatched: the cell key, the 0-based attempt, the
    pool that ran it and the per-attempt deadline (seconds, or null).
    A lease with no later ``cell`` record for its key is *expired* —
    the worker died or the run was interrupted mid-cell — and the cell
    is re-issued on resume.
``heartbeat``
    Periodic liveness from the supervisor loop (``REPRO_HEARTBEAT``):
    committed/running/total counts plus a snapshot of the ``fabric.*``
    obs counters when tracing is on.  ``fabric status`` tails these.
``steal``
    A slot drained its own pool and stole a task from another pool's
    tail (the key and both pool indices).

Operational records (lease/heartbeat/steal) never influence a resumed
table — :func:`load_journal` indexes commits only — so the resumed
rows stay bit-identical to an uninterrupted run exactly as under
schema v1, whose journals remain loadable (v1 read-compat).

Two appenders pointed at one journal would interleave torn records,
so the writer takes an exclusive-create lock file (``<path>.lock``
holding pid and host); a second opener fails fast with a clear error
instead of corrupting the file.  A lock whose pid is dead on the same
host is stale (the expected leftover of a ``kill -9``) and is broken
automatically.

Like ``repro.obs.schema``, the record shape is versioned and strictly
validated: a journal written by a future incompatible version fails
loudly instead of silently resuming garbage.
"""

from __future__ import annotations

import errno
import json
import os
import socket
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalLockError",
    "RunJournal",
    "load_journal",
    "load_records",
    "pending_leases",
    "validate_record",
]

JOURNAL_SCHEMA_VERSION = 2

_V1_RECORD_KINDS = frozenset({"header", "cell"})
_RECORD_KINDS = frozenset({"header", "cell", "lease", "heartbeat", "steal"})
_CELL_KEYS = frozenset({"schema", "kind", "key", "status", "attempts", "row", "error"})
_HEADER_KEYS = frozenset({"schema", "kind", "meta"})
_LEASE_KEYS = frozenset({"schema", "kind", "key", "attempt", "pool", "deadline"})
_HEARTBEAT_KEYS = frozenset(
    {"schema", "kind", "done", "running", "total", "counters"}
)
_STEAL_KEYS = frozenset({"schema", "kind", "key", "from_pool", "to_pool"})
_STATUSES = frozenset({"ok", "retried", "failed", "timeout", "crashed"})


class JournalError(ValueError):
    """A journal file or record broke the stable schema."""


class JournalLockError(JournalError):
    """A second live writer already holds the journal's lock."""


def _fail(message: str) -> None:
    raise JournalError(message)


def _check_count(record: dict[str, Any], key: str) -> None:
    value = record[key]
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        _fail(f"{record['kind']} {key} must be a non-negative integer, got {value!r}")


def validate_record(record: Any) -> dict[str, Any]:
    """Validate one journal record; returns it for call-site chaining.

    Accepts the current schema (v2) and read-compatible v1 records
    (header/cell only — v1 never wrote operational kinds).
    """
    if not isinstance(record, dict):
        _fail(f"journal record must be a JSON object, got {type(record).__name__}")
    schema = record.get("schema")
    if schema not in (1, JOURNAL_SCHEMA_VERSION):
        _fail(
            f"journal schema must be 1 or {JOURNAL_SCHEMA_VERSION}, "
            f"got {schema!r}"
        )
    kinds = _V1_RECORD_KINDS if schema == 1 else _RECORD_KINDS
    kind = record.get("kind")
    if kind not in kinds:
        _fail(
            f"schema {schema} record kind must be one of "
            f"{'/'.join(sorted(kinds))}, got {kind!r}"
        )
    if kind == "header":
        if set(record) != _HEADER_KEYS:
            _fail(
                f"header record keys mismatch: expected "
                f"{sorted(_HEADER_KEYS)}, got {sorted(record)}"
            )
        if not isinstance(record["meta"], dict):
            _fail("header meta must be an object")
        return record
    if kind == "cell":
        if set(record) != _CELL_KEYS:
            _fail(
                f"cell record keys mismatch: expected {sorted(_CELL_KEYS)}, "
                f"got {sorted(record)}"
            )
        if not isinstance(record["key"], str) or not record["key"]:
            _fail("cell key must be a non-empty string")
        if record["status"] not in _STATUSES:
            _fail(
                f"cell status must be one of {sorted(_STATUSES)}, "
                f"got {record['status']!r}"
            )
        attempts = record["attempts"]
        if not isinstance(attempts, int) or isinstance(attempts, bool) or attempts < 1:
            _fail(f"cell attempts must be a positive integer, got {attempts!r}")
        if record["row"] is not None and not isinstance(record["row"], dict):
            _fail("cell row must be an object or null")
        if record["error"] is not None and not isinstance(record["error"], dict):
            _fail("cell error must be an object or null")
        return record
    if kind == "lease":
        if set(record) != _LEASE_KEYS:
            _fail(
                f"lease record keys mismatch: expected {sorted(_LEASE_KEYS)}, "
                f"got {sorted(record)}"
            )
        if not isinstance(record["key"], str) or not record["key"]:
            _fail("lease key must be a non-empty string")
        attempt = record["attempt"]
        if not isinstance(attempt, int) or isinstance(attempt, bool) or attempt < 0:
            _fail(f"lease attempt must be a non-negative integer, got {attempt!r}")
        _check_count(record, "pool")
        deadline = record["deadline"]
        if deadline is not None and not isinstance(deadline, (int, float)):
            _fail(f"lease deadline must be a number of seconds or null, got {deadline!r}")
        return record
    if kind == "heartbeat":
        if set(record) != _HEARTBEAT_KEYS:
            _fail(
                f"heartbeat record keys mismatch: expected "
                f"{sorted(_HEARTBEAT_KEYS)}, got {sorted(record)}"
            )
        for key in ("done", "running", "total"):
            _check_count(record, key)
        if not isinstance(record["counters"], dict):
            _fail("heartbeat counters must be an object")
        return record
    # steal
    if set(record) != _STEAL_KEYS:
        _fail(
            f"steal record keys mismatch: expected {sorted(_STEAL_KEYS)}, "
            f"got {sorted(record)}"
        )
    if not isinstance(record["key"], str) or not record["key"]:
        _fail("steal key must be a non-empty string")
    _check_count(record, "from_pool")
    _check_count(record, "to_pool")
    return record


class _JournalLock:
    """Exclusive-create ``<path>.lock`` guarding a journal's writer.

    The lock file holds ``pid host``; a conflicting lock from a dead
    pid on the same host is stale (a crashed or ``kill -9``-ed run)
    and is broken so resume works without manual cleanup.  A live pid
    — or any pid on another host, which cannot be probed — fails fast
    with :class:`JournalLockError`.
    """

    def __init__(self, journal_path: Path) -> None:
        self.path = Path(f"{journal_path}.lock")
        self._acquired = False
        try:
            self._create()
        except FileExistsError:
            self._break_if_stale(journal_path)
            try:
                self._create()
            except FileExistsError:  # lost the race to another writer
                self._refuse(journal_path)

    def _create(self) -> None:
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, f"{os.getpid()} {socket.gethostname()}\n".encode())
        finally:
            os.close(fd)
        self._acquired = True

    def _holder(self) -> tuple[int, str] | None:
        try:
            raw = self.path.read_text(encoding="utf-8").split()
        except (OSError, UnicodeDecodeError):
            return None
        if len(raw) != 2 or not raw[0].isdigit():
            return None
        return int(raw[0]), raw[1]

    def _break_if_stale(self, journal_path: Path) -> None:
        holder = self._holder()
        if holder is None:
            # Unreadable or torn lock: treat as stale debris.
            self.path.unlink(missing_ok=True)
            return
        pid, host = holder
        if host == socket.gethostname() and not _pid_alive(pid):
            self.path.unlink(missing_ok=True)
            return
        self._refuse(journal_path)

    def _refuse(self, journal_path: Path) -> None:
        holder = self._holder()
        detail = (
            f"held by pid {holder[0]} on {holder[1]}"
            if holder
            else "holder unreadable"
        )
        raise JournalLockError(
            f"journal {journal_path} is locked ({detail}; lock file "
            f"{self.path}) — a second writer would interleave torn "
            f"records; point each run at its own journal, or remove the "
            f"lock file if you are sure the other run is gone"
        )

    def release(self) -> None:
        if self._acquired:
            self.path.unlink(missing_ok=True)
            self._acquired = False


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError as error:
        return error.errno != errno.ESRCH
    return True


class RunJournal:
    """Append-fsync JSONL journal of fabric execution records.

    Opening a fresh file writes a header record; opening an existing
    file (resume) appends below the previous run's records.  The
    writer holds an exclusive lock file for its lifetime, so two
    processes pointed at one journal fail fast instead of interleaving
    torn records.  Use as a context manager or call :meth:`close`
    explicitly.
    """

    def __init__(
        self, path: str | Path, meta: Mapping[str, Any] | None = None
    ) -> None:
        self.path = Path(path)
        self._lock = _JournalLock(self.path)
        try:
            existed = self.path.exists() and self.path.stat().st_size > 0
            self._handle = self.path.open("a", encoding="utf-8")
        except BaseException:
            self._lock.release()
            raise
        if not existed:
            self._append(
                {
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "kind": "header",
                    "meta": dict(meta or {}),
                }
            )

    def record_cell(
        self,
        key: str,
        status: str,
        attempts: int,
        row: Mapping[str, Any] | None,
        error: Mapping[str, Any] | None,
    ) -> None:
        """Append one terminal cell outcome (validated before writing)."""
        record = validate_record(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "kind": "cell",
                "key": key,
                "status": status,
                "attempts": attempts,
                "row": dict(row) if row is not None else None,
                "error": dict(error) if error is not None else None,
            }
        )
        self._append(record)

    def record_lease(
        self, key: str, attempt: int, pool: int, deadline: float | None
    ) -> None:
        """Append a lease record: ``attempt`` of ``key`` was dispatched."""
        record = validate_record(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "kind": "lease",
                "key": key,
                "attempt": attempt,
                "pool": pool,
                "deadline": deadline,
            }
        )
        self._append(record)

    def record_heartbeat(
        self, done: int, running: int, total: int, counters: Mapping[str, int]
    ) -> None:
        """Append a liveness heartbeat with progress counts."""
        record = validate_record(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "kind": "heartbeat",
                "done": done,
                "running": running,
                "total": total,
                "counters": dict(counters),
            }
        )
        self._append(record)

    def record_steal(self, key: str, from_pool: int, to_pool: int) -> None:
        """Append a work-steal record: ``to_pool`` took ``key``."""
        record = validate_record(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "kind": "steal",
                "key": key,
                "from_pool": from_pool,
                "to_pool": to_pool,
            }
        )
        self._append(record)

    def _append(self, record: dict[str, Any]) -> None:
        if self._handle.closed:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
        self._lock.release()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_records(path: str | Path) -> list[dict[str, Any]]:
    """Every validated record of a journal, in append order.

    A torn *final* line — the expected leftover of a crash mid-append —
    is dropped; a torn or malformed line anywhere else means the file
    was corrupted (most likely by a second writer) and raises
    :class:`JournalError` naming the line and the byte offset where
    the damage starts.
    """
    path = Path(path)
    data = path.read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    lines = data.split(b"\n")
    for number, line in enumerate(lines, start=1):
        if line.strip():
            try:
                record = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if number == len(lines) and not data.endswith(b"\n"):
                    break  # torn final line from an interrupted append
                raise JournalError(
                    f"{path}:{number}: torn journal record at byte offset "
                    f"{offset} — the file was corrupted mid-stream "
                    f"(interleaved writers?), not merely interrupted"
                ) from None
            records.append(validate_record(record))
        offset += len(line) + 1
    return records


def load_journal(path: str | Path) -> dict[str, dict[str, Any]]:
    """Load a journal into a ``key -> cell record`` resume index.

    Only committed ``cell`` records reach the index — leases,
    heartbeats and steals are operational — so a resumed table is a
    pure function of the committed outcomes.  When a key appears twice
    (a resumed run appended below an older one) the last record wins.
    """
    index: dict[str, dict[str, Any]] = {}
    for record in load_records(path):
        if record["kind"] == "cell":
            index[record["key"]] = record
    return index


def pending_leases(records: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Leases with no later commit: cells in flight when the run died.

    The returned map is ``key -> last lease record``; on resume these
    are exactly the cells whose lease expired and which the fabric
    re-issues.
    """
    leases: dict[str, dict[str, Any]] = {}
    for record in records:
        if record["kind"] == "lease":
            leases[record["key"]] = record
        elif record["kind"] == "cell":
            leases.pop(record["key"], None)
    return leases
